# Developer entry points. `make check` is what CI runs: lint (when ruff is
# installed), the tier-1 suite, the scheduler-equivalence gate (calendar
# queue + timer wheel + auto backend must be bit-identical to the reference
# heap), and the benchmark regression gate (a quick kernel-bench smoke pass
# — which re-verifies the hot-path speedups, the membership-backend
# equivalence checksum, and the seeded-run determinism checksums for both
# the v1 and v2 profiles plus the v2 swim_full floor — compared against the
# committed full-mode BENCH_kernel.json), and the chaos smoke gate (the
# fault-injection layer stays deterministic and inert when unused).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint test scheduler-equivalence global-state-gate \
        parallel-equivalence bench-gate bench-kernel \
        bench-kernel-smoke bench chaos-smoke bench-shards bench-shards-smoke \
        bench-overload bench-overload-smoke

check: lint test scheduler-equivalence global-state-gate bench-gate chaos-smoke

# Gated on availability: ruff is a dev convenience, not a runtime
# dependency, and the offline test image does not ship it. CI installs it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

# Also part of `test`; kept as a named gate so scheduler changes can be
# validated in isolation (and so CI logs show the equivalence pass by name).
scheduler-equivalence:
	$(PYTHON) -m pytest tests/test_sim_scheduler.py -q

# Cross-simulation isolation: two seeded sims in one process must checksum
# identically in both run orders (no interpreter-global mutable state), and
# run_until's inclusive-bound rule must hold on every scheduler backend.
# Part of `test` too; named so the sweep is visible in CI logs.
global-state-gate:
	$(PYTHON) -m pytest tests/test_global_state.py \
		tests/test_run_until_boundary.py -q

# Serial <-> parallel byte-equivalence of the region-sharded kernel.
parallel-equivalence:
	$(PYTHON) -m pytest tests/test_parallel_kernel.py -q

test:
	$(PYTHON) -m pytest -x -q

bench-kernel-smoke:
	$(PYTHON) benchmarks/bench_kernel.py --quick

bench-shards-smoke:
	$(PYTHON) benchmarks/bench_shards.py --quick

bench-overload-smoke:
	$(PYTHON) benchmarks/bench_overload.py --quick

# Regenerate the quick-mode results and diff them against the committed
# full-mode baselines; see benchmarks/gate.py for what is compared. The
# GATE_SUMMARY hook lets CI append the verdict to $GITHUB_STEP_SUMMARY.
bench-gate: bench-kernel-smoke bench-shards-smoke bench-overload-smoke
	$(PYTHON) benchmarks/gate.py \
		--shards-baseline BENCH_shards.json \
		--shards-candidate BENCH_shards.quick.json \
		--overload-baseline BENCH_overload.json \
		--overload-candidate BENCH_overload.quick.json \
		$(if $(GATE_SUMMARY),--summary $(GATE_SUMMARY))

# Fault-injection determinism gate: the seeded failure scenario's resilience
# report must be byte-stable and match the committed BENCH_chaos.json, and an
# empty fault plan must leave the kernel determinism checksum untouched.
chaos-smoke:
	$(PYTHON) benchmarks/chaos_smoke.py

bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py

# Full-mode shard scale-out sweep (~15 min); regenerates BENCH_shards.json.
bench-shards:
	$(PYTHON) benchmarks/bench_shards.py

# Full-mode saturation-knee sweep (~2 min); regenerates BENCH_overload.json.
bench-overload:
	$(PYTHON) benchmarks/bench_overload.py

# Full paper-figure regeneration (~10 minutes); see benchmarks/README.md.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
