# Developer entry points. `make check` is what CI runs: the tier-1 suite,
# the scheduler-equivalence gate (calendar queue + timer wheel must be
# bit-identical to the reference heap), and a smoke pass of the kernel
# microbenchmarks (which also re-verifies the hot-path speedups and the
# seeded-run determinism checksum).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test scheduler-equivalence bench-kernel bench-kernel-smoke bench

check: test scheduler-equivalence bench-kernel-smoke

# Also part of `test`; kept as a named gate so scheduler changes can be
# validated in isolation (and so CI logs show the equivalence pass by name).
scheduler-equivalence:
	$(PYTHON) -m pytest tests/test_sim_scheduler.py -q

test:
	$(PYTHON) -m pytest -x -q

bench-kernel-smoke:
	$(PYTHON) benchmarks/bench_kernel.py --quick

bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py

# Full paper-figure regeneration (~10 minutes); see benchmarks/README.md.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
