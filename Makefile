# Developer entry points. `make check` is what CI runs: the tier-1 suite
# plus a smoke pass of the kernel microbenchmarks (which also re-verifies
# the >=2x hot-path speedups and the seeded-run determinism checksum).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test bench-kernel bench-kernel-smoke bench

check: test bench-kernel-smoke

test:
	$(PYTHON) -m pytest -x -q

bench-kernel-smoke:
	$(PYTHON) benchmarks/bench_kernel.py --quick

bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py

# Full paper-figure regeneration (~10 minutes); see benchmarks/README.md.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
