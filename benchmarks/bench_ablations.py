"""Ablations for the design choices the paper discusses (§VI, §VII, §XII).

Five knobs, each benchmarked with everything else held fixed:

* **gossip fanout** — §XII's latency/bandwidth trade-off: higher fanout
  converges queries faster but costs every member more gossip traffic;
* **smallest-group routing** — §VI's multi-constraint optimisation: route to
  the attribute with the fewest candidates instead of any attribute;
* **representative upload interval** — §VII: fresher member lists at the
  price of upload bandwidth;
* **cache freshness** — §VI: how much staleness tolerance buys in hit rate
  and latency;
* **group-size cap (fork threshold)** — §VII: smaller groups answer faster
  (Fig. 8c) but multiply the group count the router must fan over.
"""

import random

import pytest

from benchmarks.conftest import BENCH_SEED, bench_queries, build_finder
from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.gossip.agent import SerfConfig
from repro.harness import build_focus_cluster, run_query
from repro.harness.scenarios import build_single_group_cluster
from repro.sim.metrics import Histogram
from repro.workloads import node_spec_factory
from repro.workloads.querygen import grouped_placement_query


# --------------------------------------------------------------- fanout
@pytest.mark.benchmark(group="ablations")
def test_ablation_gossip_fanout(benchmark, record_rows):
    group_size = 200

    def run_point(fanout: int) -> dict:
        serf = SerfConfig(gossip_fanout=fanout, gossip_interval=0.1)
        scenario = build_single_group_cluster(
            group_size, seed=BENCH_SEED, serf_config=serf
        )
        scenario.sim.run_until(5.0)
        query = Query([QueryTerm.at_least("load", 0.0)], freshness_ms=0.0)
        start = scenario.sim.now
        pulls = [run_query(scenario, query).elapsed for _ in range(5)]
        window = scenario.sim.now - start
        member = scenario.agents[17]
        member_bytes = sum(
            scenario.network.meter(a).bytes_in_window(start, scenario.sim.now)
            for a in member.endpoint_addresses()
        )
        return {
            "fanout": fanout,
            "latency_ms": sum(pulls) / len(pulls) * 1000.0,
            "member_kbps": member_bytes / window / 1024.0,
        }

    results = benchmark.pedantic(
        lambda: [run_point(f) for f in (2, 4, 8)], rounds=1, iterations=1
    )
    record_rows(
        "Ablation — gossip fanout (200-member group, query pulls)",
        ["fanout", "pull latency (ms)", "member bandwidth (KB/s)"],
        [(r["fanout"], round(r["latency_ms"]), round(r["member_kbps"], 2))
         for r in results],
    )
    by_fanout = {r["fanout"]: r for r in results}
    # Higher fanout -> faster convergence...
    assert by_fanout[8]["latency_ms"] < by_fanout[2]["latency_ms"]
    # ...while all stay sub-second at this size.
    assert by_fanout[2]["latency_ms"] < 1200.0


# ------------------------------------------------- smallest-group routing
@pytest.mark.benchmark(group="ablations")
def test_ablation_smallest_group_routing(benchmark, record_rows):
    """A query with one narrow term and one broad term: routing on the
    narrow term touches far fewer nodes."""

    def run_point(enabled: bool) -> dict:
        config = FocusConfig(smallest_group_routing=enabled)
        scenario = build_focus_cluster(
            400,
            seed=BENCH_SEED,
            config=config,
            warm_start=True,
            with_store=False,
            record_bandwidth_events=False,
            node_factory=node_spec_factory(seed=BENCH_SEED),
        )
        scenario.sim.run_until(5.0)
        query = Query(
            [
                # Narrow: one cpu group (1/4 of nodes).
                QueryTerm("cpu_percent", lower=0.0, upper=24.9),
                # Broad: nearly everyone.
                QueryTerm("ram_mb", lower=0.0, upper=16384.0),
            ],
            freshness_ms=0.0,
        )
        before = scenario.service.metrics.counter("group_queries").value
        response = run_query(scenario, query)
        fanout = scenario.service.metrics.counter("group_queries").value - before
        return {
            "enabled": enabled,
            "groups_queried": int(fanout),
            "matches": len(response.matches),
            "latency_ms": response.elapsed * 1000.0,
        }

    results = benchmark.pedantic(
        lambda: [run_point(True), run_point(False)], rounds=1, iterations=1
    )
    record_rows(
        "Ablation — smallest-group routing (narrow cpu term + broad ram term)",
        ["smallest-group routing", "groups queried", "matches", "latency (ms)"],
        [("on" if r["enabled"] else "off", r["groups_queried"], r["matches"],
          round(r["latency_ms"])) for r in results],
    )
    on, off = results
    assert on["matches"] == off["matches"]  # same answers either way
    assert on["groups_queried"] < off["groups_queried"]


# ------------------------------------------------ representative interval
@pytest.mark.benchmark(group="ablations")
def test_ablation_report_interval(benchmark, record_rows):
    def run_point(interval: float) -> dict:
        config = FocusConfig(report_interval=interval)
        finder = build_finder("focus", 400, config=config)
        scenario = finder.scenario
        scenario.sim.run_until(5.0)
        finder.reset_server_bandwidth()
        start = scenario.sim.now
        scenario.sim.run_until(start + 30.0)
        bandwidth = finder.server_bandwidth_bytes() / 30.0 / 1024.0
        ages = [
            scenario.sim.now - g.updated_at
            for g in scenario.service.dgm.groups.all_groups()
            if g.members
        ]
        return {
            "interval": interval,
            "report_kbps": bandwidth,
            "staleness_s": sum(ages) / len(ages),
        }

    results = benchmark.pedantic(
        lambda: [run_point(i) for i in (2.5, 5.0, 10.0)], rounds=1, iterations=1
    )
    record_rows(
        "Ablation — representative upload interval (400 nodes, idle)",
        ["interval (s)", "server bandwidth (KB/s)", "mean member-list age (s)"],
        [(r["interval"], round(r["report_kbps"], 1), round(r["staleness_s"], 1))
         for r in results],
    )
    by_interval = {r["interval"]: r for r in results}
    assert by_interval[2.5]["report_kbps"] > by_interval[10.0]["report_kbps"]
    assert by_interval[2.5]["staleness_s"] < by_interval[10.0]["staleness_s"]


# ------------------------------------------------------- cache freshness
@pytest.mark.benchmark(group="ablations")
def test_ablation_cache_freshness(benchmark, record_rows):
    def run_point(freshness_ms: float) -> dict:
        scenario = build_focus_cluster(
            200,
            seed=BENCH_SEED,
            warm_start=True,
            with_store=False,
            record_bandwidth_events=False,
            node_factory=node_spec_factory(seed=BENCH_SEED),
        )
        scenario.sim.run_until(3.0)
        rng = random.Random(4)
        queries = [
            grouped_placement_query(rng, limit=10, freshness_ms=freshness_ms)
            for _ in range(60)
        ]
        # Exact mode on purpose: figure percentiles are compared against
        # the paper to float precision, and these runs observe a few
        # hundred samples with no interleaved percentile reads.
        latency = Histogram("lat")
        start = scenario.sim.now
        for index, query in enumerate(queries):
            scenario.sim.schedule_at(
                start + index * 0.25,
                scenario.app.query,
                query,
                lambda response: latency.observe(response.elapsed),
            )
        scenario.sim.run_until(start + 60 * 0.25 + 5.0)
        return {
            "freshness_ms": freshness_ms,
            "hit_rate": scenario.service.cache.hit_rate,
            "mean_ms": latency.mean() * 1000.0,
        }

    results = benchmark.pedantic(
        lambda: [run_point(f) for f in (0.0, 1000.0, 15000.0)],
        rounds=1, iterations=1,
    )
    record_rows(
        "Ablation — cache freshness bound (60 placement queries at 4/s)",
        ["freshness (ms)", "cache hit rate", "mean latency (ms)"],
        [(r["freshness_ms"], round(r["hit_rate"], 2), round(r["mean_ms"]))
         for r in results],
    )
    by_freshness = {r["freshness_ms"]: r for r in results}
    assert by_freshness[0.0]["hit_rate"] == 0.0
    assert by_freshness[15000.0]["hit_rate"] > 0.3
    assert by_freshness[15000.0]["mean_ms"] < by_freshness[0.0]["mean_ms"]


# ------------------------------------------------------------- delegation
@pytest.mark.benchmark(group="ablations")
def test_ablation_delegation(benchmark, record_rows):
    """§VI's load-shedding: past a threshold of outstanding queries the
    server hands the group fan-out to the application. Server CPU drops;
    the application pays the pull; answers stay identical."""
    from repro.sim.metrics import Histogram

    def run_point(enabled: bool) -> dict:
        config = FocusConfig(
            delegation_enabled=enabled,
            delegation_threshold=2,
            cache_enabled=False,
        )
        finder = build_finder("focus", 200, config=config)
        scenario = finder.scenario
        scenario.sim.run_until(3.0)
        # Exact mode on purpose: figure percentiles are compared against
        # the paper to float precision, and these runs observe a few
        # hundred samples with no interleaved percentile reads.
        latency = Histogram("lat")
        sources = {"delegated": 0, "other": 0}

        def record(result) -> None:
            if result.get("source") == "delegated":
                sources["delegated"] += 1
            else:
                sources["other"] += 1

        start = scenario.sim.now
        queries = bench_queries(90)
        for index, query in enumerate(queries):
            sent_at = start + index / 30.0  # 30 q/s: enough to queue up

            def cb(result, sent_at=sent_at):
                record(result)
                latency.observe(scenario.sim.now - sent_at)

            scenario.sim.schedule_at(sent_at, finder.query, query, cb)
        end = start + 3.0 + 6.0
        scenario.sim.run_until(end)
        return {
            "enabled": enabled,
            "server_cpu": scenario.service.resources.mean_cpu_over(start, end),
            "mean_ms": latency.mean() * 1000.0,
            "delegated": sources["delegated"],
            "answered": sources["delegated"] + sources["other"],
        }

    results = benchmark.pedantic(
        lambda: [run_point(False), run_point(True)], rounds=1, iterations=1
    )
    record_rows(
        "Ablation — query delegation under load (200 nodes, 30 q/s)",
        ["delegation", "server CPU", "mean latency (ms)", "delegated queries"],
        [
            ("on" if r["enabled"] else "off", round(r["server_cpu"], 3),
             round(r["mean_ms"]), r["delegated"])
            for r in results
        ],
    )
    off, on = results
    assert off["delegated"] == 0
    assert on["delegated"] > 0
    assert off["answered"] == on["answered"] == 90
    # Delegated fan-out work leaves the server.
    assert on["server_cpu"] < off["server_cpu"]


# ---------------------------------------------------------- update churn
@pytest.mark.benchmark(group="ablations")
def test_ablation_update_churn(benchmark, record_rows):
    """How attribute volatility (group moves, transition-table traffic,
    report churn) feeds into FOCUS's server bandwidth — the cost side of
    being pull-based over *highly dynamic* state."""
    from repro.workloads import WorkloadDriver
    from repro.workloads.dynamics import default_dynamics

    def run_point(volatility: float) -> dict:
        finder = build_finder("focus", 400)
        scenario = finder.scenario
        scenario.sim.run_until(3.0)
        driver = None
        if volatility > 0:
            driver = WorkloadDriver(
                scenario.sim,
                scenario.agents,
                dynamics=default_dynamics(volatility=volatility),
                seed=6,
            )
            driver.start()
        finder.reset_server_bandwidth()
        suggestions_before = scenario.service.metrics.counter("suggestions").value
        start = scenario.sim.now
        for index, query in enumerate(bench_queries(10)):
            scenario.sim.schedule_at(start + index * 1.0, finder.query, query,
                                     lambda response: None)
        scenario.sim.run_until(start + 15.0)
        if driver is not None:
            driver.stop()
        moves = scenario.service.metrics.counter("suggestions").value - suggestions_before
        return {
            "volatility": volatility,
            "kbps": finder.server_bandwidth_bytes() / 15.0 / 1024.0,
            "moves": int(moves),
        }

    results = benchmark.pedantic(
        lambda: [run_point(v) for v in (0.0, 0.005, 0.02)], rounds=1, iterations=1
    )
    record_rows(
        "Ablation — attribute volatility (400 nodes, 1 query/s)",
        ["volatility (frac of range/s)", "server KB/s", "group moves"],
        [(r["volatility"], round(r["kbps"], 1), r["moves"]) for r in results],
    )
    by_volatility = {r["volatility"]: r for r in results}
    assert by_volatility[0.0]["moves"] == 0
    assert by_volatility[0.02]["moves"] > by_volatility[0.005]["moves"] > 0
    assert by_volatility[0.02]["kbps"] > by_volatility[0.005]["kbps"]
    # Honest finding: the pull advantage erodes with churn. At moderate
    # volatility FOCUS still beats the 400-node push firehose (~107 KB/s,
    # Fig. 7a); crank volatility far enough (nodes crossing a group boundary
    # every couple of seconds) and move/suggest/report traffic dominates —
    # attribute cutoffs must be sized against expected volatility.
    assert by_volatility[0.005]["kbps"] < 107.0


# ------------------------------------------------------ fork threshold
@pytest.mark.benchmark(group="ablations")
def test_ablation_fork_threshold(benchmark, record_rows):
    def run_point(cap: int) -> dict:
        config = FocusConfig(max_group_size=cap)
        scenario = build_focus_cluster(
            800,
            seed=BENCH_SEED,
            config=config,
            warm_start=True,
            with_store=False,
            record_bandwidth_events=False,
            node_factory=node_spec_factory(seed=BENCH_SEED),
        )
        scenario.sim.run_until(3.0)
        rng = random.Random(5)
        latencies = []
        for _ in range(8):
            query = grouped_placement_query(rng, limit=None, freshness_ms=0.0)
            latencies.append(run_query(scenario, query).elapsed)
        groups = [g for g in scenario.service.dgm.groups.all_groups()
                  if g.size_estimate() > 0]
        sizes = [g.size_estimate() for g in groups]
        return {
            "cap": cap,
            "mean_ms": sum(latencies) / len(latencies) * 1000.0,
            "groups": len(groups),
            "max_group": max(sizes),
        }

    results = benchmark.pedantic(
        lambda: [run_point(c) for c in (50, 150, 400)], rounds=1, iterations=1
    )
    record_rows(
        "Ablation — group fork threshold (800 nodes, find-all queries)",
        ["size cap", "mean latency (ms)", "groups", "largest group"],
        [(r["cap"], round(r["mean_ms"]), r["groups"], r["max_group"])
         for r in results],
    )
    by_cap = {r["cap"]: r for r in results}
    # Smaller caps -> more groups, none above the cap.
    assert by_cap[50]["groups"] > by_cap[400]["groups"]
    assert by_cap[50]["max_group"] <= 50
    assert by_cap[400]["max_group"] > 150
    # End-to-end latency is dominated by the *slowest queried group* and the
    # groups are pulled in parallel, so the per-group convergence advantage
    # of small caps (visible in isolation in Fig. 8c) largely washes out
    # here — the cap's real cost/benefit is the group-count fan-out above.
    assert max(r["mean_ms"] for r in results) < 1.5 * min(
        r["mean_ms"] for r in results
    )
