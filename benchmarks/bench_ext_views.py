"""Extension benchmark — materialized views for hot queries (§XII).

The paper's future-work proposal, implemented and measured: registering a
frequently issued multi-constraint query as a materialized view creates a
dedicated p2p group holding exactly the matching nodes, kept current by
event triggers on node state. A directed pull for the same query must fan
out over every group covering its smallest attribute and collect answers
from many non-matching members; the view pull touches only true matches.
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query
from repro.workloads import node_spec_factory

NUM_NODES = 400
REPEATS = 10

HOT_QUERY = Query(
    [
        QueryTerm.at_most("cpu_percent", 25.0),
        QueryTerm.at_least("ram_mb", 8192.0),
        QueryTerm.at_least("disk_gb", 50.0),
    ],
    freshness_ms=0.0,
)


def build():
    scenario = build_focus_cluster(
        NUM_NODES,
        seed=BENCH_SEED,
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=BENCH_SEED),
    )
    scenario.sim.run_until(3.0)
    return scenario


def measure(scenario) -> dict:
    server_meter = scenario.network.meter(scenario.service.address)
    before_bytes = server_meter.total_bytes
    before_fanout = scenario.service.metrics.counter("group_queries").value
    latencies = []
    sources = set()
    for _ in range(REPEATS):
        response = run_query(scenario, HOT_QUERY)
        latencies.append(response.elapsed)
        sources.add(response.source)
    return {
        "mean_ms": sum(latencies) / len(latencies) * 1000.0,
        "kb_per_query": (server_meter.total_bytes - before_bytes) / REPEATS / 1024.0,
        "fanout_per_query": (
            scenario.service.metrics.counter("group_queries").value - before_fanout
        ) / REPEATS,
        "matches": len(run_query(scenario, HOT_QUERY).matches),
        "sources": sources,
    }


@pytest.mark.benchmark(group="ext-views")
def test_ext_materialized_views(benchmark, record_rows):
    def run():
        # Without a view: plain directed pulls.
        plain = measure(build())
        # With a view: register, let nodes join, then the same queries.
        scenario = build()
        created = []
        scenario.app.client.create_view(
            Query(HOT_QUERY.terms), created.append, view_id="hot"
        )
        drain(scenario, 12.0)  # definitions fan out, matching nodes join
        assert created and not created[0].get("error")
        viewed = measure(scenario)
        view_group = scenario.service.views.views["hot"].group
        viewed["view_members"] = len(view_group.all_node_ids())
        return plain, viewed

    plain, viewed = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "Extension — materialized view vs directed pull (hot 3-term query, 400 nodes)",
        ["path", "mean latency (ms)", "server KB/query", "groups/query", "matches"],
        [
            ("directed pull", round(plain["mean_ms"]),
             round(plain["kb_per_query"], 1), round(plain["fanout_per_query"], 1),
             plain["matches"]),
            ("materialized view", round(viewed["mean_ms"]),
             round(viewed["kb_per_query"], 1), round(viewed["fanout_per_query"], 1),
             viewed["matches"]),
        ],
    )
    # Same answers either way.
    assert plain["matches"] == viewed["matches"] == viewed["view_members"]
    assert viewed["sources"] == {"view"}
    # The view needs only one (exact) group per query.
    assert viewed["fanout_per_query"] <= 1.0 < plain["fanout_per_query"] + 1
    # And it is cheaper at the server and at least as fast.
    assert viewed["kb_per_query"] < plain["kb_per_query"]
    assert viewed["mean_ms"] <= plain["mean_ms"] * 1.1
