"""Fig. 3 — RabbitMQ scalability study (§III-A).

Paper setup: a broker on a 4-vCPU / 8 GB VM; each producer pushes five 1 KB
messages per second into 100 queues drained by 100 consumers. Producers are
swept 1k -> 8k. Paper findings:

* CPU crosses 50% "as early as 2k" producers;
* the broker "hits its scalability limit around 6k" — message latency
  explodes once offered load exceeds capacity.

This benchmark regenerates the latency and CPU series and asserts both
shape points.
"""

import pytest

from repro.mq import Broker, Consumer, Producer
from repro.sim import Network, Simulator

PRODUCER_COUNTS = (1000, 2000, 4000, 6000, 8000)
NUM_QUEUES = 100
WARMUP = 3.0
MEASURE = 5.0


def run_point(num_producers: int) -> dict:
    sim = Simulator(seed=3)
    network = Network(sim, record_bandwidth_events=False)
    region = network.topology.regions[0].name
    broker = Broker(sim, network, "broker", region)
    broker.start()
    consumers = []
    for index in range(NUM_QUEUES):
        consumer = Consumer(sim, network, f"c{index}", region, "broker", f"q{index}")
        consumer.start()
        consumers.append(consumer)
    for index in range(num_producers):
        Producer(
            sim, network, f"p{index}", region, "broker", f"q{index % NUM_QUEUES}",
            rate=5.0, message_size=1024,
        ).start()
    sim.run_until(WARMUP + MEASURE)
    latencies = [
        value
        for consumer in consumers
        for value in consumer.latency._values
    ]
    latencies.sort()
    p50 = latencies[len(latencies) // 2] if latencies else float("inf")
    return {
        "producers": num_producers,
        "latency_p50_ms": p50 * 1000.0,
        "cpu": broker.utilization_over(WARMUP, WARMUP + MEASURE),
        "backlog_s": broker.backlog_seconds,
        "dropped": broker.messages_dropped,
    }


@pytest.mark.benchmark(group="fig3")
def test_fig3_rabbitmq_scalability(benchmark, record_rows):
    results = benchmark.pedantic(
        lambda: [run_point(n) for n in PRODUCER_COUNTS], rounds=1, iterations=1
    )
    record_rows(
        "Fig. 3 — RabbitMQ latency & CPU vs producers (5x1KB msg/s each)",
        ["producers", "p50 latency (ms)", "CPU util", "backlog (s)", "dropped"],
        [
            (r["producers"], round(r["latency_p50_ms"], 1), round(r["cpu"], 2),
             round(r["backlog_s"], 1), r["dropped"])
            for r in results
        ],
    )
    by_count = {r["producers"]: r for r in results}

    # Shape 1: >=50% CPU by 2k producers (paper: "as early as 2k").
    assert by_count[2000]["cpu"] >= 0.40
    assert by_count[1000]["cpu"] < by_count[2000]["cpu"] < by_count[4000]["cpu"]

    # Shape 2: saturation around 6k - latency explodes relative to 1-4k.
    assert by_count[1000]["latency_p50_ms"] < 50.0
    assert by_count[4000]["latency_p50_ms"] < 200.0
    assert by_count[6000]["latency_p50_ms"] > 10 * by_count[2000]["latency_p50_ms"]
    assert by_count[8000]["latency_p50_ms"] >= by_count[6000]["latency_p50_ms"]
    assert by_count[8000]["cpu"] >= 0.99
