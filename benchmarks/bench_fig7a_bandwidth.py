"""Fig. 7a — bandwidth consumption at the query server vs node count (§X-B).

All six systems see the identical node population and the identical query
stream (placement queries in the paper's directed-pull idiom, 1 query/s;
push-style systems also update at 1/s as in the paper). The metric is bytes
crossing the central-site boundary.

Paper findings at 1600 nodes: FOCUS eliminates 86% / 92% / 93% / 95% of the
traffic of static hierarchy / RabbitMQ(pub) / naive push=pull / RabbitMQ(sub)
— i.e. a 5-15x reduction band with FOCUS cheapest and the query-broadcast
systems (pull, MQ-sub) most expensive.
"""

import pytest

from benchmarks.conftest import bench_queries, build_finder, measure_bandwidth

SYSTEMS = ("focus", "hierarchy", "rabbitmq-pub", "naive-push", "naive-pull",
           "rabbitmq-sub")
NODE_COUNTS = (100, 400, 1600)
QUERIES_PER_POINT = 10


def run_point(system: str, num_nodes: int) -> dict:
    finder = build_finder(system, num_nodes)
    stats = measure_bandwidth(finder, bench_queries(QUERIES_PER_POINT))
    stats.update({"system": system, "nodes": num_nodes})
    return stats


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_server_bandwidth(benchmark, record_rows):
    def sweep():
        return [
            run_point(system, nodes)
            for nodes in NODE_COUNTS
            for system in SYSTEMS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = {}
    matches = {}
    for r in results:
        table[(r["system"], r["nodes"])] = r["bandwidth_kbps"]
        matches[(r["system"], r["nodes"])] = r["matches"]

    record_rows(
        "Fig. 7a — server bandwidth (KB/s) vs nodes, 1 query/s + 1 update/s",
        ["system"] + [f"N={n}" for n in NODE_COUNTS] + ["reduction @1600"],
        [
            (
                system,
                *(round(table[(system, n)], 1) for n in NODE_COUNTS),
                "-"
                if system == "focus"
                else f"{100 * (1 - table[('focus', 1600)] / table[(system, 1600)]):.0f}%",
            )
            for system in SYSTEMS
        ],
    )

    # Every system returns identical match sets over identical populations.
    for nodes in NODE_COUNTS:
        counts = {matches[(s, nodes)] for s in SYSTEMS}
        assert len(counts) == 1, f"match disagreement at N={nodes}: {counts}"

    focus = {n: table[("focus", n)] for n in NODE_COUNTS}
    at = lambda s: table[(s, 1600)]  # noqa: E731

    # Shape 1: FOCUS is the cheapest system at scale.
    for system in SYSTEMS:
        if system != "focus":
            assert at(system) > at("focus"), system

    # Shape 2: the paper's reduction band - every baseline is reduced by
    # >=60%, the broadcast-style ones by >=90% (paper: 86-95%).
    for system in ("hierarchy", "rabbitmq-pub", "naive-push"):
        assert 1 - focus[1600] / at(system) >= 0.60, system
    for system in ("naive-pull", "rabbitmq-sub"):
        assert 1 - focus[1600] / at(system) >= 0.85, system

    # Shape 3: ordering - hierarchy is the best baseline, query-broadcast
    # systems the worst (paper's ordering by reduction).
    assert at("hierarchy") < at("naive-push")
    assert at("naive-push") <= at("naive-pull") * 1.2
    assert at("rabbitmq-sub") >= at("rabbitmq-pub")

    # Shape 4: push traffic grows linearly with N; FOCUS grows sublinearly
    # (its reports scale with membership, its pulls with matching groups).
    node_growth = NODE_COUNTS[-1] / NODE_COUNTS[0]  # 16x
    push_growth = table[("naive-push", 1600)] / table[("naive-push", 100)]
    focus_growth = focus[1600] / max(focus[100], 0.1)
    assert push_growth > 0.75 * node_growth
    assert focus_growth < 0.6 * node_growth
    assert push_growth > 2 * focus_growth
