"""Fig. 7b — average query latency vs node count at 40 queries/s (§X-B).

Paper findings:

* below ~1k nodes RabbitMQ answers faster than FOCUS (a database lookup vs
  a gossip round trip);
* past ~1k nodes RabbitMQ "could not scale" — latency explodes as the
  broker saturates — while FOCUS's latency stays roughly constant, because
  directed pulls touch only the matching groups regardless of fleet size.

The broker here uses a 50 µs per-message cost (queries are small control
messages, unlike Fig. 3's 1 KB state publishes), which puts its saturation
knee at the paper's ~1k-node position for this 40 q/s workload.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, bench_queries, build_finder
from repro.baselines import RabbitSubFinder
from repro.mq.broker import BrokerConfig
from repro.sim import Network, Simulator
from repro.workloads import node_spec_factory

NODE_COUNTS = (400, 800, 1200, 1600)
QUERY_RATE = 40.0
MEASURE_SECONDS = 3.0
QUERY_LIMIT = 10

#: Small control messages: 50 µs of broker CPU each (see module docstring).
QUERY_BROKER_CONFIG = BrokerConfig(per_message_cpu=5e-5)


def run_queries_at_rate(finder, queries, *, warmup: float, settle: float = 8.0):
    sim = finder.sim
    sim.run_until(sim.now + warmup)
    start = sim.now
    latencies = []

    def make_recorder(sent_at):
        def record(response):
            latencies.append(sim.now - sent_at)

        return record

    interval = 1.0 / QUERY_RATE
    for index, query in enumerate(queries):
        sent_at = start + index * interval
        sim.schedule_at(sent_at, finder.query, query, make_recorder(sent_at))
    sim.run_until(start + len(queries) * interval + settle)
    latencies.sort()
    mean = sum(latencies) / len(latencies) if latencies else float("inf")
    return {"mean_ms": mean * 1000.0, "completed": len(latencies)}


def run_focus(num_nodes: int) -> dict:
    finder = build_finder("focus", num_nodes)
    queries = bench_queries(int(QUERY_RATE * MEASURE_SECONDS), limit=QUERY_LIMIT)
    return run_queries_at_rate(finder, queries, warmup=3.0)


def run_rabbitmq(num_nodes: int) -> dict:
    sim = Simulator(seed=BENCH_SEED)
    network = Network(sim, record_bandwidth_events=False)
    finder = RabbitSubFinder(
        sim,
        network,
        num_nodes=num_nodes,
        node_factory=node_spec_factory(seed=BENCH_SEED),
        broker_config=QUERY_BROKER_CONFIG,
    )
    queries = bench_queries(int(QUERY_RATE * MEASURE_SECONDS), limit=QUERY_LIMIT)
    return run_queries_at_rate(finder, queries, warmup=3.0)


@pytest.mark.benchmark(group="fig7b")
def test_fig7b_query_latency(benchmark, record_rows):
    def sweep():
        return {
            "focus": {n: run_focus(n) for n in NODE_COUNTS},
            "rabbitmq": {n: run_rabbitmq(n) for n in NODE_COUNTS},
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(
        "Fig. 7b — mean query latency (ms) at 40 queries/s",
        ["system"] + [f"N={n}" for n in NODE_COUNTS],
        [
            (system, *(round(results[system][n]["mean_ms"], 1) for n in NODE_COUNTS))
            for system in ("rabbitmq", "focus")
        ],
    )

    focus = {n: results["focus"][n]["mean_ms"] for n in NODE_COUNTS}
    rabbit = {n: results["rabbitmq"][n]["mean_ms"] for n in NODE_COUNTS}

    # Shape 1: below ~1k nodes RabbitMQ is faster than FOCUS.
    assert rabbit[400] < focus[400]
    assert rabbit[800] < focus[800]

    # Shape 2: past ~1k nodes RabbitMQ blows up and the lines cross.
    assert rabbit[1600] > 5 * rabbit[800]
    assert rabbit[1600] > focus[1600]

    # Shape 3: FOCUS stays roughly constant across the sweep (within 2x).
    assert max(focus.values()) < 2.0 * min(focus.values())
    # ... and in the sub-second band the paper reports.
    assert max(focus.values()) < 1500.0
