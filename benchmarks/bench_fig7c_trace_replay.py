"""Fig. 7c — query latency for real-world traces vs node count (§X-C).

The paper replays a Chameleon-cloud trace of OpenStack VM placement events
(75K events over 10 months) at 15,000x — about 43 queries/second — with the
FOCUS response cache disabled, and reports per-request latency percentiles
(p50/p75/p99) as the fleet grows.

Paper findings: latency rises steadily up to ~600 nodes, then stays roughly
constant — because beyond that point the *average group size* stops growing
(~150 members; the DGM forks groups at the size cap) and only the number of
groups increases.
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.core.config import FocusConfig
from repro.harness import build_focus_cluster
from repro.sim.metrics import Histogram
from repro.workloads import ChameleonTraceGenerator, node_spec_factory

NODE_COUNTS = (100, 200, 400, 800, 1600)
EVENTS_PER_POINT = 120


def run_point(num_nodes: int) -> dict:
    config = FocusConfig(cache_enabled=False)
    scenario = build_focus_cluster(
        num_nodes,
        seed=BENCH_SEED,
        config=config,
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=BENCH_SEED),
    )
    scenario.sim.run_until(3.0)
    pairs = ChameleonTraceGenerator(seed=7).accelerated_queries(
        EVENTS_PER_POINT, limit=10, freshness_ms=0.0
    )
    # Exact mode on purpose: Fig. 7c reports exact replay percentiles and
    # the trace is bounded, so streaming approximation buys nothing here.
    latency = Histogram("trace")
    start = scenario.sim.now
    for offset, query in pairs:
        scenario.sim.schedule_at(
            start + offset,
            scenario.app.query,
            query,
            lambda response: latency.observe(response.elapsed),
        )
    scenario.sim.run_until(start + pairs[-1][0] + 8.0)

    groups = [g for g in scenario.service.dgm.groups.all_groups()
              if g.size_estimate() > 0]
    sizes = [g.size_estimate() for g in groups]
    return {
        "nodes": num_nodes,
        "completed": latency.count,
        "p50_ms": latency.percentile(50) * 1000,
        "p75_ms": latency.percentile(75) * 1000,
        "p99_ms": latency.percentile(99) * 1000,
        "groups": len(groups),
        "avg_group": sum(sizes) / len(sizes),
        "max_group": max(sizes),
    }


@pytest.mark.benchmark(group="fig7c")
def test_fig7c_trace_replay(benchmark, record_rows):
    results = benchmark.pedantic(
        lambda: [run_point(n) for n in NODE_COUNTS], rounds=1, iterations=1
    )
    record_rows(
        "Fig. 7c — trace replay latency percentiles (~43 q/s, cache off)",
        ["nodes", "p50 (ms)", "p75 (ms)", "p99 (ms)", "groups", "avg group",
         "max group"],
        [
            (r["nodes"], round(r["p50_ms"]), round(r["p75_ms"]),
             round(r["p99_ms"]), r["groups"], round(r["avg_group"]),
             r["max_group"])
            for r in results
        ],
    )
    by_nodes = {r["nodes"]: r for r in results}
    for r in results:
        assert r["completed"] == EVENTS_PER_POINT

    # Shape 1: latency grows up to the mid hundreds of nodes...
    assert by_nodes[100]["p50_ms"] < by_nodes[400]["p50_ms"]

    # Shape 2: ...then plateaus: 800 -> 1600 changes p50 by <35%.
    p50_800, p50_1600 = by_nodes[800]["p50_ms"], by_nodes[1600]["p50_ms"]
    assert abs(p50_1600 - p50_800) / p50_800 < 0.35
    # And stays sub-second at the median, as in the paper.
    assert p50_1600 < 1000.0

    # Shape 3: the group-size cap is what flattens the curve — the average
    # group stops growing (paper: ~150) while the group count keeps rising.
    assert by_nodes[1600]["max_group"] <= 160  # fork threshold (150) + slack
    assert by_nodes[1600]["groups"] > by_nodes[400]["groups"]
    assert by_nodes[1600]["avg_group"] <= 160
