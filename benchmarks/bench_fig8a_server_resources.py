"""Fig. 8a — CPU and RAM of the FOCUS server under trace replay (§X-D).

While replaying the cloud trace (as in Fig. 7c), the paper samples the FOCUS
server's resource usage and finds it is "not resource-hungry": on a 4-vCPU /
16 GB VM, CPU stays around or below ~10% and RAM grows only modestly even
past 1.5k nodes (the related-work section contrasts this with Kubernetes
needing 36 vCPUs / 60 GB to manage 500 nodes).
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.core.config import FocusConfig
from repro.harness import build_focus_cluster
from repro.workloads import ChameleonTraceGenerator, node_spec_factory

NODE_COUNTS = (200, 800, 1600)
EVENTS_PER_POINT = 120


def run_point(num_nodes: int) -> dict:
    config = FocusConfig(cache_enabled=False)
    scenario = build_focus_cluster(
        num_nodes,
        seed=BENCH_SEED,
        config=config,
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=BENCH_SEED),
    )
    scenario.sim.run_until(3.0)
    pairs = ChameleonTraceGenerator(seed=7).accelerated_queries(
        EVENTS_PER_POINT, limit=10, freshness_ms=0.0
    )
    start = scenario.sim.now
    for offset, query in pairs:
        scenario.sim.schedule_at(
            start + offset, scenario.app.query, query, lambda response: None
        )
    end = start + pairs[-1][0] + 5.0
    scenario.sim.run_until(end)
    resources = scenario.service.resources
    return {
        "nodes": num_nodes,
        "cpu": resources.mean_cpu_over(start, end),
        "ram_mb": resources.mean_ram_over(start, end),
    }


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_server_resources(benchmark, record_rows):
    results = benchmark.pedantic(
        lambda: [run_point(n) for n in NODE_COUNTS], rounds=1, iterations=1
    )
    record_rows(
        "Fig. 8a — FOCUS server resources during trace replay (4 vCPU / 16 GB)",
        ["nodes", "CPU util", "RAM (MB)", "RAM (% of 16GB)"],
        [
            (r["nodes"], round(r["cpu"], 3), round(r["ram_mb"]),
             f"{100 * r['ram_mb'] / 16384:.1f}%")
            for r in results
        ],
    )
    by_nodes = {r["nodes"]: r for r in results}

    # Shape 1: CPU stays low at every size (paper: ~10% managing 1600
    # nodes). Note an emergent nuance of the fan-out cost model: *small*
    # fleets need several small-group pulls per query while a 1600-node
    # fleet is covered by one ~150-member group, so per-query server work
    # actually shrinks with scale — the headline "not resource-hungry"
    # holds everywhere.
    for r in results:
        assert r["cpu"] <= 0.15, r
    # Shape 2: RAM grows modestly and stays far below the VM's 16 GB.
    assert by_nodes[200]["ram_mb"] < by_nodes[1600]["ram_mb"]
    assert by_nodes[1600]["ram_mb"] < 0.1 * 16384
