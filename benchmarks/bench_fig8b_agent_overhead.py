"""Fig. 8b — bandwidth overhead on node agents vs p2p group size (§X-D).

Two conditions, as in the paper:

* **normal operation** — membership maintenance only (SWIM probes, the odd
  piggyback, periodic anti-entropy): "negligible (under 2 KBps), even for
  groups with more than 400 members";
* **query processing at 1 query/s** — the measured node receives each query
  and, acting as the aggregating member, collects every member's direct
  response (§VII): "less than 10 KBps for groups with 100 nodes and about
  50 KBps for groups with 400 nodes".

Methodology note: the load-balanced router normally spreads aggregation duty
over random members; this microbenchmark pins the queries on one member to
measure the per-aggregation cost the paper plots.
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.core.query import Query, QueryTerm
from repro.harness.scenarios import build_single_group_cluster

GROUP_SIZES = (50, 100, 200, 400)
MEASURE_SECONDS = 10.0


def node_bandwidth_kbps(scenario, node_id: str, start: float, end: float) -> float:
    agent = scenario.agent(node_id)
    total = sum(
        scenario.network.meter(address).bytes_in_window(start, end)
        for address in agent.endpoint_addresses()
    )
    return total / (end - start) / 1024.0


def run_point(group_size: int) -> dict:
    scenario = build_single_group_cluster(group_size, seed=BENCH_SEED)
    sim = scenario.sim
    sim.run_until(5.0)

    # -- normal operation: a member with no special duties.
    idle_member = scenario.agents[-1].node_id
    start = sim.now
    sim.run_until(start + MEASURE_SECONDS)
    normal_kbps = node_bandwidth_kbps(scenario, idle_member, start, sim.now)

    # The query phase pins aggregation duty on one member (see run_query_phase).
    target = scenario.agents[1].node_id
    group = scenario.agents[1].memberships["load"].group
    return {"scenario": scenario, "normal": normal_kbps, "target": target,
            "group": group, "group_size": group_size}


def run_query_phase(point: dict) -> dict:
    scenario = point["scenario"]
    sim = scenario.sim
    query = Query([QueryTerm.at_least("load", 0.0)], freshness_ms=0.0)
    start = sim.now

    def fire() -> None:
        scenario.app.call(
            point["target"],
            "node.group-query",
            {"group": point["group"], "query": query.to_json()},
            on_reply=lambda result: None,
            timeout=5.0,
        )

    for index in range(int(MEASURE_SECONDS)):
        sim.schedule_at(start + index * 1.0, fire)
    sim.run_until(start + MEASURE_SECONDS + 3.0)
    querying_kbps = node_bandwidth_kbps(scenario, point["target"], start, sim.now)
    return {
        "group_size": point["group_size"],
        "normal_kbps": point["normal"],
        "querying_kbps": querying_kbps,
    }


def run_full_point(group_size: int) -> dict:
    point = run_point(group_size)
    return run_query_phase(point)


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_agent_overhead(benchmark, record_rows):
    results = benchmark.pedantic(
        lambda: [run_full_point(n) for n in GROUP_SIZES], rounds=1, iterations=1
    )
    record_rows(
        "Fig. 8b — node agent bandwidth (KB/s) vs group size",
        ["group size", "normal operation", "processing 1 query/s"],
        [
            (r["group_size"], round(r["normal_kbps"], 2),
             round(r["querying_kbps"], 1))
            for r in results
        ],
    )
    by_size = {r["group_size"]: r for r in results}

    # Shape 1: normal operation is negligible even at 400 members (<2 KB/s).
    for r in results:
        assert r["normal_kbps"] < 2.0, r

    # Shape 2: query processing scales linearly-ish with group size — tens
    # of KB/s for hundreds of members (paper: ~10 KB/s at 100, ~50 at 400;
    # our JSON responses are a constant factor heavier, same slope).
    assert 5.0 < by_size[100]["querying_kbps"] < 100.0
    assert 20.0 < by_size[400]["querying_kbps"] < 300.0
    assert by_size[400]["querying_kbps"] > 2.0 * by_size[100]["querying_kbps"]

    # Shape 3: querying costs an order of magnitude more than idling.
    assert by_size[400]["querying_kbps"] > 10 * by_size[400]["normal_kbps"]
