"""Fig. 8c — query latency by response source: cache vs p2p groups (§X-D).

Paper findings:

* a cache hit answers in ~45 ms — an order of magnitude below any group
  pull (the cost is server-side processing, not gossip);
* pulling from a p2p group costs a gossip convergence round: it grows with
  group size but stays under a second even for groups of hundreds of
  members (fanout 4, interval 100 ms — footnote 2's 400-member group
  converges in ~0.6 s).
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.core.query import Query, QueryTerm
from repro.harness.scenarios import build_single_group_cluster

GROUP_SIZES = (50, 100, 200, 400)


def measure(scenario, freshness_ms: float) -> float:
    from repro.harness import run_query

    query = Query(
        [QueryTerm.at_least("load", 0.0)], freshness_ms=freshness_ms
    )
    return run_query(scenario, query).elapsed


def run_group_point(group_size: int) -> dict:
    scenario = build_single_group_cluster(
        group_size, seed=BENCH_SEED, record_bandwidth_events=False
    )
    scenario.sim.run_until(5.0)
    # Average a few pulls; each goes to a fresh random member.
    pulls = [measure(scenario, freshness_ms=0.0) for _ in range(5)]
    # Then a cached answer (first prime it, then hit it).
    measure(scenario, freshness_ms=120_000.0)
    cache_hit = measure(scenario, freshness_ms=120_000.0)
    return {
        "group_size": group_size,
        "pull_ms": sum(pulls) / len(pulls) * 1000.0,
        "cache_ms": cache_hit * 1000.0,
    }


@pytest.mark.benchmark(group="fig8c")
def test_fig8c_latency_vs_group_size(benchmark, record_rows):
    results = benchmark.pedantic(
        lambda: [run_group_point(n) for n in GROUP_SIZES], rounds=1, iterations=1
    )
    record_rows(
        "Fig. 8c — query latency (ms) by response source",
        ["source", "latency (ms)"],
        [("cache", round(results[0]["cache_ms"], 1))]
        + [
            (f"p2p group ({r['group_size']} members)", round(r["pull_ms"], 1))
            for r in results
        ],
    )
    by_size = {r["group_size"]: r for r in results}

    # Shape 1: the cache answers in ~45 ms (server processing dominated).
    for r in results:
        assert 30.0 < r["cache_ms"] < 70.0

    # Shape 2: cache is ~an order of magnitude below any group pull.
    for r in results:
        assert r["pull_ms"] > 4 * r["cache_ms"]

    # Shape 3: group pulls grow with size but stay under a second even for
    # hundreds of members.
    assert by_size[50]["pull_ms"] < by_size[400]["pull_ms"]
    assert by_size[400]["pull_ms"] < 1000.0

    # Footnote 2: a 400-member group converges in roughly 0.6 s.
    assert 300.0 < by_size[400]["pull_ms"] < 1000.0
