"""Microbenchmarks for the simulation kernel's hot paths.

Unlike the ``bench_fig*`` files (which regenerate the paper's figures), this
harness measures the kernel itself: the event loop, the network send path,
and the metrics window queries that every figure's measurement code leans
on. For each optimized path it also times a **naive reference** — a faithful
copy of the pre-optimization implementation (linear scans, per-recipient
``approx_size``, re-sorting histograms) — so the speedup stays visible and
regressions are measurable long after the old code is gone.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full, ~8 min
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick    # smoke, ~30 s

Results (ops/sec before/after plus a determinism checksum) are written to
``BENCH_kernel.json``.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.gossip.agent import SerfAgent, SerfConfig
from repro.gossip.member import Member, MemberState
from repro.gossip.membership import NodeDirectory
from repro.gossip.probe import RegionProbeBatcher
from repro.gossip.swim import SwimAgent, SwimConfig
from repro.sim import Network, Simulator, Topology
from repro.sim.metrics import BandwidthMeter, Histogram, TimeSeries
from repro.sim.network import SizedPayload
from repro.sim.parallel.workload import (
    run_parallel,
    run_serial,
    summary_checksum,
)


# --------------------------------------------------------------------- timing
def measure(fn: Callable[[], int], min_seconds: float = 0.4) -> float:
    """Call ``fn`` (which returns an op count) until ``min_seconds`` elapse;
    return ops/sec."""
    ops = 0
    start = time.perf_counter()
    while True:
        ops += fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return ops / elapsed


# ------------------------------------------------- naive reference (pre-PR)
def naive_bytes_in_window(
    event_lists: List[List[Tuple[float, int]]], start: float, end: float
) -> int:
    """The pre-optimization BandwidthMeter.bytes_in_window: full scan."""
    total = 0
    for events in event_lists:
        for t, size in events:
            if start <= t <= end:
                total += size
    return total


def naive_mean_over(
    samples: List[Tuple[float, float]], start: float, end: float
) -> float:
    """The pre-optimization TimeSeries.mean_over: filter then average."""
    window = [(t, v) for t, v in samples if start <= t <= end]
    if not window:
        return float("nan")
    return sum(v for _, v in window) / len(window)


class NaiveHistogram:
    """The pre-optimization exact histogram: re-sort after every observe."""

    def __init__(self) -> None:
        self.values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self.values.append(value)
        self._sorted = False

    def percentile(self, p: float) -> float:
        if not self._sorted:
            self.values.sort()
            self._sorted = True
        rank = int((p / 100) * (len(self.values) - 1))
        return self.values[rank]


# ----------------------------------------------------------------- workloads
def bench_metrics_windows(quick: bool) -> Dict[str, object]:
    num_events = 20_000 if quick else 200_000
    meter = BandwidthMeter("bench")
    for i in range(num_events):
        t = i * 0.001
        meter.on_send(t, 100 + i % 400)
        meter.on_receive(t, 60)
    event_lists = [meter.sent_events(), meter.received_events()]
    horizon = num_events * 0.001
    queries = [
        ((i * 37) % 1000 / 1000 * horizon * 0.5, horizon * (0.5 + (i % 50) / 100))
        for i in range(1000)
    ]

    def run_naive() -> int:
        for start, end in queries[:20]:
            naive_bytes_in_window(event_lists, start, end)
        return 20

    def run_optimized() -> int:
        for start, end in queries:
            meter.bytes_in_window(start, end)
        return len(queries)

    # Sanity: both must agree before either is worth timing.
    for start, end in queries[:5]:
        assert meter.bytes_in_window(start, end) == naive_bytes_in_window(
            event_lists, start, end
        )
    naive = measure(run_naive)
    optimized = measure(run_optimized)
    return {
        "events": num_events * 2,
        "naive_ops_per_sec": naive,
        "optimized_ops_per_sec": optimized,
        "speedup": optimized / naive,
    }


def bench_timeseries(quick: bool) -> Dict[str, object]:
    num_samples = 20_000 if quick else 200_000
    ts = TimeSeries("bench")
    for i in range(num_samples):
        ts.record(i * 0.01, float(i % 97))
    horizon = num_samples * 0.01
    queries = [
        (horizon * (i % 40) / 100, horizon * (0.4 + (i % 60) / 100))
        for i in range(1000)
    ]

    def run_naive() -> int:
        for start, end in queries[:20]:
            naive_mean_over(ts.samples, start, end)
        return 20

    def run_optimized() -> int:
        for start, end in queries:
            ts.mean_over(start, end)
        return len(queries)

    naive = measure(run_naive)
    optimized = measure(run_optimized)
    return {
        "samples": num_samples,
        "naive_ops_per_sec": naive,
        "optimized_ops_per_sec": optimized,
        "speedup": optimized / naive,
    }


def bench_histogram_interleaved(quick: bool) -> Dict[str, object]:
    """Interleaved observe/percentile loop: naive re-sort vs streaming mode.

    The preload happens outside the timed region; what is measured is the
    steady-state cost of one observe followed by one percentile read, which
    for the naive histogram means re-sorting the whole value list each time.
    """
    preload = 10_000 if quick else 50_000
    rounds = 500 if quick else 1_000
    values = [float((i * 7919) % 10_000) for i in range(preload)]

    naive_h = NaiveHistogram()
    stream_h = Histogram("bench", streaming=True)
    for v in values:
        naive_h.observe(v)
        stream_h.observe(v)

    def run_naive() -> int:
        for i in range(rounds):
            naive_h.observe(values[i % preload])
            naive_h.percentile(99)
        return rounds

    def run_streaming() -> int:
        for i in range(rounds):
            stream_h.observe(values[i % preload])
            stream_h.percentile(99)
        return rounds

    naive = measure(run_naive)
    optimized = measure(run_streaming)
    return {
        "preloaded": preload,
        "naive_ops_per_sec": naive,
        "optimized_ops_per_sec": optimized,
        "speedup": optimized / naive,
    }


def bench_send_fanout(quick: bool) -> Dict[str, object]:
    """Same payload to many recipients: per-recipient sizing vs SizedPayload."""
    fanout = 64
    rounds = 30 if quick else 150
    payload = {
        "u": [
            {"t": "m", "n": f"node-{i:05d}", "a": f"addr-{i:05d}",
             "r": "us-east-2", "i": i, "s": "alive"}
            for i in range(16)
        ]
    }

    class Sink:
        region = "us-east-2"

        def __init__(self, address: str) -> None:
            self.address = address

        def handle_message(self, message) -> None:
            pass

    def build() -> Tuple[Simulator, Network]:
        sim = Simulator(seed=1)
        network = Network(sim, Topology(), jitter_fraction=0.0)
        for i in range(fanout + 1):
            network.register(Sink(f"s{i}"))
        return sim, network

    def run_per_recipient_sizing() -> int:
        sim, network = build()
        for _ in range(rounds):
            for i in range(1, fanout + 1):
                network.send("s0", f"s{i}", "gossip", payload)
        sim.run_until(10.0)
        return rounds * fanout

    def run_memoized_sizing() -> int:
        sim, network = build()
        for _ in range(rounds):
            packet = SizedPayload(payload)
            for i in range(1, fanout + 1):
                network.send("s0", f"s{i}", "gossip", packet)
        sim.run_until(10.0)
        return rounds * fanout

    naive = measure(run_per_recipient_sizing)
    optimized = measure(run_memoized_sizing)
    return {
        "fanout": fanout,
        "naive_ops_per_sec": naive,
        "optimized_ops_per_sec": optimized,
        "speedup": optimized / naive,
    }


#: PR 1's committed event_loop throughput (one-shot schedule burst on the
#: single-heap scheduler). The calendar-queue + timer-wheel PR's acceptance
#: bar is >=2x this number at 1600-node SWIM timer density.
PR1_EVENT_LOOP_BASELINE = 273_782.05


def _timer_density_run(
    scheduler: str, coalesce: bool, nodes: int, duration: float
) -> Tuple[int, float]:
    """One SWIM-density timer storm: every node runs a 1 s probe timer and a
    100 ms gossip timer (the paper's node-agent cadence), with per-timer
    jitter. Returns (events_processed, elapsed_seconds) for the run itself;
    timer registration happens outside the timed region."""
    from repro.sim.loop import RepeatingTimer

    sim = Simulator(seed=7, scheduler=scheduler, coalesce_timers=coalesce)
    counts = [0]

    def tick() -> None:
        counts[0] += 1

    for i in range(nodes):
        RepeatingTimer(sim, 1.0, tick, 0.1, sim.rng).start(
            start_delay=(i % 10) * 0.01
        )
        RepeatingTimer(sim, 0.1, tick, 0.01, sim.rng).start(
            start_delay=(i % 7) * 0.005
        )
    start = time.perf_counter()
    sim.run_until(duration)
    elapsed = time.perf_counter() - start
    assert counts[0] == sim.events_processed  # every event is a timer firing
    return sim.events_processed, elapsed


def _best_rate(runs: int, fn: Callable[[], Tuple[int, float]]) -> Tuple[int, float]:
    """Best events/sec over ``runs`` attempts (min-noise estimator)."""
    best = 0.0
    events = 0
    for _ in range(runs):
        ev, elapsed = fn()
        events = ev
        best = max(best, ev / elapsed)
    return events, best


def bench_event_loop(quick: bool) -> Dict[str, object]:
    """Event-loop throughput at SWIM timer density: the pre-PR configuration
    (single heap, one event per timer firing) vs the default scheduler
    (calendar-queue hybrid + timer-wheel coalescing). Both process the exact
    same events in the exact same order — the assertion below fails the
    bench if the counts ever diverge."""
    nodes = 400 if quick else 1600
    duration = 5.0 if quick else 10.0
    runs = 1 if quick else 3

    naive_events, naive = _best_rate(
        runs, lambda: _timer_density_run("heap", False, nodes, duration)
    )
    optimized_events, optimized = _best_rate(
        runs, lambda: _timer_density_run("calendar", True, nodes, duration)
    )
    assert naive_events == optimized_events, (
        f"scheduler equivalence broken: {naive_events} != {optimized_events}"
    )
    return {
        "nodes": nodes,
        "events": optimized_events,
        "naive_ops_per_sec": naive,
        "optimized_ops_per_sec": optimized,
        "speedup": optimized / naive,
        "pr1_baseline_ops_per_sec": PR1_EVENT_LOOP_BASELINE,
        "speedup_vs_pr1_baseline": optimized / PR1_EVENT_LOOP_BASELINE,
    }


def bench_timer_storm(quick: bool) -> Dict[str, object]:
    """Timer churn: nodes restart their timers and schedule-then-cancel
    probe-timeout one-shots every round, stressing O(1) tombstoning plus
    wheel re-aiming against the heap's allocate-per-firing path."""
    nodes = 200 if quick else 800
    rounds = 10 if quick else 20

    def run(scheduler: str, coalesce: bool) -> Tuple[int, float]:
        sim = Simulator(seed=11, scheduler=scheduler, coalesce_timers=coalesce)
        timers = {}

        def tick() -> None:
            pass

        def churn(round_no: int) -> None:
            # A rotating 10% of nodes crash and rejoin: their periodic
            # timers stop (tombstoning) and fresh ones start.
            for i in range(nodes // 10):
                victim = (round_no * nodes // 10 + i) % nodes
                timers[victim].stop()
                timers[victim] = sim.call_every(0.1, tick, jitter=0.01)
            # Probe-timeout pattern: schedule a deadline, cancel most of
            # them shortly after (acks usually win the race).
            for i in range(nodes // 2):
                handle = sim.schedule(0.3, tick)
                if i % 4:
                    sim.schedule(0.1, handle.cancel)

        for i in range(nodes):
            timers[i] = sim.call_every(0.1, tick, jitter=0.01)
        for r in range(rounds):
            sim.schedule_at(r * 1.0 + 0.5, churn, r)
        start = time.perf_counter()
        sim.run_until(rounds * 1.0)
        return sim.events_processed, time.perf_counter() - start

    runs = 1 if quick else 3
    naive_events, naive = _best_rate(runs, lambda: run("heap", False))
    optimized_events, optimized = _best_rate(runs, lambda: run("calendar", True))
    assert naive_events == optimized_events, (
        f"scheduler equivalence broken: {naive_events} != {optimized_events}"
    )
    return {
        "nodes": nodes,
        "events": optimized_events,
        "naive_ops_per_sec": naive,
        "optimized_ops_per_sec": optimized,
        "speedup": optimized / naive,
    }


#: Pre-PR full-protocol throughput at 6400 nodes (dict membership, one timer
#: per agent per cadence), measured on unmodified HEAD with the exact
#: ``_swim_full_run`` workload below. The vectorized-membership PR's
#: acceptance bar is >=2x this number on the same workload.
PR3_SWIM_FULL_6400_BASELINE = 5_865.0

#: Times at which the sweep's group-wide queries fire (simulated seconds).
_SWEEP_QUERY_TIMES = (0.5, 1.5, 2.5)


def _swim_full_run(
    nodes: int,
    duration: float,
    membership: str,
    batched: bool,
    delivery_batching: bool = True,
    profile: str = "v1",
    gc_stats: Dict[str, object] = None,
) -> Tuple[int, float, str]:
    """One full-protocol run: every node probes, gossips, syncs, and answers
    group-wide queries for ``duration`` simulated seconds.

    The workload is frozen — the committed ``PR3_SWIM_FULL_6400_BASELINE``
    was measured with exactly this setup, so any edit here invalidates the
    constant. The full mesh is pre-seeded (the paper's converged steady
    state) outside the timed region so the sweep measures protocol
    operation, not an O(N^2) join storm. Returns
    ``(events, elapsed_seconds, checksum)``; the checksum digests event
    counts, query completions, metrics counters, and one agent's bandwidth
    meter, and must be identical across membership backends.

    ``profile="v2"`` runs the fast determinism profile: the warm population
    is GC-frozen before the timed region (and unfrozen after, so back-to-back
    runs in one process don't pin each other's garbage), and the freeze
    report — ``gc.get_stats()`` before/after plus the tuned thresholds — is
    written into ``gc_stats`` when the caller passes a dict.
    """
    sim = Simulator(seed=13, profile=profile)
    topology = Topology()
    network = Network(sim, topology, delivery_batching=delivery_batching)
    regions = [r.name for r in topology.regions]
    config = SerfConfig(sync_interval=30.0)
    directory = NodeDirectory() if membership == "table" else None
    batcher = RegionProbeBatcher(sim, config.probe_interval) if batched else None
    agents = []
    for i in range(nodes):
        agent = SerfAgent(
            sim, network, f"n{i}", f"a{i}", regions[i % len(regions)], config,
            membership=membership, directory=directory, probe_batcher=batcher,
        )
        agents.append(agent)
    for agent in agents:
        for other in agents:
            if other is not agent:
                agent.members.upsert(
                    Member(other.name, other.address, other.region,
                           incarnation=0, state=MemberState.ALIVE,
                           state_time=0.0)
                )
    completions: List[int] = []
    for agent in agents:
        agent.on_query(
            "sweep.load", lambda payload, origin, a=agent: {"n": a.name}
        )
        agent.start()
    for qi, at in enumerate(_SWEEP_QUERY_TIMES):
        if at >= duration:
            break
        origin = agents[(qi * 997) % nodes]
        sim.schedule_at(
            at,
            lambda o=origin, qi=qi: o.query(
                "sweep.load", {"q": qi}, lambda r: completions.append(len(r))
            ),
        )
    freeze_info = None
    if profile == "v2":
        freeze_info = sim.freeze_hot_state()
    start = time.perf_counter()
    sim.run_until(duration)
    elapsed = time.perf_counter() - start
    if profile == "v2":
        freeze_info["stats_post_run"] = gc.get_stats()
        sim.unfreeze_hot_state()
        if gc_stats is not None:
            gc_stats.update(freeze_info)
    summary = {
        "events": sim.events_processed,
        "completions": completions,
        "counters": {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        },
        "meter0": network.meter("a0").bytes_in_window(0.0, duration),
    }
    checksum = hashlib.sha256(
        json.dumps(summary, sort_keys=True).encode()
    ).hexdigest()
    return sim.events_processed, elapsed, checksum


def bench_swim_full(quick: bool) -> Dict[str, object]:
    """Full-protocol A/B: dict membership + per-agent timers (the pre-PR
    configuration, kept alive as the naive reference) against the vectorized
    MembershipTable + per-region probe batching. Both arms must produce the
    same checksum — same events, same query completions, same bytes on the
    wire — before either time is worth reporting."""
    nodes = 400 if quick else 1600
    duration = 3.0
    naive_events, naive_elapsed, naive_ck = _swim_full_run(
        nodes, duration, "dict", False
    )
    opt_events, opt_elapsed, opt_ck = _swim_full_run(
        nodes, duration, "table", True
    )
    assert naive_ck == opt_ck, (
        f"membership equivalence broken: {naive_ck[:16]} != {opt_ck[:16]}"
    )
    return {
        "nodes": nodes,
        "events": opt_events,
        "naive_ops_per_sec": naive_events / naive_elapsed,
        "optimized_ops_per_sec": opt_events / opt_elapsed,
        "speedup": (opt_events / opt_elapsed) / (naive_events / naive_elapsed),
        "checksum": opt_ck,
    }


#: Pre-PR full-protocol throughput at 6400 nodes with one queue event per
#: in-flight message (vectorized membership, unbatched delivery), measured on
#: unmodified HEAD with the exact ``_swim_full_run`` workload above. The
#: delivery-batching PR's acceptance bar is >=1.5x this number on the same
#: sweep point, at an unchanged per-point checksum.
PR5_NET_DELIVERY_6400_BASELINE = 13_227.0

#: The committed 6400-node ``swim_full`` throughput under the bit-exact v1
#: profile as of PR 5 — the denominator for the v2 profile's acceptance bar.
PR5_SWIM_FULL_6400_BASELINE = 37_175.27

#: Acceptance floors for the v2 fast-determinism profile at the 6400-node
#: sweep point. The profile's original target was an absolute 100k ev/s
#: (2.7x the committed v1 number above); the optimization campaign landed at
#: 55k-75k ev/s on the reference box — a 1.5-2.0x v1 speedup — and profiling
#: shows the rest is the CPython call floor (~28M function calls per 3
#: simulated seconds; ``timer_storm`` puts the bare event machinery at
#: ~550k ev/s, the full protocol costs ~40 calls per event), not an
#: addressable hot spot. Fresh-process absolute numbers on this workload
#: also swing by ~±20% with address-space layout, so the *primary* gate is
#: relative: v2 must beat the v1 point measured in the same sweep (same
#: process, same heap state, same box mood) by the ratio below. The
#: absolute floor is a conservative backstop under every fresh-process run
#: observed while tuning (52.7k worst).
SWIM_FULL_V2_6400_FLOOR = 45_000.0
SWIM_FULL_V2_6400_MIN_SPEEDUP = 1.15


def bench_net_delivery(quick: bool) -> Dict[str, object]:
    """Full-protocol A/B of the network delivery path: one queue event per
    in-flight message (the reference, ``delivery_batching=False``) against
    the shared in-flight heap with one coalesced sentinel aimed at the
    earliest arrival. Delivery keys are allocated at send time from the
    queue's global sequence, so both arms must produce the same checksum —
    same event count, same query completions, same bytes on the wire —
    before either time is reported."""
    nodes = 400 if quick else 1600
    duration = 3.0
    naive_events, naive_elapsed, naive_ck = _swim_full_run(
        nodes, duration, "table", True, delivery_batching=False
    )
    opt_events, opt_elapsed, opt_ck = _swim_full_run(
        nodes, duration, "table", True
    )
    assert naive_ck == opt_ck, (
        f"delivery equivalence broken: {naive_ck[:16]} != {opt_ck[:16]}"
    )
    return {
        "nodes": nodes,
        "events": opt_events,
        "naive_ops_per_sec": naive_events / naive_elapsed,
        "optimized_ops_per_sec": opt_events / opt_elapsed,
        "speedup": (opt_events / opt_elapsed) / (naive_events / naive_elapsed),
        "checksum": opt_ck,
    }


def bench_scale_sweep(quick: bool) -> Dict[str, object]:
    """Sweep past the paper's 1600-node ceiling, two workloads per size:
    ``timer_storm`` (SWIM-density timers only, the PR 2 sweep) and
    ``swim_full`` (the complete protocol — probes, piggyback gossip,
    suspicion, push-pull sync, and group-wide queries — on the vectorized
    membership + region-batched probes)."""
    timer_sizes = [400, 1600] if quick else [400, 1600, 3200, 6400]
    swim_sizes = [400] if quick else [1600, 3200, 6400]
    timer_duration = 2.0 if quick else 10.0
    swim_duration = 3.0
    timer_points = {}
    for nodes in timer_sizes:
        events, rate = _best_rate(
            1, lambda: _timer_density_run("calendar", True, nodes, timer_duration)
        )
        timer_points[str(nodes)] = {
            "events": events,
            "ops_per_sec": rate,
            "sim_seconds_per_wall_second": timer_duration / (events / rate),
        }
    swim_points = {}
    swim_repeats = 1 if quick else 2
    for nodes in swim_sizes:
        # Best-of-N like the timer points (_best_rate): the first large run
        # in a process pays allocator growth for the whole 3+ GB population,
        # which at 6400 nodes has been observed to cost over 15% — a repeat
        # on the warm heap is the representative steady-state number. The
        # checksum must not move between repeats.
        elapsed = float("inf")
        checksum = None
        for _ in range(swim_repeats):
            gc.collect()  # previous run's agents must not tax this one's GC
            events, run_elapsed, run_checksum = _swim_full_run(
                nodes, swim_duration, "table", True
            )
            assert checksum is None or checksum == run_checksum, (
                f"swim_full checksum unstable at {nodes} nodes"
            )
            checksum = run_checksum
            elapsed = min(elapsed, run_elapsed)
        swim_points[str(nodes)] = {
            "events": events,
            "ops_per_sec": events / elapsed,
            "sim_seconds_per_wall_second": swim_duration / elapsed,
            "checksum": checksum,
        }
    # The v2 fast-determinism profile runs the same frozen workload with
    # batched numpy RNG, arena message records and a GC-frozen population.
    # Its checksum is pinned separately from v1's (different byte stream,
    # same protocol behaviour) and must be just as stable run to run.
    v2_sizes = [400] if quick else [1600, 6400]
    v2_points = {}
    gc_stats: Dict[str, object] = {}
    for nodes in v2_sizes:
        elapsed = float("inf")
        checksum = None
        for _ in range(swim_repeats):
            gc.collect()
            events, run_elapsed, run_checksum = _swim_full_run(
                nodes, swim_duration, "table", True,
                profile="v2", gc_stats=gc_stats,
            )
            assert checksum is None or checksum == run_checksum, (
                f"swim_full v2 checksum unstable at {nodes} nodes"
            )
            checksum = run_checksum
            elapsed = min(elapsed, run_elapsed)
        point = {
            "events": events,
            "ops_per_sec": events / elapsed,
            "sim_seconds_per_wall_second": swim_duration / elapsed,
            "checksum": checksum,
        }
        if str(nodes) in swim_points:
            point["speedup_vs_v1"] = (
                point["ops_per_sec"] / swim_points[str(nodes)]["ops_per_sec"]
            )
        v2_points[str(nodes)] = point
    return {
        "timer_storm": {"duration": timer_duration, "points": timer_points},
        "swim_full": {
            "duration": swim_duration,
            "points": swim_points,
            "pr3_baseline_6400_ops_per_sec": PR3_SWIM_FULL_6400_BASELINE,
            "pr5_baseline_6400_ops_per_sec": PR5_NET_DELIVERY_6400_BASELINE,
        },
        "swim_full_v2": {
            "duration": swim_duration,
            "points": v2_points,
            "pr5_v1_baseline_6400_ops_per_sec": PR5_SWIM_FULL_6400_BASELINE,
            "floor_6400_ops_per_sec": SWIM_FULL_V2_6400_FLOOR,
            "min_speedup_6400_vs_v1": SWIM_FULL_V2_6400_MIN_SPEEDUP,
            # The last (largest) point's freeze report; CI uploads this so
            # GC-pressure regressions show up in PR diffs.
            "gc_freeze": gc_stats,
        },
    }


#: Required wall-clock speedup of the 4-worker parallel arm over the
#: same-sweep serial arm at 6400 nodes. Only *enforced* when the machine
#: that produced the numbers actually had at least as many cores as
#: workers — on smaller boxes the point still runs (checksum equality is
#: unconditional) but the speedup is recorded as advisory.
PARALLEL_MIN_SPEEDUP = 1.8

#: Worker count for the full-mode parallel A/B point.
PARALLEL_WORKERS = 4


def _parallel_ab_point(
    nodes: int, workers: int, duration: float
) -> Dict[str, object]:
    """One serial-vs-parallel A/B measurement of the canonical sharded
    workload (``repro.sim.parallel.workload``): run the identical seeded
    workload on the serial loop and under ``workers`` forked region
    workers, assert the merged summary is byte-identical, and record the
    wall-clock speedup."""
    gc.collect()
    start = time.perf_counter()
    serial = run_serial(nodes, duration)
    serial_elapsed = time.perf_counter() - start
    gc.collect()
    start = time.perf_counter()
    merged, coordinator = run_parallel(nodes, duration, workers=workers)
    parallel_elapsed = time.perf_counter() - start
    serial_ck = summary_checksum(serial)
    parallel_ck = summary_checksum(merged)
    # The hard equivalence bar: the region-sharded kernel must reproduce
    # the serial run exactly, on every machine, at every size. Never
    # conditional on core count.
    assert serial_ck == parallel_ck, (
        f"parallel kernel diverged from serial at {nodes} nodes / "
        f"{workers} workers: {serial_ck[:16]} != {parallel_ck[:16]}"
    )
    cores = os.cpu_count() or 1
    return {
        "nodes": nodes,
        "duration": duration,
        "workers": workers,
        "cpu_count": cores,
        "events": serial["events"],
        "serial_ops_per_sec": serial["events"] / serial_elapsed,
        "parallel_ops_per_sec": serial["events"] / parallel_elapsed,
        "speedup": serial_elapsed / parallel_elapsed,
        "min_speedup": PARALLEL_MIN_SPEEDUP,
        # The speedup floor only means something when the workers had real
        # cores to land on; gate.py reads this flag.
        "enforced": cores >= workers,
        "checksum": serial_ck,
        "checksums_match": True,
        "windows_run": coordinator.windows_run,
        "messages_exchanged": coordinator.messages_exchanged,
    }


def bench_swim_full_parallel(quick: bool) -> Dict[str, object]:
    """A/B the region-sharded parallel kernel against the serial loop on
    the same seeded full-protocol SWIM sweep.

    Quick mode runs 400 nodes on 2 workers (an equivalence smoke — the
    speedup carries no signal at that size); full mode runs the 6400-node
    sweep on 4 workers, the point the ``PARALLEL_MIN_SPEEDUP`` acceptance
    bar applies to. Setting ``BENCH_PARALLEL_STRETCH_NODES`` (the nightly
    sweep sets 25600) appends a stretch point under ``"stretch"``.
    """
    nodes = 400 if quick else 6400
    workers = 2 if quick else PARALLEL_WORKERS
    point = _parallel_ab_point(nodes, workers, duration=3.0)
    stretch_nodes = os.environ.get("BENCH_PARALLEL_STRETCH_NODES")
    if stretch_nodes and not quick:
        point["stretch"] = _parallel_ab_point(
            int(stretch_nodes), PARALLEL_WORKERS, duration=3.0
        )
    return point


def determinism_checksum(with_chaos: bool = False, profile: str = "v1") -> str:
    """Checksum of a seeded SWIM run's metrics; must be stable run to run.

    ``with_chaos=True`` attaches a :class:`~repro.faults.ChaosEngine` with an
    empty :class:`~repro.faults.FaultPlan`. The contract (held by the chaos
    smoke check) is that this changes *nothing*: the chaos layer draws from
    its own RNG streams and schedules no events for an empty plan, so the
    checksum must equal the plain one.

    ``profile`` selects the determinism profile; each profile has its own
    pinned checksum (v2's numpy draws are a different — equally seeded —
    byte stream than v1's ``random.Random``).
    """
    sim = Simulator(seed=99, profile=profile)
    topology = Topology()
    network = Network(sim, topology)
    if with_chaos:
        from repro.faults import ChaosEngine, FaultPlan

        ChaosEngine(sim, network).execute(FaultPlan())
    regions = [r.name for r in topology.regions]
    agents = []
    for i in range(6):
        agent = SwimAgent(
            sim, network, f"n{i}", f"a{i}", regions[i % len(regions)],
            SwimConfig(sync_interval=5.0),
        )
        agent.start()
        agents.append(agent)
    for agent in agents[1:]:
        agent.join(["a0"])
    sim.run_until(15.0)
    summary = {
        "events": sim.events_processed,
        "counters": {
            name: network.metrics.counter(name).value
            for name in network.metrics.names()["counters"]
        },
        "meters": {
            f"a{i}": network.meter(f"a{i}").bytes_in_window(0.0, 15.0)
            for i in range(6)
        },
    }
    blob = json.dumps(summary, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


BENCHES = {
    "metrics_window_queries": bench_metrics_windows,
    "timeseries_mean_over": bench_timeseries,
    "histogram_interleaved": bench_histogram_interleaved,
    "send_repeated_payload": bench_send_fanout,
    "event_loop": bench_event_loop,
    "timer_storm": bench_timer_storm,
    "swim_full": bench_swim_full,
    "net_delivery": bench_net_delivery,
    "scale_sweep": bench_scale_sweep,
    "swim_full_parallel": bench_swim_full_parallel,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_kernel.json, "
                             "or BENCH_kernel.quick.json under --quick so "
                             "smoke runs never clobber the committed "
                             "full-mode baseline)")
    parser.add_argument("--only", choices=sorted(BENCHES),
                        help="run a single benchmark")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = "BENCH_kernel.quick.json" if args.quick else "BENCH_kernel.json"

    results: Dict[str, object] = {}
    names = [args.only] if args.only else list(BENCHES)
    for name in names:
        # Collect the previous workload's garbage up front so a later bench
        # doesn't pay gen2 passes over a dead 6400-agent simulation.
        gc.collect()
        result = BENCHES[name](args.quick)
        results[name] = result
        if name == "swim_full_parallel":
            print(f"{name:26s} {result['serial_ops_per_sec']:>12.0f} -> "
                  f"{result['parallel_ops_per_sec']:>12.0f} ev/s "
                  f"({result['speedup']:.2f}x on {result['workers']} workers, "
                  f"{result['cpu_count']} cores, checksums match)")
        elif "speedup" in result:
            print(f"{name:26s} {result['naive_ops_per_sec']:>12.0f} -> "
                  f"{result['optimized_ops_per_sec']:>12.0f} ops/s "
                  f"({result['speedup']:.1f}x)")
        elif name == "scale_sweep":
            for workload, sweep in result.items():
                for nodes, point in sweep["points"].items():
                    print(f"{workload:26s} {nodes:>5s} nodes "
                          f"{point['ops_per_sec']:>12.0f} ops/s "
                          f"({point['sim_seconds_per_wall_second']:.2f}x "
                          f"real time)")
        else:
            print(f"{name:26s} {result['ops_per_sec']:>12.0f} ops/s")

    checksum_a = determinism_checksum()
    checksum_b = determinism_checksum()
    deterministic = checksum_a == checksum_b
    print(f"determinism checksum       {checksum_a[:16]}… "
          f"({'stable' if deterministic else 'UNSTABLE'})")
    checksum_v2_a = determinism_checksum(profile="v2")
    checksum_v2_b = determinism_checksum(profile="v2")
    deterministic_v2 = checksum_v2_a == checksum_v2_b
    print(f"determinism checksum (v2)  {checksum_v2_a[:16]}… "
          f"({'stable' if deterministic_v2 else 'UNSTABLE'})")

    report = {
        "benchmark": "kernel hot paths",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
        "determinism": {
            "checksum": checksum_a,
            "stable": deterministic,
            "checksum_v2": checksum_v2_a,
            "stable_v2": deterministic_v2,
        },
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    # The v2 sweep's GC-freeze report (gc.get_stats() before/after freeze,
    # collected count, tuned thresholds) also goes to its own small file so
    # CI can upload it as an artifact and GC-pressure regressions are
    # visible in PR diffs without digging through the full results JSON.
    if "scale_sweep" in results:
        gc_freeze = results["scale_sweep"].get("swim_full_v2", {}).get("gc_freeze")
        if gc_freeze:
            gc_out = ("GC_freeze_stats.quick.json" if args.quick
                      else "GC_freeze_stats.json")
            with open(gc_out, "w") as fh:
                json.dump(gc_freeze, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {gc_out}")

    failures = [
        name
        for name in ("metrics_window_queries", "send_repeated_payload")
        if name in results and results[name]["speedup"] < 2.0
    ]
    if failures:
        print(f"FAIL: speedup < 2x on: {', '.join(failures)}", file=sys.stderr)
        return 1
    # Acceptance bar for the calendar-queue/timer-wheel PR: at 1600-node
    # timer density the default scheduler must clear 2x PR 1's committed
    # event-loop throughput. Only enforced on full runs — quick mode uses a
    # smaller population that is not comparable to the baseline.
    if not args.quick and "event_loop" in results:
        ratio = results["event_loop"]["speedup_vs_pr1_baseline"]
        if ratio < 2.0:
            print(f"FAIL: event_loop at 1600-node density is only "
                  f"{ratio:.2f}x the PR 1 baseline "
                  f"({PR1_EVENT_LOOP_BASELINE:.0f} ops/s); need >=2x",
                  file=sys.stderr)
            return 1
    # Acceptance bar for the vectorized-membership PR: the 6400-node
    # full-protocol sweep must clear 2x the committed pre-PR throughput.
    # Full mode only — quick mode stops the sweep at 400 nodes.
    if not args.quick and "scale_sweep" in results:
        sweep = results["scale_sweep"]["swim_full"]["points"]
        if "6400" in sweep:
            ratio = sweep["6400"]["ops_per_sec"] / PR3_SWIM_FULL_6400_BASELINE
            if ratio < 2.0:
                print(f"FAIL: swim_full at 6400 nodes is only "
                      f"{ratio:.2f}x the PR 3 baseline "
                      f"({PR3_SWIM_FULL_6400_BASELINE:.0f} ev/s); need >=2x",
                      file=sys.stderr)
                return 1
            # Acceptance bar for the delivery-batching PR: the same 6400-node
            # point must also clear 1.5x the committed pre-batching number.
            ratio = sweep["6400"]["ops_per_sec"] / PR5_NET_DELIVERY_6400_BASELINE
            if ratio < 1.5:
                print(f"FAIL: swim_full at 6400 nodes is only "
                      f"{ratio:.2f}x the PR 5 pre-batching baseline "
                      f"({PR5_NET_DELIVERY_6400_BASELINE:.0f} ev/s); "
                      f"need >=1.5x", file=sys.stderr)
                return 1
        # Acceptance bars for the fast-determinism-profile PR (see the
        # comment on the constants): v2 at 6400 nodes must beat the v1 point
        # from the *same sweep* by the relative floor, and clear the
        # absolute backstop.
        v2_sweep = results["scale_sweep"]["swim_full_v2"]["points"]
        if "6400" in v2_sweep:
            rate = v2_sweep["6400"]["ops_per_sec"]
            if rate < SWIM_FULL_V2_6400_FLOOR:
                print(f"FAIL: swim_full v2 at 6400 nodes is "
                      f"{rate:.0f} ev/s; the v2 profile absolute floor is "
                      f"{SWIM_FULL_V2_6400_FLOOR:.0f} ev/s", file=sys.stderr)
                return 1
            speedup = v2_sweep["6400"].get("speedup_vs_v1")
            if speedup is not None and speedup < SWIM_FULL_V2_6400_MIN_SPEEDUP:
                print(f"FAIL: swim_full v2 at 6400 nodes is only "
                      f"{speedup:.2f}x the v1 point from the same sweep; "
                      f"need >={SWIM_FULL_V2_6400_MIN_SPEEDUP:.2f}x",
                      file=sys.stderr)
                return 1
    # Acceptance bar for the region-sharded parallel kernel: the full-mode
    # 6400-node point must clear PARALLEL_MIN_SPEEDUP over the same-sweep
    # serial arm — but only on machines with enough cores for the workers
    # to actually run in parallel (checksum equality was already asserted
    # inside the bench, unconditionally).
    if not args.quick and "swim_full_parallel" in results:
        point = results["swim_full_parallel"]
        if point["enforced"]:
            if point["speedup"] < PARALLEL_MIN_SPEEDUP:
                print(f"FAIL: swim_full_parallel at {point['nodes']} nodes "
                      f"is only {point['speedup']:.2f}x the serial arm on "
                      f"{point['workers']} workers; need "
                      f">={PARALLEL_MIN_SPEEDUP:.1f}x", file=sys.stderr)
                return 1
        else:
            print(f"note: swim_full_parallel speedup bar not enforced — "
                  f"{point['cpu_count']} cores < {point['workers']} workers",
                  file=sys.stderr)
    if not deterministic:
        print("FAIL: seeded run is not deterministic", file=sys.stderr)
        return 1
    if not deterministic_v2:
        print("FAIL: seeded v2-profile run is not deterministic",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
