"""Saturation-knee benchmark for the overload defenses.

Sweeps open-loop offered query load through the serving plane's saturation
knee twice — once with every admission defense disabled (the bare CPU
service-time model of ``core/cpumodel.py``) and once with the full defense
stack from ``core/admission.py`` (token-bucket throttling, a bounded
admission queue with deadline shedding, bulkhead CPU lanes, and per-shard
circuit breakers) — at identical offered load, fleet, and seed.

The plane is deliberately tiny (two shards, one modeled core each, 20 ms of
query CPU) so the knee sits near 100 q/s undefended / 75 q/s on the
defended query bulkhead and the sweep is cheap to simulate. The load is
**open-loop** (``workloads.querygen.OpenLoopLoad``): arrivals are a seeded
schedule that does not slow down when the server backs up, which is what
exposes the knee — a closed loop self-throttles and hides it.

What the committed numbers must show (and ``main`` enforces):

* **off**, past the knee: goodput collapses (most arrivals time out behind
  an unbounded backlog) and the p99 of the answers that do land blows up
  toward the query timeout;
* **on**, at the same offered load: early, cheap shedding keeps the served
  rate at >= ``GOODPUT_FLOOR_FRACTION`` of the pre-knee peak and the
  admission queue's deadline keeps p99 under ``P99_BOUND_S``. Deep past the
  knee part of that served rate is the circuit breaker's degraded path —
  stale router-cache answers explicitly stamped with ``staleness_ms`` — so
  each point also reports its ``served_stale`` share.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_overload.py            # full, ~2 min
    PYTHONPATH=src python benchmarks/bench_overload.py --quick    # smoke, ~30 s

Results (both load curves, per-point shed/throttle/breaker counters, the
knee verdict booleans, and a pinned determinism checksum) are written to
``BENCH_overload.json`` (or ``BENCH_overload.quick.json`` under
``--quick``).
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import platform
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.admission import OverloadConfig
from repro.core.config import FocusConfig
from repro.gossip.agent import SerfConfig
from repro.harness import build_focus_cluster
from repro.workloads import node_spec_factory
from repro.workloads.querygen import LoadPhase, OpenLoopLoad, QueryWorkload

SETTLE_S = 3.0
NUM_NODES = 24
SHARDS = 2
#: Offered-load points (aggregate q/s) swept in each arm. The undefended
#: plane saturates near 100 q/s (2 shards x 1 core / 20 ms); the defended
#: query bulkhead near 75 q/s. Points at or below ``KNEE_QPS`` are
#: "pre-knee" when computing the defended arm's peak served rate.
FULL_POINTS = (30.0, 60.0, 100.0, 140.0, 200.0)
QUICK_POINTS = (30.0, 60.0, 200.0)
KNEE_QPS = 75.0
FULL_WINDOW_S = 20.0
QUICK_WINDOW_S = 8.0
#: Completions are collected this long past the last arrival, so slow
#: answers (the query timeout is 6 s) are counted rather than truncated.
TAIL_S = 12.0

#: Acceptance bars enforced on the defended arm at the deepest overload
#: point, and re-asserted against the committed baseline by the gate.
GOODPUT_FLOOR_FRACTION = 0.8
P99_BOUND_S = 3.0
#: The undefended arm at the deepest point must lose at least half its
#: arrivals and answer the survivors slower than the defended p99 bound.
OFF_COLLAPSE_CEILING = 0.5


def overload_config(defenses: bool) -> OverloadConfig:
    """The CPU model alone (``defenses=False``) or the full defense stack.

    Both arms share the same modeled capacity (one core per shard, 20 ms
    per query), so the only difference past the knee is what the plane does
    about the excess. The breaker's failure threshold sits above the
    steady-state shed rate of a fully saturated point (~60% of forwarded
    queries answered with a shed/throttle error), so sustained *intentional*
    load shedding does not flap the breaker — it stays armed for actual
    shard failure, which the failure suite exercises separately.
    """
    config = OverloadConfig(
        cpu_model_enabled=True,
        cores=1.0,
        per_query_cpu=0.02,
        per_registration_cpu=0.004,
        per_report_cpu=0.002,
    )
    if defenses:
        config.throttle_enabled = True
        config.throttle_rate = 80.0
        config.throttle_burst = 40.0
        config.queue_enabled = True
        config.queue_capacity = 64
        config.queue_discipline = "fifo"
        config.queue_deadline = 2.0
        config.bulkhead_enabled = True
        config.bulkhead_query_share = 0.75
        config.breaker_enabled = True
        config.breaker_failure_threshold = 0.85
        config.breaker_min_volume = 8
        config.breaker_latency_threshold = None
        config.breaker_window = 32
        config.breaker_cooldown = 4.0
        config.breaker_half_open_probes = 2
    return config


def bench_config(defenses: bool) -> FocusConfig:
    """Two-shard serving plane with the chosen overload posture."""
    return FocusConfig(
        shards=SHARDS,
        server_queue_enabled=True,
        query_timeout=6.0,
        report_interval=15.0,
        overload=overload_config(defenses),
        serf=SerfConfig(probe_interval=4.0, sync_interval=120.0),
    )


def percentile(values: List[float], fraction: float) -> float:
    """The ``fraction``-quantile of a list (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def open_loop(
    scenario,
    workload: QueryWorkload,
    load: OpenLoopLoad,
) -> List[Tuple[float, float, bool, bool, str]]:
    """Issue ``load``'s arrival schedule; collect completions through a tail.

    Returns ``(issued_at, elapsed, ok, timed_out, source)`` per completed
    query. Unlike the closed loop in ``bench_shards.py``, arrivals fire on
    schedule regardless of how far the server has backed up.
    """
    start = scenario.sim.now
    outcomes: List[Tuple[float, float, bool, bool, str]] = []

    def issue() -> None:
        issued_at = scenario.sim.now

        def record(response) -> None:
            ok = not response.timed_out and response.error is None
            outcomes.append((
                issued_at,
                scenario.sim.now - issued_at,
                ok,
                bool(response.timed_out),
                str(response.source),
            ))

        scenario.app.client.query(workload.next_query(), record, timeout=10.0)

    for offset in load.arrival_times():
        scenario.sim.schedule_at(start + offset, issue)
    scenario.sim.run_until(start + load.total_duration + TAIL_S)
    return outcomes


def plane_counters(scenario) -> Dict[str, int]:
    """Shed/throttle/breaker counters summed over the plane's shards."""
    counters = {
        "queries_throttled": 0,
        "queries_shed": 0,
        "queue_shed_capacity": 0,
        "queue_shed_deadline": 0,
        "registrations_shed": 0,
        "reports_shed": 0,
        "breaker_opened": 0,
    }
    for shard in scenario.plane.shards:
        counters["queries_throttled"] += shard.queries_throttled
        counters["queries_shed"] += shard.queries_shed
        counters["registrations_shed"] += shard.registrations_shed
        counters["reports_shed"] += shard.reports_shed
        if shard.admission is not None:
            counters["queue_shed_capacity"] += shard.admission.shed_capacity
            counters["queue_shed_deadline"] += shard.admission.shed_deadline
    router = scenario.plane.router
    if router is not None and router.breakers is not None:
        counters["breaker_opened"] = sum(
            breaker.opened_count for breaker in router.breakers.values()
        )
    return counters


def run_point(
    offered_qps: float,
    defenses: bool,
    window_s: float,
    *,
    seed: int = 42,
    profile: str = "v2",
) -> dict:
    """Measure one (offered load, defense posture) point."""
    scenario = build_focus_cluster(
        NUM_NODES,
        seed=seed,
        config=bench_config(defenses),
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=seed),
        profile=profile,
    )
    scenario.sim.run_until(SETTLE_S)
    # hot_key_fraction=0 keeps every query's cache key effectively unique,
    # so the sweep measures the CPU knee rather than the router cache.
    workload = QueryWorkload(seed=seed, limit=10)
    load = OpenLoopLoad(
        [LoadPhase(window_s, offered_qps)], seed=seed, jitter=0.25
    )
    outcomes = open_loop(scenario, workload, load)
    offered = load.offered
    ok_latencies = [elapsed for _, elapsed, ok, _, _ in outcomes if ok]
    timed_out = sum(1 for o in outcomes if o[3])
    sources: Dict[str, int] = {}
    served_stale = 0
    for _, _, ok, _, source in outcomes:
        sources[source] = sources.get(source, 0) + 1
        if ok and source == "breaker-stale":
            served_stale += 1
    return {
        "offered": offered,
        "offered_qps": round(offered / window_s, 2),
        "completed": len(outcomes),
        "served_ok": len(ok_latencies),
        "served_qps": round(len(ok_latencies) / window_s, 2),
        "goodput_fraction": (
            round(len(ok_latencies) / offered, 4) if offered else 0.0
        ),
        "served_stale": served_stale,
        "timed_out": timed_out,
        "sources": dict(sorted(sources.items())),
        "p50_s": round(percentile(ok_latencies, 0.50), 4),
        "p99_s": round(percentile(ok_latencies, 0.99), 4),
        "max_s": round(max(ok_latencies), 4) if ok_latencies else 0.0,
        "counters": plane_counters(scenario),
    }


def knee_verdict(points: Dict[str, dict]) -> dict:
    """The four acceptance booleans over a completed off/on sweep."""
    offered_sorted = sorted(points, key=float)
    deepest = points[offered_sorted[-1]]
    preknee_served = [
        p["on"]["served_qps"] for p in points.values()
        if p["offered_qps"] <= KNEE_QPS
    ]
    peak = max(preknee_served) if preknee_served else 0.0
    off_deep, on_deep = deepest["off"], deepest["on"]
    return {
        "knee_qps": KNEE_QPS,
        "deepest_offered_qps": deepest["offered_qps"],
        "on_peak_preknee_qps": peak,
        "on_served_at_deepest_qps": on_deep["served_qps"],
        "on_stale_fraction_at_deepest": (
            round(on_deep["served_stale"] / on_deep["served_ok"], 4)
            if on_deep["served_ok"] else 0.0
        ),
        "off_collapses": off_deep["goodput_fraction"] <= OFF_COLLAPSE_CEILING,
        "off_p99_blowup": off_deep["p99_s"] > P99_BOUND_S,
        "on_goodput_floor": (
            on_deep["served_qps"] >= GOODPUT_FLOOR_FRACTION * peak
        ),
        "on_p99_bounded": all(
            p["on"]["p99_s"] <= P99_BOUND_S for p in points.values()
        ),
    }


def bench_knee_sweep(quick: bool) -> dict:
    """Both arms over every offered-load point, plus the knee verdict."""
    offered_points = QUICK_POINTS if quick else FULL_POINTS
    window_s = QUICK_WINDOW_S if quick else FULL_WINDOW_S
    points: Dict[str, dict] = {}
    for offered_qps in offered_points:
        point: Dict[str, object] = {"offered_qps": offered_qps}
        for label, defenses in (("off", False), ("on", True)):
            gc.collect()
            point[label] = run_point(offered_qps, defenses, window_s)
        points[f"{offered_qps:g}"] = point
    return {
        "nodes": NUM_NODES,
        "shards": SHARDS,
        "window_s": window_s,
        "offered_points": [f"{q:g}" for q in offered_points],
        "points": points,
        "knee": knee_verdict(points),
    }


BENCHES: Dict[str, Callable[[bool], dict]] = {
    "knee_sweep": bench_knee_sweep,
}


def determinism_checksum(seed: int = 1) -> str:
    """Digest of a small fixed-size seeded overload run (v1 profile).

    The run's shape (24 agents, defended 2-shard plane, a 6 s / 120 q/s
    open-loop burst — deep past the knee, so throttle, queue, and shed
    paths all fire) is identical in quick and full mode, so the pinned
    checksum gates both. The digest covers every completion (issue time,
    sojourn, verdict, source) plus the plane's final shed counters.
    """
    scenario = build_focus_cluster(
        NUM_NODES,
        seed=seed,
        config=bench_config(True),
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=seed),
        profile="v1",
    )
    scenario.sim.run_until(SETTLE_S)
    workload = QueryWorkload(seed=seed, limit=10)
    load = OpenLoopLoad([LoadPhase(6.0, 120.0)], seed=seed, jitter=0.25)
    outcomes = open_loop(scenario, workload, load)
    summary = {
        "outcomes": [
            [round(issued_at, 6), round(elapsed, 6), ok, timed_out, source]
            for issued_at, elapsed, ok, timed_out, source in outcomes
        ],
        "counters": plane_counters(scenario),
    }
    blob = json.dumps(summary, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def main(argv=None) -> int:
    """Run the sweep, write the report, and enforce the knee invariants."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer points and a shorter window, for CI "
                             "smoke runs")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_overload.json, "
                             "or BENCH_overload.quick.json under --quick so "
                             "smoke runs never clobber the committed "
                             "full-mode baseline)")
    parser.add_argument("--only", choices=sorted(BENCHES),
                        help="run a single benchmark")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = ("BENCH_overload.quick.json" if args.quick
                    else "BENCH_overload.json")

    results: Dict[str, object] = {}
    names = [args.only] if args.only else list(BENCHES)
    for name in names:
        gc.collect()
        result = BENCHES[name](args.quick)
        results[name] = result
        for offered, point in result["points"].items():
            for label in ("off", "on"):
                arm = point[label]
                print(f"knee_sweep {offered:>4s} q/s {label:>3s}  "
                      f"served {arm['served_qps']:>6.1f} q/s "
                      f"goodput {arm['goodput_fraction']:.3f} "
                      f"p50 {arm['p50_s']:.2f}s p99 {arm['p99_s']:.2f}s "
                      f"({arm['served_stale']} stale, "
                      f"{arm['timed_out']} timed out)")
        print(f"knee verdict: {json.dumps(result['knee'], sort_keys=True)}")

    gc.collect()
    checksum_a = determinism_checksum()
    checksum_b = determinism_checksum()
    stable = checksum_a == checksum_b
    print(f"determinism checksum       {checksum_a[:16]}… "
          f"({'stable' if stable else 'UNSTABLE'})")

    report = {
        "benchmark": "overload defenses saturation knee",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
        "determinism": {"checksum": checksum_a, "stable": stable},
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    failures = []
    if not stable:
        failures.append("determinism checksum is unstable across runs")
    sweep = results.get("knee_sweep")
    if sweep is not None:
        knee = sweep["knee"]
        if not knee["off_collapses"]:
            failures.append(
                "undefended arm did not collapse past the knee (goodput "
                f"fraction above {OFF_COLLAPSE_CEILING})"
            )
        if not knee["off_p99_blowup"]:
            failures.append(
                f"undefended arm's p99 stayed under {P99_BOUND_S}s past the "
                "knee — the sweep is not reaching saturation"
            )
        if not knee["on_goodput_floor"]:
            failures.append(
                f"defended arm served {knee['on_served_at_deepest_qps']} q/s "
                f"at the deepest point; the floor is "
                f"{GOODPUT_FLOOR_FRACTION:.1f}x the pre-knee peak of "
                f"{knee['on_peak_preknee_qps']} q/s"
            )
        if not knee["on_p99_bounded"]:
            failures.append(
                f"defended arm's p99 exceeded {P99_BOUND_S}s at some point "
                "in the sweep"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
