"""Shard scale-out benchmark for the partitioned serving plane.

Sweeps the serving plane over 1/2/4/8 consistent-hash shards and measures
aggregate query throughput, latency percentiles, and per-shard CPU and
bandwidth under a closed-loop query workload (``CONCURRENCY`` application
streams, each issuing its next query the moment the previous one answers).
The serial-queue service model (``server_queue_enabled``) bounds each shard
at ``1 / server_processing_delay`` queries/sec, so a single shard saturates
and the sweep exposes how close the scatter-gather plane gets to linear
scale-out.

Two workload properties matter for sharding and are both exercised here:

* the **scale sweep** spreads single-family directed-pull queries uniformly
  over every dynamic group family (plus a slice of multi-attribute queries
  that scatter across shards), so routing skew across the hash ring is the
  workload's, not one hot key's;
* the **hot-replica bench** does the opposite — a skewed hot-key workload
  with a freshness bound, served by per-region read replicas whose every
  answer carries an explicit ``staleness_ms``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_shards.py            # full, ~15 min
    PYTHONPATH=src python benchmarks/bench_shards.py --quick    # smoke, ~1 min

Results (throughput curve, per-shard resource curves, and a pinned
determinism checksum) are written to ``BENCH_shards.json`` (or
``BENCH_shards.quick.json`` under ``--quick``).
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import platform
import random
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.attributes import openstack_schema
from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.core.rest import Application, QueryResponse
from repro.core.shardplane import replica_address
from repro.gossip.agent import SerfConfig
from repro.harness import build_focus_cluster
from repro.workloads import node_spec_factory
from repro.workloads.querygen import QueryWorkload, multi_attribute_query

SHARD_COUNTS = (1, 2, 4, 8)
#: Closed-loop streams. Sized so the 1-shard arm saturates (queue wait
#: ``CONCURRENCY * server_processing_delay`` stays inside the query timeout)
#: while the 8-shard arm is not starved of offered load.
CONCURRENCY = 128
SETTLE_S = 3.0
FULL_NODES = 10_000
FULL_WINDOW_S = 20.0
QUICK_NODES = 400
QUICK_WINDOW_S = 10.0
#: Committed full-mode acceptance floor: 8 shards must deliver at least this
#: multiple of the single-shard completed throughput.
SCALEOUT_FLOOR_8V1 = 3.0
#: Loose floor for the 400-node quick sweep (CI smoke; measured ~4x).
QUICK_SCALEOUT_FLOOR_8V1 = 1.8
MULTI_ATTRIBUTE_FRACTION = 0.15


def bench_config(shards: int) -> FocusConfig:
    """Serving-plane config for the sweep.

    ``query_timeout`` is raised above the default so the saturated
    single-shard arm's queue wait (~``CONCURRENCY * 40 ms``) does not trip
    scatter-gather timeouts, and the serf probe/sync cadence is calmed —
    query dissemination rides ``gossip_interval`` ticks, which stay at the
    paper's 100 ms, so pull latency is unaffected.
    """
    return FocusConfig(
        shards=shards,
        server_queue_enabled=True,
        query_timeout=8.0,
        report_interval=15.0,
        serf=SerfConfig(probe_interval=4.0, sync_interval=120.0),
    )


def family_ranges() -> List[Tuple[str, float, float]]:
    """One ``(attribute, lower, upper)`` range per dynamic group family.

    Uniform draws over this list hit every family key on the hash ring with
    equal weight, so the sweep measures the plane's scale-out rather than
    one attribute's key skew.
    """
    ranges: List[Tuple[str, float, float]] = []
    for name, spec in sorted(openstack_schema().dynamic().items()):
        high = spec.max_value if spec.max_value != float("inf") else 100.0
        base = spec.min_value
        while base < high:
            ranges.append((name, base, min(base + spec.cutoff, high)))
            base += spec.cutoff
    return ranges


def sweep_query_factory(seed: int) -> Callable[[], Query]:
    """Deterministic query stream for the scale sweep.

    Mostly single-family directed pulls (uniform over every dynamic group
    family), plus a ``MULTI_ATTRIBUTE_FRACTION`` slice of bounded
    multi-attribute queries whose scatter set usually spans several shards.
    """
    rng = random.Random(f"bench_shards/sweep/{seed}")
    families = family_ranges()

    def next_query() -> Query:
        if rng.random() < MULTI_ATTRIBUTE_FRACTION:
            return multi_attribute_query(rng, limit=10)
        name, lower, upper = rng.choice(families)
        return Query([QueryTerm(name, lower=lower, upper=upper - 1e-6)], limit=10)

    return next_query


def closed_loop(
    scenario,
    next_query: Callable[[], Query],
    window_s: float,
    concurrency: int,
    *,
    apps: Optional[List[Application]] = None,
) -> List[QueryResponse]:
    """Run ``concurrency`` closed-loop query streams for ``window_s``.

    Each stream issues its next query the moment the previous response
    arrives; only responses landing inside the window are recorded. Streams
    round-robin over ``apps`` (default: the scenario's single application).
    """
    clients = apps if apps is not None else [scenario.app]
    end = scenario.sim.now + window_s
    completed: List[QueryResponse] = []

    def stream(app: Application) -> None:
        def on_response(response: QueryResponse) -> None:
            if scenario.sim.now <= end:
                completed.append(response)
                stream(app)

        app.query(next_query(), on_response)

    for index in range(concurrency):
        stream(clients[index % len(clients)])
    scenario.sim.run_until(end)
    return completed


def percentile(sorted_values: List[float], fraction: float) -> float:
    """The ``fraction``-quantile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


def run_shard_point(
    num_nodes: int,
    shards: int,
    window_s: float,
    *,
    concurrency: int = CONCURRENCY,
    seed: int = 42,
    profile: str = "v2",
) -> dict:
    """Measure one shard count: throughput, latency, per-shard CPU/bytes."""
    scenario = build_focus_cluster(
        num_nodes,
        seed=seed,
        config=bench_config(shards),
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=seed),
        profile=profile,
    )
    scenario.sim.run_until(SETTLE_S)
    scenario.reset_bandwidth()
    start = scenario.sim.now
    responses = closed_loop(
        scenario, sweep_query_factory(seed), window_s, concurrency
    )
    end = scenario.sim.now
    ok = [r for r in responses if not r.timed_out and not r.error]
    latencies = sorted(r.elapsed for r in ok)
    per_shard = [
        {
            "address": shard.address,
            "cpu": round(shard.resources.mean_cpu_over(start, end), 4),
            "kb_per_s": round(
                scenario.network.meter(shard.address).total_bytes
                / window_s / 1024.0, 2,
            ),
        }
        for shard in scenario.plane.shards
    ]
    return {
        "shards": shards,
        "nodes": num_nodes,
        "completed": len(ok),
        "timed_out": len(responses) - len(ok),
        "throughput_qps": round(len(ok) / window_s, 2),
        "p50_s": round(percentile(latencies, 0.50), 3),
        "p99_s": round(percentile(latencies, 0.99), 3),
        "mean_matches": round(
            sum(len(r.matches) for r in ok) / len(ok), 2
        ) if ok else 0.0,
        "per_shard": per_shard,
    }


def bench_scale_sweep(quick: bool) -> dict:
    """Throughput and per-shard resource curves over 1/2/4/8 shards."""
    num_nodes = QUICK_NODES if quick else FULL_NODES
    window_s = QUICK_WINDOW_S if quick else FULL_WINDOW_S
    points: Dict[str, dict] = {}
    for shards in SHARD_COUNTS:
        gc.collect()
        points[str(shards)] = run_shard_point(num_nodes, shards, window_s)
    base = points["1"]["throughput_qps"]
    top = points[str(SHARD_COUNTS[-1])]["throughput_qps"]
    return {
        "nodes": num_nodes,
        "window_s": window_s,
        "concurrency": CONCURRENCY,
        "points": points,
        "scaleout_8v1": round(top / base, 2) if base else 0.0,
    }


def bench_hot_replica(quick: bool) -> dict:
    """Hot-key workload served by per-region read replicas.

    Queries carry a freshness bound and mostly replay a small hot set
    (``QueryWorkload``'s hot-key skew), issued against each region's read
    replica. Replica and cache answers must report a staleness bound no
    larger than the freshness the query allowed.
    """
    num_nodes = 200 if quick else 400
    freshness_ms = 1500.0
    config = bench_config(4)
    config.replica_reads = True
    scenario = build_focus_cluster(
        num_nodes,
        seed=43,
        config=config,
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=43),
        profile="v2",
    )
    regions = [r.name for r in scenario.network.topology.regions]
    apps = []
    for region in regions:
        app = Application(
            scenario.sim, scenario.network, f"app-{region}", region,
            focus_address=replica_address(region),
        )
        app.start()
        apps.append(app)
    scenario.sim.run_until(SETTLE_S)

    workload = QueryWorkload(
        seed=17, limit=10, freshness_ms=freshness_ms,
        hot_key_fraction=0.7, hot_set_size=8,
    )
    responses = closed_loop(
        scenario, workload.next_query, 20.0, 16, apps=apps
    )
    ok = [r for r in responses if not r.timed_out and not r.error]
    local = [r for r in ok if r.source in ("replica", "cache")]
    bounded = [r for r in local if r.staleness_ms <= freshness_ms + 1e-6]
    return {
        "nodes": num_nodes,
        "queries": len(ok),
        "replica_or_cache_fraction": round(len(local) / len(ok), 3) if ok else 0.0,
        "staleness_bound_respected": len(bounded) == len(local),
        "max_staleness_ms": round(
            max((r.staleness_ms for r in local), default=0.0), 1
        ),
    }


BENCHES: Dict[str, Callable[[bool], dict]] = {
    "scale_sweep": bench_scale_sweep,
    "hot_replica": bench_hot_replica,
}


def determinism_checksum(seed: int = 1) -> str:
    """Digest of a small fixed-size seeded sharded run (v1 profile).

    The run's shape (120 agents, 4 shards, 16 closed-loop streams, 6
    simulated seconds) is identical in quick and full mode, so the pinned
    checksum gates both. The digest covers every completed response (source,
    timeout flag, groups queried, staleness bound, matched node ids) plus
    each shard's final group tables.
    """
    scenario = build_focus_cluster(
        120,
        seed=seed,
        config=bench_config(4),
        warm_start=True,
        with_store=False,
        record_bandwidth_events=False,
        node_factory=node_spec_factory(seed=seed),
        profile="v1",
    )
    scenario.sim.run_until(SETTLE_S)
    responses = closed_loop(scenario, sweep_query_factory(seed), 6.0, 16)
    summary = {
        "responses": [
            [
                r.source,
                r.timed_out,
                r.groups_queried,
                round(r.staleness_ms, 3),
                sorted(str(m["node"]) for m in r.matches),
            ]
            for r in responses
        ],
        "groups": {
            shard.address: {
                group.name: sorted(group.all_node_ids())
                for group in shard.dgm.groups.all_groups()
            }
            for shard in scenario.plane.shards
        },
    }
    blob = json.dumps(summary, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def main(argv=None) -> int:
    """Run the sweep, write the report, and enforce the scale-out floor."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet and window, for CI smoke runs")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_shards.json, "
                             "or BENCH_shards.quick.json under --quick so "
                             "smoke runs never clobber the committed "
                             "full-mode baseline)")
    parser.add_argument("--only", choices=sorted(BENCHES),
                        help="run a single benchmark")
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = "BENCH_shards.quick.json" if args.quick else "BENCH_shards.json"

    results: Dict[str, object] = {}
    names = [args.only] if args.only else list(BENCHES)
    for name in names:
        gc.collect()
        result = BENCHES[name](args.quick)
        results[name] = result
        if name == "scale_sweep":
            for shards, point in result["points"].items():
                print(f"scale_sweep {shards:>2s} shards "
                      f"{point['throughput_qps']:>7.1f} q/s "
                      f"p50 {point['p50_s']:.2f}s p99 {point['p99_s']:.2f}s "
                      f"({point['timed_out']} timed out)")
            print(f"scale_sweep 8v1 scale-out  {result['scaleout_8v1']:.2f}x")
        else:
            print(f"{name}: {json.dumps(result, sort_keys=True)}")

    gc.collect()
    checksum_a = determinism_checksum()
    checksum_b = determinism_checksum()
    stable = checksum_a == checksum_b
    print(f"determinism checksum       {checksum_a[:16]}… "
          f"({'stable' if stable else 'UNSTABLE'})")

    report = {
        "benchmark": "sharded serving plane",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
        "determinism": {"checksum": checksum_a, "stable": stable},
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    failures = []
    if not stable:
        failures.append("determinism checksum is unstable across runs")
    sweep = results.get("scale_sweep")
    if sweep is not None:
        floor = QUICK_SCALEOUT_FLOOR_8V1 if args.quick else SCALEOUT_FLOOR_8V1
        if sweep["scaleout_8v1"] < floor:
            failures.append(
                f"8-shard scale-out {sweep['scaleout_8v1']:.2f}x is below "
                f"the {floor:.1f}x floor"
            )
    hot = results.get("hot_replica")
    if hot is not None and not hot["staleness_bound_respected"]:
        failures.append("a replica/cache answer exceeded its staleness bound")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
