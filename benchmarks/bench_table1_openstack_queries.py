"""Table I — the OpenStack use-case queries, end to end (§II-A).

Runs each query category from Table I against a FOCUS deployment and checks
the answers against ground truth computed from the nodes' actual state:

    | VM Provisioning / Live Migration | hosts meeting VM resource needs |
    | Verify Service Status            | hosts by service type           |
    | Tenant Usage Reports             | hosts belonging to a project ID |
    | Hot Spot Detection               | active/idle hosts               |
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, run_query
from repro.workloads import node_spec_factory

NUM_NODES = 96


def build():
    factory = node_spec_factory(seed=BENCH_SEED)
    scenario = build_focus_cluster(
        NUM_NODES,
        seed=BENCH_SEED,
        warm_start=True,
        with_store=True,
        record_bandwidth_events=False,
        node_factory=factory,
    )
    scenario.sim.run_until(8.0)
    return scenario


TABLE1 = [
    (
        "VM Provisioning / Live Migration",
        "hosts with >=4GB RAM, >=2 vCPUs, >=20GB disk",
        Query(
            [
                QueryTerm.at_least("ram_mb", 4096.0),
                QueryTerm.at_least("vcpus", 2.0),
                QueryTerm.at_least("disk_gb", 20.0),
            ],
            freshness_ms=0.0,
        ),
    ),
    (
        "Verify Service Status",
        "hosts running the scheduler service",
        Query([QueryTerm.exact("service_type", "scheduler")]),
    ),
    (
        "Tenant Usage Reports",
        "hosts belonging to project-3",
        Query([QueryTerm.exact("project_id", "project-3")]),
    ),
    (
        "Hot Spot Detection",
        "idle hosts (CPU <= 25%)",
        Query([QueryTerm.at_most("cpu_percent", 25.0)], freshness_ms=0.0),
    ),
]


@pytest.mark.benchmark(group="table1")
def test_table1_openstack_queries(benchmark, record_rows):
    def run():
        scenario = build()
        rows = []
        for use_case, description, query in TABLE1:
            response = run_query(scenario, query)
            expected = {
                a.node_id for a in scenario.agents if query.matches(a.attributes())
            }
            rows.append(
                {
                    "use_case": use_case,
                    "description": description,
                    "matches": len(response.matches),
                    "expected": len(expected),
                    "exact": set(response.node_ids) == expected,
                    "latency_ms": response.elapsed * 1000.0,
                    "source": response.source,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "Table I — OpenStack use-case queries over FOCUS (96 hosts)",
        ["use case", "query", "matches", "latency (ms)", "source"],
        [
            (r["use_case"], r["description"], r["matches"],
             round(r["latency_ms"]), r["source"])
            for r in rows
        ],
    )
    for r in rows:
        assert r["exact"], f"{r['use_case']}: got {r['matches']}, expected {r['expected']}"
    sources = {r["use_case"]: r["source"] for r in rows}
    assert sources["Verify Service Status"] == "static"
    assert sources["Tenant Usage Reports"] == "static"
    assert sources["VM Provisioning / Live Migration"] == "groups"
    assert sources["Hot Spot Detection"] == "groups"
