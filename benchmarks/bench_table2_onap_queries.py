"""Table II — the ONAP operational queries, end to end (§II-B, §V-B).

Runs each category of Table II against a FOCUS deployment of provider-edge
sites and vGMux instances, plus the full two-stage vCPE homing pipeline of
Fig. 4 (which combines several of them with a location constraint).

    | Sites            | all service-provider-owned cloud sites         |
    | Services         | services of type vGMux                         |
    | Site attributes  | sites with SR-IOV and KVM version >= 22        |
    | Site capacity    | sites with tenant quota / bandwidth / vCPU/RAM |
    | Service capacity | vGMuxes that can take N more sessions          |
"""

import pytest

from repro.core.query import Query, QueryTerm
from repro.onap import VcpeCustomer
from repro.onap.deployment import build_onap_deployment

NUM_SITES = 16


def build():
    deployment = build_onap_deployment(num_sites=NUM_SITES, muxes_per_site=2, seed=5)
    deployment.sim.run_until(15.0)
    return deployment


TABLE2 = [
    (
        "Sites",
        "provider-owned cloud sites",
        Query([QueryTerm.exact("owner", "sp"), QueryTerm.exact("node_type", "site")]),
    ),
    (
        "Services",
        "services of type vGMux",
        Query([QueryTerm.exact("service_type", "vGMux")]),
    ),
    (
        "Site attributes",
        "sites with SR-IOV and KVM >= 22",
        Query(
            [
                QueryTerm.exact("node_type", "site"),
                QueryTerm.exact("sriov", "yes"),
                QueryTerm.at_least("kvm_version", 22.0),
            ]
        ),
    ),
    (
        "Site capacity",
        "sites with quota >= 50, >=10 Gbps upstream, >=64 vCPU, >=128GB RAM",
        Query(
            [
                QueryTerm.at_least("tenant_quota", 50.0),
                QueryTerm.at_least("upstream_mbps", 10000.0),
                QueryTerm.at_least("site_vcpus", 64.0),
                QueryTerm.at_least("site_ram_mb", 131072.0),
            ],
            freshness_ms=0.0,
        ),
    ),
    (
        "Service capacity",
        "vGMuxes with >= 2500 spare sessions",
        Query([QueryTerm.at_least("mux_capacity", 2500.0)], freshness_ms=0.0),
    ),
]


def ground_truth(deployment, query) -> set:
    expected = set()
    for node_id, agent in deployment.agents.items():
        if query.matches(agent.attributes()):
            expected.add(node_id)
    return expected


@pytest.mark.benchmark(group="table2")
def test_table2_onap_queries(benchmark, record_rows):
    def run():
        deployment = build()
        rows = []
        for category, description, query in TABLE2:
            responses = []
            deployment.homing.client.query(query, responses.append)
            deployment.sim.run_until(deployment.sim.now + 10.0)
            response = responses[0]
            expected = ground_truth(deployment, query)
            rows.append(
                {
                    "category": category,
                    "description": description,
                    "matches": len(response.matches),
                    "exact": set(response.node_ids) == expected,
                    "expected": len(expected),
                    "latency_ms": response.elapsed * 1000.0,
                }
            )
        # The combined operation: Fig. 4's two-stage vCPE homing.
        mux = deployment.muxes[0]
        vpn = next(iter(mux.vlan_tags))
        customer = VcpeCustomer(
            "bench-customer", vpn, lat=mux.site.lat + 0.2, lon=mux.site.lon + 0.2,
            max_site_distance_miles=300.0,
        )
        plans = []
        started = deployment.sim.now
        deployment.homing.home_vcpe(customer, plans.append)
        deployment.sim.run_until(deployment.sim.now + 10.0)
        homing = {
            "ok": plans[0].ok,
            "latency_ms": None,
            "plan": plans[0],
        }
        return rows, homing

    rows, homing = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "Table II — ONAP operational queries over FOCUS (16 sites, 32 muxes)",
        ["category", "query", "matches", "latency (ms)"],
        [
            (r["category"], r["description"], r["matches"], round(r["latency_ms"]))
            for r in rows
        ],
    )
    for r in rows:
        assert r["exact"], f"{r['category']}: {r['matches']} vs {r['expected']}"
        assert r["matches"] > 0, f"{r['category']} found nothing"
    assert homing["ok"], f"vCPE homing failed: {homing['plan'].reason}"
