"""Chaos smoke check: the fault-injection layer is deterministic and inert.

Three invariants, all cheap enough for every ``make check`` run:

1. **byte-stable reports** — the seeded single-node-crash failure scenario,
   run twice in this process, produces byte-identical resilience reports
   (sha256 over canonical JSON);
2. **committed checksum** — that checksum equals the one recorded in
   ``BENCH_chaos.json``, so a change to any layer the scenario exercises
   (network, RPC, store, gossip, agents, chaos engine) that shifts the
   seeded run is caught at review time. Regenerate with ``--update`` after
   an intentional change;
3. **chaos is inert when unused** — the kernel determinism checksum with an
   empty :class:`~repro.faults.FaultPlan` attached equals the plain one
   (and the committed ``BENCH_kernel.json`` value, when present): merely
   enabling the chaos layer must not perturb a single event.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from bench_kernel import determinism_checksum  # noqa: E402

from repro.harness.failure_suite import (  # noqa: E402
    report_checksum,
    run_single_node_crash,
)

BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_chaos.json")

#: The seed the committed checksum was produced with.
SMOKE_SEED = 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_chaos.json from this run")
    args = parser.parse_args(argv)
    failures = []

    report_a = run_single_node_crash(seed=SMOKE_SEED)
    report_b = run_single_node_crash(seed=SMOKE_SEED)
    checksum_a = report_checksum(report_a)
    checksum_b = report_checksum(report_b)
    stable = checksum_a == checksum_b
    print(f"resilience report checksum  {checksum_a[:16]}… "
          f"({'stable' if stable else 'UNSTABLE'})")
    if not stable:
        failures.append("same-seed failure scenario produced two different "
                        "resilience reports")

    plain = determinism_checksum()
    chaotic = determinism_checksum(with_chaos=True)
    inert = plain == chaotic
    print(f"kernel checksum, no chaos   {plain[:16]}…")
    print(f"kernel checksum, empty plan {chaotic[:16]}… "
          f"({'identical' if inert else 'DIFFERS'})")
    if not inert:
        failures.append("an empty FaultPlan perturbed the seeded kernel run")

    kernel_baseline = os.path.join(os.path.dirname(BASELINE), "BENCH_kernel.json")
    if os.path.exists(kernel_baseline):
        with open(kernel_baseline) as fh:
            committed = json.load(fh)["determinism"]["checksum"]
        if committed != plain:
            failures.append(
                f"kernel determinism checksum drifted from BENCH_kernel.json: "
                f"{committed[:16]}… -> {plain[:16]}…"
            )

    if args.update:
        with open(BASELINE, "w") as fh:
            json.dump(
                {
                    "seed": SMOKE_SEED,
                    "scenario": "single-node-crash",
                    "checksum": checksum_a,
                    "report": report_a,
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {os.path.relpath(BASELINE)}")
    elif os.path.exists(BASELINE):
        with open(BASELINE) as fh:
            baseline = json.load(fh)
        if baseline["checksum"] != checksum_a:
            failures.append(
                f"resilience report checksum drifted from BENCH_chaos.json: "
                f"{baseline['checksum'][:16]}… -> {checksum_a[:16]}… "
                f"(regenerate with --update if intentional)"
            )
        else:
            print("matches committed BENCH_chaos.json")
    else:
        failures.append("BENCH_chaos.json missing; run with --update to create")

    if failures:
        print("\nCHAOS SMOKE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
