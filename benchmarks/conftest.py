"""Shared benchmark scaffolding.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment inside the simulator, prints the same rows/series the paper
reports (so EXPERIMENTS.md can quote the output directly), and asserts the
*shape* — who wins, roughly by how much, where the knees fall — rather than
absolute numbers.

The system-building and measurement helpers live in
:mod:`repro.harness.comparison` (shared with the ``focus-repro compare``
CLI); this conftest re-exports them under the names the benchmarks use.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.harness.comparison import (
    DEFAULT_SEED as BENCH_SEED,
    build_finder,
    comparison_queries as bench_queries,
    measure_bandwidth,
)

__all__ = ["BENCH_SEED", "bench_queries", "build_finder", "measure_bandwidth"]


@pytest.fixture
def record_rows(benchmark):
    """Store a result table on the benchmark for the JSON report."""

    def store(title: str, headers, rows) -> None:
        from repro.harness.report import print_table

        print_table(title, headers, rows)
        benchmark.extra_info.setdefault("tables", []).append(
            {"title": title, "headers": list(headers),
             "rows": [list(map(str, row)) for row in rows]}
        )

    return store
