"""Benchmark regression gate: compare fresh quick-mode benchmark runs
against the committed full-mode baselines.

Usage (CI runs this via ``make bench-gate``, which regenerates the quick
files first)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --quick
    PYTHONPATH=src python benchmarks/bench_shards.py --quick
    python benchmarks/gate.py \
        --shards-baseline BENCH_shards.json \
        --shards-candidate BENCH_shards.quick.json

The paired files measure different population sizes (quick mode shrinks
every workload so it finishes in seconds), so raw ops/sec are **not**
comparable across them and are never compared here. What the gate checks is
the set of invariants that hold on any machine at any size:

* the seeded determinism checksums — sha256 digests of fixed-size seeded
  runs — must be byte-equal between the quick run and the committed
  baseline, and stable within each;
* the benchmark *sets* must match: every benchmark recorded in the baseline
  must still exist in the candidate (a bench that silently vanishes from
  the harness is a regression too), and a candidate bench with no committed
  baseline is an error as well (the baseline must be regenerated so the new
  bench is actually gated);
* for the kernel pair, the relative speedups (optimized vs in-tree naive
  reference, same machine, same run) must not collapse: each quick-mode
  speedup must stay above a generous fraction of the committed full-mode
  speedup. The band is wide because CI machines are noisy and quick mode's
  smaller inputs flatter the naive arms — the gate exists to catch an
  optimization being disabled (a 700x speedup falling to 1x), not a 20%
  wobble;
* the committed baselines themselves must still honor the acceptance bars
  they were committed with (kernel: event_loop >= 2x the PR 1 constant,
  swim_full at 6400 nodes >= 2x the PR 3 constant and >= 1.5x the PR 5
  pre-batching constant, the v2 profile above its absolute floor and
  committed ratio; shards: the full-mode 8-shard scale-out >= 3x a single
  shard), so a stale or hand-edited baseline cannot hide a regression.

One deliberate non-check: ``net_delivery``'s speedup is node-count-dependent
(the shared in-flight heap only pays off once the in-flight population is
dense; at quick mode's 400 nodes it hovers around 1x — see the direct-post
hybrid in ``sim/network.py``), and since its committed full-mode speedup
sits below the noise ceiling the fractional band never applies to it.

``--summary PATH`` appends a markdown verdict table (checksums, speedup
band, shard scale-out) to ``PATH`` — CI points it at
``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: Quick-mode speedup must be at least this fraction of the committed
#: full-mode speedup. Deliberately loose — see module docstring.
SPEEDUP_FLOOR_FRACTION = 0.10

#: Speedups this close to 1x carry no signal (the optimized and naive arms
#: are within noise of each other at quick-mode sizes), so the fractional
#: band is not applied below it.
SPEEDUP_NOISE_CEILING = 2.0

#: Fallback speedup floor for the region-sharded parallel kernel's
#: full-mode A/B point; normally the floor recorded in the report itself
#: (``min_speedup``, set by bench_kernel.py) is used.
PARALLEL_MIN_SPEEDUP = 1.8

#: The committed full-mode shard sweep must show at least this much
#: aggregate query throughput at 8 shards relative to 1 shard.
SHARDS_SCALEOUT_FLOOR = 3.0

#: Floor applied to a quick-mode shard sweep candidate (400 agents; the
#: measured value sits near 5x, the floor only catches sharding being
#: disabled or a hot-key collapse).
SHARDS_QUICK_SCALEOUT_FLOOR = 1.8


def load(path: str) -> Dict[str, object]:
    """Read one benchmark report JSON file."""
    with open(path) as fh:
        return json.load(fh)


def structural_failures(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    *,
    label: str,
    checksum_keys: Tuple[Tuple[str, str, str], ...],
    candidate_may_be_full: bool = False,
) -> List[str]:
    """Shape checks shared by every baseline/candidate report pair.

    ``checksum_keys`` lists ``(checksum_key, stable_key, profile_name)``
    triples to compare inside each report's ``determinism`` block. Both
    missing-bench directions are errors: a baseline bench absent from the
    candidate means the harness silently dropped it, and a candidate bench
    absent from the baseline means the committed baseline predates the
    bench and must be regenerated before the gate can cover it.
    """
    failures: List[str] = []

    if baseline.get("quick"):
        failures.append(f"{label}: baseline file was produced by a --quick "
                        "run; the committed baseline must be full-mode")
    if not candidate.get("quick") and not candidate_may_be_full:
        failures.append(f"{label}: candidate file is not a --quick run; "
                        "regenerate it with --quick")

    base_det = baseline.get("determinism") or {}
    cand_det = candidate.get("determinism") or {}
    for checksum_key, stable_key, profile in checksum_keys:
        for side, det in (("baseline", base_det), ("candidate", cand_det)):
            if not det.get(stable_key):
                failures.append(f"{label}: {side} seeded {profile} run was "
                                "not deterministic")
        if base_det.get(checksum_key) != cand_det.get(checksum_key):
            failures.append(
                f"{label}: {profile} determinism checksum drifted: baseline "
                f"{str(base_det.get(checksum_key))[:16]}… vs candidate "
                f"{str(cand_det.get(checksum_key))[:16]}… — the seeded run "
                "no longer produces the committed totals"
            )

    base_results = baseline.get("results") or {}
    cand_results = candidate.get("results") or {}
    for name in base_results:
        if name not in cand_results:
            failures.append(f"{label}: benchmark '{name}' present in the "
                            "baseline but missing from the candidate run — "
                            "the harness no longer measures it")
    for name in cand_results:
        if name not in base_results:
            failures.append(
                f"{label}: benchmark '{name}' present in the candidate but "
                "missing from the committed baseline — regenerate the "
                "full-mode baseline so the new bench is gated"
            )

    return failures


def check(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    *,
    allow_full_candidate: bool = False,
) -> List[str]:
    """Gate the kernel benchmark pair (BENCH_kernel.json vs .quick.json).

    ``allow_full_candidate`` admits a full-mode candidate (the nightly sweep
    compares full against full); the default insists on --quick so a stray
    full-mode file is not mistaken for the CI smoke run.
    """
    failures = structural_failures(
        baseline, candidate,
        label="kernel",
        checksum_keys=(
            ("checksum", "stable", "v1"),
            ("checksum_v2", "stable_v2", "v2"),
        ),
        candidate_may_be_full=allow_full_candidate,
    )

    base_results = baseline.get("results") or {}
    cand_results = candidate.get("results") or {}

    for name, base in base_results.items():
        cand = cand_results.get(name)
        if cand is None or "speedup" not in base or "speedup" not in cand:
            continue
        if base["speedup"] < SPEEDUP_NOISE_CEILING:
            continue
        # Quick mode shrinks every workload, and the naive arms are mostly
        # superlinear, so quick-mode speedups are legitimately far smaller
        # than full-mode ones. Capping the floor at the noise ceiling keeps
        # the check meaningful (a disabled optimization reads ~1x) without
        # tying it to workload size.
        floor = min(base["speedup"] * SPEEDUP_FLOOR_FRACTION,
                    SPEEDUP_NOISE_CEILING)
        if cand["speedup"] < floor:
            failures.append(
                f"{name}: speedup collapsed to {cand['speedup']:.1f}x "
                f"(baseline {base['speedup']:.1f}x, floor {floor:.1f}x)"
            )

    sweep = base_results.get("scale_sweep", {})
    cand_sweep = cand_results.get("scale_sweep", {})
    for workload in sweep:
        if workload not in cand_sweep:
            failures.append(f"scale_sweep workload '{workload}' missing from "
                            "the candidate run")

    # Re-assert the committed acceptance bars against the baseline file, so a
    # stale or hand-edited baseline cannot hide a regression behind the gate.
    event_loop = base_results.get("event_loop", {})
    ratio = event_loop.get("speedup_vs_pr1_baseline")
    if ratio is not None and ratio < 2.0:
        failures.append(f"baseline event_loop is only {ratio:.2f}x the PR 1 "
                        "constant; need >=2x")
    swim = sweep.get("swim_full", {})
    point = swim.get("points", {}).get("6400")
    pr3 = swim.get("pr3_baseline_6400_ops_per_sec")
    if point is not None and pr3:
        ratio = point["ops_per_sec"] / pr3
        if ratio < 2.0:
            failures.append(f"baseline swim_full at 6400 nodes is only "
                            f"{ratio:.2f}x the PR 3 constant; need >=2x")
    pr5 = swim.get("pr5_baseline_6400_ops_per_sec")
    if point is not None and pr5:
        ratio = point["ops_per_sec"] / pr5
        if ratio < 1.5:
            failures.append(f"baseline swim_full at 6400 nodes is only "
                            f"{ratio:.2f}x the PR 5 pre-batching constant; "
                            "need >=1.5x")
    swim_v2 = sweep.get("swim_full_v2", {})
    v2_point = swim_v2.get("points", {}).get("6400")
    v2_floor = swim_v2.get("floor_6400_ops_per_sec")
    if v2_point is not None and v2_floor:
        if v2_point["ops_per_sec"] < v2_floor:
            failures.append(
                f"baseline swim_full v2 at 6400 nodes is "
                f"{v2_point['ops_per_sec']:.0f} ev/s; the committed absolute "
                f"floor is {v2_floor:.0f} ev/s"
            )
    min_speedup = swim_v2.get("min_speedup_6400_vs_v1")
    if v2_point is not None and min_speedup:
        v2_speedup = v2_point.get("speedup_vs_v1")
        if v2_speedup is not None and v2_speedup < min_speedup:
            failures.append(
                f"baseline swim_full v2 at 6400 nodes is only "
                f"{v2_speedup:.2f}x the v1 point from the same sweep; "
                f"need >={min_speedup:.2f}x"
            )

    # Region-sharded parallel kernel (swim_full_parallel). Two invariants:
    #
    # * serial<->parallel checksum equality must hold in *every* report —
    #   baseline and candidate, quick or full, any machine. (The bench
    #   asserts it before writing the file; the gate re-checks so a
    #   hand-edited report cannot hide a divergence.)
    # * the wall-clock speedup floor applies only to full-mode reports
    #   whose recorded machine had at least as many cores as workers
    #   (``enforced`` — a 1-core box cannot demonstrate parallel speedup,
    #   but it can and must demonstrate equivalence). Quick mode's
    #   400-node point is an equivalence smoke, never a speedup claim.
    for side, report, point in (
        ("baseline", baseline, base_results.get("swim_full_parallel")),
        ("candidate", candidate, cand_results.get("swim_full_parallel")),
    ):
        if point is None:
            continue
        for name, sub in (("", point), (" stretch", point.get("stretch"))):
            if sub is None:
                continue
            if not sub.get("checksums_match"):
                failures.append(
                    f"{side} swim_full_parallel{name}: the parallel arm's "
                    f"merged checksum does not match the serial arm — the "
                    f"region-sharded kernel diverged"
                )
                continue
            floor = sub.get("min_speedup", PARALLEL_MIN_SPEEDUP)
            if (not report.get("quick") and sub.get("enforced")
                    and sub["speedup"] < floor):
                failures.append(
                    f"{side} swim_full_parallel{name}: "
                    f"{sub['speedup']:.2f}x over the serial arm on "
                    f"{sub['workers']} workers ({sub['cpu_count']} cores); "
                    f"the acceptance floor is {floor:.1f}x"
                )

    return failures


def check_shards(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> List[str]:
    """Gate the shard sweep pair (BENCH_shards.json vs a fresh run).

    The candidate may be quick-mode (CI smoke, loose scale-out floor) or
    full-mode (the nightly sweep, held to the committed 3x floor).
    """
    failures = structural_failures(
        baseline, candidate,
        label="shards",
        checksum_keys=(("checksum", "stable", "sharded-plane"),),
        candidate_may_be_full=True,
    )

    def scaleout(report: Dict[str, object]) -> Optional[float]:
        sweep = (report.get("results") or {}).get("scale_sweep") or {}
        return sweep.get("scaleout_8v1")

    base_ratio = scaleout(baseline)
    if base_ratio is None:
        failures.append("shards: baseline has no scale_sweep.scaleout_8v1")
    elif base_ratio < SHARDS_SCALEOUT_FLOOR:
        failures.append(
            f"shards: committed full-mode 8-shard scale-out is only "
            f"{base_ratio:.2f}x; the acceptance floor is "
            f"{SHARDS_SCALEOUT_FLOOR:.1f}x"
        )

    cand_ratio = scaleout(candidate)
    cand_floor = (SHARDS_QUICK_SCALEOUT_FLOOR if candidate.get("quick")
                  else SHARDS_SCALEOUT_FLOOR)
    if cand_ratio is None:
        failures.append("shards: candidate has no scale_sweep.scaleout_8v1")
    elif cand_ratio < cand_floor:
        failures.append(
            f"shards: candidate 8-shard scale-out is only {cand_ratio:.2f}x; "
            f"the floor for this run size is {cand_floor:.1f}x"
        )

    hot = (candidate.get("results") or {}).get("hot_replica")
    if hot is not None and not hot.get("staleness_bound_respected", True):
        failures.append("shards: a candidate replica/cache answer exceeded "
                        "its staleness bound")

    return failures


#: The four knee-verdict booleans every overload report must hold; see
#: ``bench_overload.py`` for the precise definitions.
OVERLOAD_KNEE_CHECKS = (
    "off_collapses", "off_p99_blowup", "on_goodput_floor", "on_p99_bounded",
)


def check_overload(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> List[str]:
    """Gate the overload knee pair (BENCH_overload.json vs a fresh run).

    Beyond the shared structural checks, the knee verdict booleans must
    hold in **both** files: in the baseline so a stale or hand-edited
    committed report cannot hide a regression, and in the candidate so the
    defenses demonstrably still move the knee on the machine running the
    gate. The candidate may be quick-mode (fewer sweep points, shorter
    window) or full-mode (the nightly sweep).
    """
    failures = structural_failures(
        baseline, candidate,
        label="overload",
        checksum_keys=(("checksum", "stable", "overload-knee"),),
        candidate_may_be_full=True,
    )

    for side, report in (("baseline", baseline), ("candidate", candidate)):
        knee = ((report.get("results") or {}).get("knee_sweep") or {}).get("knee")
        if knee is None:
            failures.append(f"overload: {side} has no knee_sweep.knee verdict")
            continue
        for name in OVERLOAD_KNEE_CHECKS:
            if not knee.get(name):
                failures.append(
                    f"overload: {side} knee verdict '{name}' is false — the "
                    "defenses no longer move the saturation knee"
                )

    return failures


def _checksum_of(report: Optional[Dict[str, object]], key: str = "checksum") -> str:
    """First 16 hex chars of a report's determinism checksum (or ``-``)."""
    if not report:
        return "-"
    value = (report.get("determinism") or {}).get(key)
    return f"{str(value)[:16]}…" if value else "-"


def write_summary(
    path: str,
    failures: List[str],
    *,
    kernel: Optional[Tuple[Dict[str, object], Dict[str, object]]],
    shards: Optional[Tuple[Dict[str, object], Dict[str, object]]],
    overload: Optional[Tuple[Dict[str, object], Dict[str, object]]] = None,
) -> None:
    """Append the gate verdict as markdown to ``path`` (a step summary)."""
    lines = ["## Bench gate", ""]
    lines.append("**Verdict:** " + ("❌ FAIL" if failures else "✅ PASS"))
    lines.append("")
    lines.append("| check | baseline | candidate |")
    lines.append("|---|---|---|")
    if kernel is not None:
        base, cand = kernel
        lines.append(f"| kernel v1 checksum | {_checksum_of(base)} "
                     f"| {_checksum_of(cand)} |")
        lines.append(f"| kernel v2 checksum | {_checksum_of(base, 'checksum_v2')} "
                     f"| {_checksum_of(cand, 'checksum_v2')} |")

        def parallel_cell(report: Dict[str, object]) -> str:
            point = (report.get("results") or {}).get("swim_full_parallel")
            if not point:
                return "-"
            verdict = ("serial≡parallel" if point.get("checksums_match")
                       else "DIVERGED")
            return (f"{point['speedup']:.2f}x @ {point['workers']}w "
                    f"({verdict})")

        lines.append(f"| parallel kernel A/B | {parallel_cell(base)} "
                     f"| {parallel_cell(cand)} |")
    if shards is not None:
        base, cand = shards
        lines.append(f"| shards checksum | {_checksum_of(base)} "
                     f"| {_checksum_of(cand)} |")

        def ratio(report: Dict[str, object]) -> str:
            sweep = (report.get("results") or {}).get("scale_sweep") or {}
            value = sweep.get("scaleout_8v1")
            return f"{value:.2f}x" if value is not None else "-"

        lines.append(f"| 8-shard scale-out (floor "
                     f"{SHARDS_SCALEOUT_FLOOR:.1f}x full / "
                     f"{SHARDS_QUICK_SCALEOUT_FLOOR:.1f}x quick) "
                     f"| {ratio(base)} | {ratio(cand)} |")
    if overload is not None:
        base, cand = overload
        lines.append(f"| overload checksum | {_checksum_of(base)} "
                     f"| {_checksum_of(cand)} |")

        def knee_ok(report: Dict[str, object]) -> str:
            knee = ((report.get("results") or {})
                    .get("knee_sweep") or {}).get("knee") or {}
            held = sum(1 for name in OVERLOAD_KNEE_CHECKS if knee.get(name))
            return f"{held}/{len(OVERLOAD_KNEE_CHECKS)} held"

        lines.append(f"| overload knee verdict | {knee_ok(base)} "
                     f"| {knee_ok(cand)} |")
    lines.append("")
    if failures:
        lines.append("### Failures")
        lines.extend(f"- {failure}" for failure in failures)
        lines.append("")
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def main(argv=None) -> int:
    """CLI entry point; returns a non-zero exit code on any gate failure."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_kernel.json",
                        help="committed full-mode kernel results (default: "
                             "BENCH_kernel.json)")
    parser.add_argument("--candidate", default="BENCH_kernel.quick.json",
                        help="fresh quick-mode kernel results (default: "
                             "BENCH_kernel.quick.json)")
    parser.add_argument("--shards-baseline", default=None,
                        help="committed full-mode shard sweep results "
                             "(omit to skip the shards gate)")
    parser.add_argument("--shards-candidate", default=None,
                        help="fresh shard sweep results (quick or full)")
    parser.add_argument("--overload-baseline", default=None,
                        help="committed full-mode overload knee results "
                             "(omit to skip the overload gate)")
    parser.add_argument("--overload-candidate", default=None,
                        help="fresh overload knee results (quick or full)")
    parser.add_argument("--allow-full-candidate", action="store_true",
                        help="accept full-mode candidate files (the nightly "
                             "sweep gates full against full)")
    parser.add_argument("--summary", default=None,
                        help="append a markdown verdict to this file "
                             "(point at $GITHUB_STEP_SUMMARY in CI)")
    args = parser.parse_args(argv)

    def load_or_fail(path: str, hint: str) -> Optional[Dict[str, object]]:
        try:
            return load(path)
        except OSError as exc:
            print(f"gate: cannot read {path}: {exc} {hint}", file=sys.stderr)
            return None

    failures: List[str] = []
    kernel_pair = None
    baseline = load_or_fail(args.baseline, "")
    candidate = load_or_fail(
        args.candidate,
        "(run: PYTHONPATH=src python benchmarks/bench_kernel.py --quick)",
    )
    if baseline is None or candidate is None:
        return 1
    kernel_pair = (baseline, candidate)
    failures.extend(check(baseline, candidate,
                          allow_full_candidate=args.allow_full_candidate))

    shards_pair = None
    if args.shards_baseline or args.shards_candidate:
        if not (args.shards_baseline and args.shards_candidate):
            print("gate: --shards-baseline and --shards-candidate must be "
                  "given together", file=sys.stderr)
            return 1
        shards_base = load_or_fail(args.shards_baseline, "")
        shards_cand = load_or_fail(
            args.shards_candidate,
            "(run: PYTHONPATH=src python benchmarks/bench_shards.py --quick)",
        )
        if shards_base is None or shards_cand is None:
            return 1
        shards_pair = (shards_base, shards_cand)
        failures.extend(check_shards(shards_base, shards_cand))

    overload_pair = None
    if args.overload_baseline or args.overload_candidate:
        if not (args.overload_baseline and args.overload_candidate):
            print("gate: --overload-baseline and --overload-candidate must "
                  "be given together", file=sys.stderr)
            return 1
        overload_base = load_or_fail(args.overload_baseline, "")
        overload_cand = load_or_fail(
            args.overload_candidate,
            "(run: PYTHONPATH=src python benchmarks/bench_overload.py "
            "--quick)",
        )
        if overload_base is None or overload_cand is None:
            return 1
        overload_pair = (overload_base, overload_cand)
        failures.extend(check_overload(overload_base, overload_cand))

    if args.summary:
        write_summary(args.summary, failures,
                      kernel=kernel_pair, shards=shards_pair,
                      overload=overload_pair)

    if failures:
        for failure in failures:
            print(f"gate FAIL: {failure}", file=sys.stderr)
        return 1
    checked = [f"{args.candidate} vs {args.baseline}"]
    if shards_pair is not None:
        checked.append(f"{args.shards_candidate} vs {args.shards_baseline}")
    print(f"gate OK: {'; '.join(checked)} "
          f"(kernel checksum {_checksum_of(candidate)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
