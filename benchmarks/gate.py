"""Benchmark regression gate: compare a fresh quick-mode kernel benchmark
run against the committed full-mode baseline.

Usage (CI runs this via ``make bench-gate``, which regenerates the quick
file first)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --quick
    python benchmarks/gate.py

The two files measure different population sizes (quick mode shrinks every
workload so it finishes in seconds), so raw ops/sec are **not** comparable
across them and are never compared here. What the gate checks is the set of
invariants that hold on any machine at any size:

* the seeded determinism checksums — one sha256 per determinism profile
  (bit-exact ``v1`` and the fast ``v2``) over a fixed 6-node SWIM run's
  event count, metrics counters, and bandwidth meters — must be byte-equal
  between the quick run and the committed baseline, and stable within each;
* every benchmark recorded in the baseline must still exist (a bench that
  silently vanishes from the harness is a regression too);
* the relative speedups (optimized vs in-tree naive reference, same machine,
  same run) must not collapse: each quick-mode speedup must stay above a
  generous fraction of the committed full-mode speedup. The band is wide
  because CI machines are noisy and quick mode's smaller inputs flatter the
  naive arms — the gate exists to catch an optimization being disabled
  (a 700x speedup falling to 1x), not a 20% wobble;
* the committed baseline itself must still honor the PR acceptance bars it
  was committed with (event_loop >= 2x the PR 1 constant, swim_full at 6400
  nodes >= 2x the PR 3 constant and >= 1.5x the PR 5 pre-batching constant,
  and swim_full under the v2 profile both above the absolute backstop floor
  and faster than the v1 point measured in the same sweep by the committed
  ratio — the relative check is the primary one because fresh-process
  absolute throughput at 6400 nodes swings ~±20% with address-space layout,
  while both profile arms of one sweep share the same box conditions).

One deliberate non-check: ``net_delivery``'s speedup is node-count-dependent
(the shared in-flight heap only pays off once the in-flight population is
dense; at quick mode's 400 nodes it hovers around 1x — see the direct-post
hybrid in ``sim/network.py``), and since its committed full-mode speedup
sits below the noise ceiling the fractional band never applies to it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: Quick-mode speedup must be at least this fraction of the committed
#: full-mode speedup. Deliberately loose — see module docstring.
SPEEDUP_FLOOR_FRACTION = 0.10

#: Speedups this close to 1x carry no signal (the optimized and naive arms
#: are within noise of each other at quick-mode sizes), so the fractional
#: band is not applied below it.
SPEEDUP_NOISE_CEILING = 2.0


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        return json.load(fh)


def check(baseline: Dict[str, object], candidate: Dict[str, object]) -> List[str]:
    failures: List[str] = []

    if baseline.get("quick"):
        failures.append("baseline file was produced by a --quick run; "
                        "the committed BENCH_kernel.json must be full-mode")
    if not candidate.get("quick"):
        failures.append("candidate file is not a --quick run; "
                        "regenerate it with bench_kernel.py --quick")

    base_det = baseline.get("determinism", {})
    cand_det = candidate.get("determinism", {})
    for label, det in (("baseline", base_det), ("candidate", cand_det)):
        if not det.get("stable"):
            failures.append(f"{label} seeded run was not deterministic")
        if not det.get("stable_v2"):
            failures.append(f"{label} seeded v2-profile run was not "
                            "deterministic")
    for key, profile in (("checksum", "v1"), ("checksum_v2", "v2")):
        if base_det.get(key) != cand_det.get(key):
            failures.append(
                f"{profile} determinism checksum drifted: baseline "
                f"{str(base_det.get(key))[:16]}… vs candidate "
                f"{str(cand_det.get(key))[:16]}… — the seeded 6-node SWIM "
                f"run no longer produces the committed {profile} event/byte "
                "totals"
            )

    base_results = baseline.get("results", {})
    cand_results = candidate.get("results", {})
    for name in base_results:
        if name not in cand_results:
            failures.append(f"benchmark '{name}' present in baseline but "
                            "missing from the candidate run")

    for name, base in base_results.items():
        cand = cand_results.get(name)
        if cand is None or "speedup" not in base or "speedup" not in cand:
            continue
        if base["speedup"] < SPEEDUP_NOISE_CEILING:
            continue
        # Quick mode shrinks every workload, and the naive arms are mostly
        # superlinear, so quick-mode speedups are legitimately far smaller
        # than full-mode ones. Capping the floor at the noise ceiling keeps
        # the check meaningful (a disabled optimization reads ~1x) without
        # tying it to workload size.
        floor = min(base["speedup"] * SPEEDUP_FLOOR_FRACTION,
                    SPEEDUP_NOISE_CEILING)
        if cand["speedup"] < floor:
            failures.append(
                f"{name}: speedup collapsed to {cand['speedup']:.1f}x "
                f"(baseline {base['speedup']:.1f}x, floor {floor:.1f}x)"
            )

    sweep = base_results.get("scale_sweep", {})
    cand_sweep = cand_results.get("scale_sweep", {})
    for workload in sweep:
        if workload not in cand_sweep:
            failures.append(f"scale_sweep workload '{workload}' missing from "
                            "the candidate run")

    # Re-assert the committed acceptance bars against the baseline file, so a
    # stale or hand-edited baseline cannot hide a regression behind the gate.
    event_loop = base_results.get("event_loop", {})
    ratio = event_loop.get("speedup_vs_pr1_baseline")
    if ratio is not None and ratio < 2.0:
        failures.append(f"baseline event_loop is only {ratio:.2f}x the PR 1 "
                        "constant; need >=2x")
    swim = sweep.get("swim_full", {})
    point = swim.get("points", {}).get("6400")
    pr3 = swim.get("pr3_baseline_6400_ops_per_sec")
    if point is not None and pr3:
        ratio = point["ops_per_sec"] / pr3
        if ratio < 2.0:
            failures.append(f"baseline swim_full at 6400 nodes is only "
                            f"{ratio:.2f}x the PR 3 constant; need >=2x")
    pr5 = swim.get("pr5_baseline_6400_ops_per_sec")
    if point is not None and pr5:
        ratio = point["ops_per_sec"] / pr5
        if ratio < 1.5:
            failures.append(f"baseline swim_full at 6400 nodes is only "
                            f"{ratio:.2f}x the PR 5 pre-batching constant; "
                            "need >=1.5x")
    swim_v2 = sweep.get("swim_full_v2", {})
    v2_point = swim_v2.get("points", {}).get("6400")
    v2_floor = swim_v2.get("floor_6400_ops_per_sec")
    if v2_point is not None and v2_floor:
        if v2_point["ops_per_sec"] < v2_floor:
            failures.append(
                f"baseline swim_full v2 at 6400 nodes is "
                f"{v2_point['ops_per_sec']:.0f} ev/s; the committed absolute "
                f"floor is {v2_floor:.0f} ev/s"
            )
    min_speedup = swim_v2.get("min_speedup_6400_vs_v1")
    if v2_point is not None and min_speedup:
        v2_speedup = v2_point.get("speedup_vs_v1")
        if v2_speedup is not None and v2_speedup < min_speedup:
            failures.append(
                f"baseline swim_full v2 at 6400 nodes is only "
                f"{v2_speedup:.2f}x the v1 point from the same sweep; "
                f"need >={min_speedup:.2f}x"
            )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_kernel.json",
                        help="committed full-mode results (default: "
                             "BENCH_kernel.json)")
    parser.add_argument("--candidate", default="BENCH_kernel.quick.json",
                        help="fresh quick-mode results (default: "
                             "BENCH_kernel.quick.json)")
    args = parser.parse_args(argv)

    try:
        baseline = load(args.baseline)
    except OSError as exc:
        print(f"gate: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 1
    try:
        candidate = load(args.candidate)
    except OSError as exc:
        print(f"gate: cannot read candidate {args.candidate}: {exc} "
              "(run: PYTHONPATH=src python benchmarks/bench_kernel.py --quick)",
              file=sys.stderr)
        return 1

    failures = check(baseline, candidate)
    if failures:
        for failure in failures:
            print(f"gate FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"gate OK: {args.candidate} is consistent with {args.baseline} "
          f"(checksum {str(candidate['determinism']['checksum'])[:16]}…)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
