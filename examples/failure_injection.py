#!/usr/bin/env python
"""Failure injection: FOCUS under node crashes and a regional partition.

Demonstrates the resilience mechanisms of §VII:

* a crashed group member is detected by SWIM, removed from its groups'
  member lists via representative reports, and queries keep working (the
  router retries a different random member when its first pick is dead);
* a representative crash leaves its group silent until the DGM re-appoints
  a fresh reporter;
* a short region partition does not poison membership: suspected members
  refute suspicion when the partition heals.

Run:  python examples/failure_injection.py
"""

from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query


def query_all(scenario):
    return run_query(
        scenario, Query([QueryTerm.at_least("ram_mb", 0.0)], freshness_ms=0.0)
    )


def main() -> None:
    scenario = build_focus_cluster(48, seed=41, with_store=False)
    drain(scenario, 15.0)
    print(f"48 nodes up; baseline query finds "
          f"{len(query_all(scenario).matches)} nodes.\n")

    # --- 1. Crash a quarter of the fleet, no deregistration.
    victims = scenario.agents[::4]
    for agent in victims:
        agent.stop()
    print(f"Crashed {len(victims)} nodes abruptly.")
    response = query_all(scenario)
    print(f"  immediately after: query still answers with "
          f"{len(response.matches)} nodes (router retried dead picks)")
    drain(scenario, 30.0)  # SWIM suspicion -> dead -> reports prune them
    response = query_all(scenario)
    live = sum(1 for a in scenario.agents if a.running)
    print(f"  after failure detection settles: {len(response.matches)} "
          f"matches vs {live} live nodes\n")

    # --- 2. Partition two regions from each other for a while.
    print("Partitioning us-east-2 <-> us-west-2 for 20 seconds...")
    scenario.network.partition_regions("us-east-2", "us-west-2")
    drain(scenario, 20.0)
    scenario.network.heal_regions("us-east-2", "us-west-2")
    print("  healed; letting refutations propagate...")
    drain(scenario, 30.0)
    response = query_all(scenario)
    print(f"  query after heal: {len(response.matches)} matches "
          f"({live} live nodes) — no permanent false deaths\n")

    # --- 3. Kill every representative of one group.
    service = scenario.service
    group = next(
        g for g in service.dgm.groups.all_groups()
        if g.representatives and len(g.members) > len(g.representatives)
    )
    reps = list(group.representatives)
    for rep in reps:
        agent = scenario.agent(rep)
        if agent.running:
            agent.stop()
    print(f"Killed all {len(reps)} representative(s) of group {group.name}.")
    drain(scenario, 45.0)  # stale-group check re-appoints a reporter
    refreshed = service.dgm.groups.get(group.name)
    print(f"  DGM re-appointed reps: {sorted(refreshed.representatives)}; "
          f"group reported {len(refreshed.members)} members")


if __name__ == "__main__":
    main()
