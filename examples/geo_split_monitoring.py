#!/usr/bin/env python
"""Geographic group splits and multi-site monitoring (§VII).

A group tracking an attribute like free RAM can span every region; the DGM
can "seamlessly split groups when they exceed certain geographic thresholds
by treating them as separate attributes tied to location". This example
enables the split (1,500 km threshold — Ohio to Oregon is ~3,200 km), shows
the per-region groups that form, and then runs the periodic monitoring
workload the paper motivates (§II-A): finding overloaded hosts across all
sites from a single service.

Run:  python examples/geo_split_monitoring.py
"""

from collections import Counter

from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query


def main() -> None:
    config = FocusConfig(geo_split_km=1500.0)
    scenario = build_focus_cluster(48, seed=71, config=config, with_store=False)
    print("48 nodes registering across 4 regions; geo-split threshold 1,500 km...")
    drain(scenario, 40.0)  # registrations, reports, splits, migrations

    groups = [
        g for g in scenario.service.dgm.groups.all_groups() if g.size_estimate() > 0
    ]
    split = [g for g in groups if g.region is not None]
    shared = [g for g in groups if g.region is None]
    print(f"\nGroups after splitting: {len(groups)} total — "
          f"{len(split)} region-scoped, {len(shared)} still shared.")
    per_region = Counter(g.region for g in split)
    for region, count in sorted(per_region.items()):
        print(f"  {region}: {count} groups")
    sample = sorted((g for g in split), key=lambda g: g.name)[:4]
    for group in sample:
        print(f"    e.g. {group.name} ({group.size_estimate()} members)")

    # Multi-site monitoring: one query sweeps every region's groups.
    print("\nHot-spot sweep: hosts above 75% CPU, all regions at once...")
    response = run_query(
        scenario, Query([QueryTerm.at_least("cpu_percent", 75.0)], freshness_ms=0.0)
    )
    by_region = Counter(m["region"] for m in response.matches)
    print(f"  {len(response.matches)} hot hosts found in "
          f"{response.elapsed * 1000:.0f} ms "
          f"({response.groups_queried} region groups pulled):")
    for region, count in sorted(by_region.items()):
        print(f"    {region}: {count}")

    print(
        "\nFOCUS queried the matching per-region groups and aggregated the "
        "results (§VII) —\nno per-site controllers, no cross-site state "
        "synchronisation."
    )


if __name__ == "__main__":
    main()
