#!/usr/bin/env python
"""Materialized views with event triggers (§XII, implemented extension).

A scheduler that keeps asking "which hosts are idle AND have 8 GB free AND
50 GB of disk?" pays a multi-group directed pull every time. Registering the
query as a *materialized view* creates a dedicated p2p group containing
exactly the matching hosts; as hosts' load changes they join and leave the
view on their own (the event trigger), so the standing answer is always one
small group pull away.

Run:  python examples/materialized_views.py
"""

from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query
from repro.workloads import WorkloadDriver

HOT_QUERY = Query(
    [
        QueryTerm.at_most("cpu_percent", 25.0),
        QueryTerm.at_least("ram_mb", 8192.0),
        QueryTerm.at_least("disk_gb", 50.0),
    ],
    freshness_ms=0.0,
)


def pull(scenario, label):
    response = run_query(scenario, Query(HOT_QUERY.terms, freshness_ms=0.0))
    print(f"  {label}: {len(response.matches)} hosts, "
          f"{response.elapsed * 1000:.0f} ms, source={response.source}")
    return response


def main() -> None:
    scenario = build_focus_cluster(128, seed=77, with_store=False)
    drain(scenario, 15.0)
    print("128 hosts up. The hot query: idle AND >=8GB RAM AND >=50GB disk.\n")

    print("Directed pulls (no view yet):")
    for _ in range(3):
        pull(scenario, "pull")

    print("\nRegistering the query as materialized view 'standby-pool'...")
    created = []
    scenario.app.client.create_view(
        Query(HOT_QUERY.terms), created.append, view_id="standby-pool"
    )
    drain(scenario, 12.0)
    view = scenario.service.views.views["standby-pool"]
    print(f"  view group {view.group.name} formed with "
          f"{len(view.group.all_node_ids())} members.\n")

    print("Same query, now answered from the view group:")
    for _ in range(3):
        pull(scenario, "view")

    print("\nEvent triggers: hosts churn in and out as their state changes...")
    driver = WorkloadDriver(scenario.sim, scenario.agents, seed=3,
                            tick_interval=1.0)
    driver.start()
    before = set(run_query(scenario, Query(HOT_QUERY.terms, freshness_ms=0.0)).node_ids)
    drain(scenario, 30.0)
    driver.stop()
    drain(scenario, 10.0)
    after_response = pull(scenario, "after 30 s of attribute churn")
    after = set(after_response.node_ids)
    joined, left = after - before, before - after
    print(f"  membership drifted: {len(joined)} hosts joined the view, "
          f"{len(left)} left — no query ever re-scanned the fleet.")

    # Ground truth check: the view still answers exactly.
    expected = {
        a.node_id for a in scenario.agents
        if Query(HOT_QUERY.terms).matches(a.attributes())
    }
    print(f"  exact vs ground truth: {after == expected}")


if __name__ == "__main__":
    main()
