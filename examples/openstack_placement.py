#!/usr/bin/env python
"""OpenStack VM placement: stock message-queue path vs FOCUS path (§IX).

Builds two identical 24-host clouds. One reports host state through a
RabbitMQ-style broker into the placement database (the stock Nova flow of
Fig. 6); the other runs FOCUS node agents fed by a fake libvirt. The same
burst of VM placement requests is driven through each scheduler.

Things to look at in the output:

* both paths place every VM while capacity lasts;
* the scheduler's *retry rate* — stale database candidates refuse spawns
  more often than FOCUS's directed-pull candidates;
* what each central endpoint paid in bandwidth.

Run:  python examples/openstack_placement.py
"""

from repro.openstack.cloud import build_openstack_cloud
from repro.openstack.placement import PlacementRequest

FLAVOR = {"MEMORY_MB": 4096, "DISK_GB": 10, "VCPU": 2}
NUM_HOSTS = 64   # fits 256 VMs (4 per host by RAM and vCPUs)
NUM_VMS = 260    # 4 more than capacity: the tail must be refused
BURST_INTERVAL = 0.25


def run_mode(mode: str):
    cloud = build_openstack_cloud(NUM_HOSTS, mode=mode, seed=11)
    # Count bytes crossing the central-site boundary (the Fig. 7a metric).
    central = {"scheduler"}
    central |= {"focus"} if mode == "focus" else {"nova-broker", "placement-db"}
    crossing = {"bytes": 0}

    def tap(message) -> None:
        if (message.src in central) != (message.dst in central):
            crossing["bytes"] += message.size

    cloud.sim.run_until(12.0)  # hosts report in / groups converge
    cloud.network.add_delivery_tap(tap)

    outcomes = []
    # A burst arriving faster than the stock path's 1 s push interval.
    for index in range(NUM_VMS):
        cloud.sim.schedule_at(
            12.0 + index * BURST_INTERVAL,
            cloud.scheduler.select_destinations,
            PlacementRequest(FLAVOR),
            outcomes.append,
        )
    cloud.sim.run_until(12.0 + NUM_VMS * BURST_INTERVAL + 15.0)

    placed = sum(1 for o in outcomes if o.ok)
    hosts_used = len({o.host for o in outcomes if o.ok})
    window = cloud.sim.now - 12.0
    return {
        "mode": mode,
        "placed": placed,
        "failed": len(outcomes) - placed,
        "hosts_used": hosts_used,
        "retry_rate": cloud.scheduler.retry_rate(),
        "vms_running": cloud.total_vms(),
        "central_kbps": crossing["bytes"] / window / 1024.0,
    }


def main() -> None:
    print(f"Placing {NUM_VMS} x {FLAVOR} VMs on {NUM_HOSTS} hosts, two ways...\n")
    results = [run_mode("mq"), run_mode("focus")]
    header = (f"{'backend':10} {'placed':>7} {'failed':>7} {'hosts':>6} "
              f"{'spawn attempts':>15} {'central KB/s':>13}")
    print(header)
    print("-" * len(header))
    for r in results:
        label = "nova+mq" if r["mode"] == "mq" else "focus"
        print(f"{label:10} {r['placed']:>7} {r['failed']:>7} "
              f"{r['hosts_used']:>6} {r['retry_rate']:>15.2f} "
              f"{r['central_kbps']:>13.1f}")
    print(
        "\nBoth backends fill the cloud and correctly refuse the overflow; "
        "the scheduler cannot tell them\napart because the integration seam "
        "is §IX's one-liner (get_by_requests -> fc_obj.query)."
        "\nAt this small scale the stock path's periodic push is cheap and "
        "placement churn makes FOCUS's\npull traffic comparable — the "
        "bandwidth separation is a scale effect: see "
        "benchmarks/bench_fig7a_bandwidth.py,\nwhere the push firehose grows "
        "with the fleet while FOCUS's directed pulls do not."
    )


if __name__ == "__main__":
    main()
