#!/usr/bin/env python
"""Quickstart: stand up FOCUS, register nodes, run queries.

Builds a 64-node FOCUS deployment across the paper's four regions, waits for
the gossip groups to form, then runs the query types from §V: a dynamic
range query (directed pull into p2p groups), a multi-constraint placement
query, a static-attribute query (served from the data store), and a cached
repeat.

Run:  python examples/quickstart.py
"""

from repro.core.query import Query, QueryTerm
from repro.harness import build_focus_cluster, drain, run_query


def show(title: str, response) -> None:
    print(f"\n{title}")
    print(f"  source={response.source}  elapsed={response.elapsed * 1000:.0f} ms  "
          f"matches={len(response.matches)}")
    for match in response.matches[:5]:
        attrs = match["attrs"]
        print(
            f"    {match['node']}  region={match['region']}  "
            f"ram={attrs.get('ram_mb', 0):.0f}MB  "
            f"cpu={attrs.get('cpu_percent', 0):.0f}%  "
            f"vcpus={attrs.get('vcpus', 0):.0f}"
        )
    if len(response.matches) > 5:
        print(f"    ... and {len(response.matches) - 5} more")


def main() -> None:
    print("Building a 64-node FOCUS deployment (4 regions)...")
    scenario = build_focus_cluster(64, seed=7)
    drain(scenario, 15.0)  # registration + gossip convergence

    groups = scenario.service.dgm.groups.all_groups()
    print(f"Ready: {len(scenario.agents)} nodes self-organised into "
          f"{len(groups)} attribute groups.")

    # 1. Dynamic range query -> directed pull into the matching groups only.
    response = run_query(
        scenario,
        Query([QueryTerm("ram_mb", lower=4096.0, upper=6143.0)], freshness_ms=0.0),
    )
    show("Nodes with ~4-6 GB free RAM (one group family pulled):", response)

    # 2. Multi-constraint placement-style query with a limit.
    response = run_query(
        scenario,
        Query(
            [
                QueryTerm.at_least("ram_mb", 2048.0),
                QueryTerm.at_least("vcpus", 2.0),
                QueryTerm.at_most("cpu_percent", 50.0),
            ],
            limit=5,
            freshness_ms=0.0,
        ),
    )
    show("5 hosts for a 2GB/2vCPU VM on a not-busy machine:", response)

    # 3. Static attribute query -> answered from the replicated store.
    response = run_query(
        scenario, Query([QueryTerm.exact("service_type", "scheduler")])
    )
    show("Hosts running the scheduler service (static path):", response)

    # 4. Cache: the same query again, within its freshness window.
    cached_query = Query(
        [QueryTerm.at_least("disk_gb", 50.0)], freshness_ms=60_000.0
    )
    first = run_query(scenario, cached_query)
    second = run_query(scenario, cached_query)
    show("Disk query, first time (pulled from groups):", first)
    show("Same query again (served from cache):", second)

    print("\nServer-side totals:")
    metrics = scenario.service.metrics
    for name in ("registrations", "suggestions", "group_reports",
                 "queries", "group_queries"):
        counter = metrics.get_counter(name)
        print(f"  {name}: {int(counter.value) if counter else 0}")


if __name__ == "__main__":
    main()
