#!/usr/bin/env python
"""Replay the (synthetic) Chameleon placement trace against FOCUS (§X-C).

Generates the synthetic equivalent of the paper's Chameleon cloud trace and
replays a slice of it at 15,000x acceleration (~43 placement queries/second)
against a 400-node FOCUS deployment, with the response cache disabled as in
the paper. Prints the per-request latency percentiles of Fig. 7c plus the
group statistics the paper reports (average group size ~150).

Run:  python examples/trace_replay.py
"""

from repro.core.config import FocusConfig
from repro.harness import build_focus_cluster, drain
from repro.sim.metrics import Histogram
from repro.workloads import ChameleonTraceGenerator

NUM_NODES = 400
NUM_EVENTS = 400


def main() -> None:
    print(f"Building {NUM_NODES}-node deployment (cache disabled, as in §X-C)...")
    config = FocusConfig(cache_enabled=False)
    scenario = build_focus_cluster(
        NUM_NODES, seed=33, config=config, warm_start=True, with_store=False,
        record_bandwidth_events=False,
    )
    drain(scenario, 5.0)

    generator = ChameleonTraceGenerator(seed=1)
    pairs = generator.accelerated_queries(NUM_EVENTS, limit=10, freshness_ms=0.0)
    print(f"Replaying {len(pairs)} trace events at 15,000x "
          f"(~{generator.mean_rate():.0f} queries/s)...")

    latency = Histogram("trace")
    empty = []

    def record(response) -> None:
        latency.observe(response.elapsed)
        if not response.matches:
            empty.append(response)

    start = scenario.sim.now
    for offset, query in pairs:
        scenario.sim.schedule_at(start + offset, scenario.app.query, query, record)
    scenario.sim.run_until(start + pairs[-1][0] + 10.0)

    print(f"\nCompleted {latency.count} queries "
          f"({len(empty)} returned no candidates).")
    print("Per-request latency (Fig. 7c percentiles):")
    for p in (50, 75, 99):
        print(f"  p{p}: {latency.percentile(p) * 1000:7.0f} ms")

    groups = scenario.service.dgm.groups.all_groups()
    populated = [g for g in groups if g.size_estimate() > 0]
    sizes = [g.size_estimate() for g in populated]
    print(f"\nGroups: {len(populated)} populated, "
          f"average size {sum(sizes) / len(sizes):.0f}, max {max(sizes)}")
    cpu = scenario.service.resources.mean_cpu_over(start, scenario.sim.now)
    print(f"FOCUS server CPU while replaying: {cpu * 100:.1f}% "
          f"(of a 4-vCPU server, Fig. 8a)")


if __name__ == "__main__":
    main()
