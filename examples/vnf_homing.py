#!/usr/bin/env python
"""vCPE homing with ONAP-style policies over FOCUS (§II-B, §V-B, Fig. 4).

Sixteen provider-edge sites host vGMux instances carrying customer VPNs.
Customers arrive and must be homed: a mux slice (right VPN, spare sessions)
plus a provider-owned SR-IOV site within 300 miles with capacity for a vG.

Each accepted customer *consumes* capacity — the mux loses sessions, the
site loses vCPUs/RAM — and FOCUS sees the drain through the nodes' dynamic
attributes. The legacy static-inventory flow (today's homing service) runs
side by side: it cannot see capacity at all, so it keeps assigning customers
to exhausted muxes.

Run:  python examples/vnf_homing.py
"""

import random

from repro.onap import VcpeCustomer
from repro.onap.deployment import build_onap_deployment

NUM_CUSTOMERS = 30
SESSIONS_PER_CUSTOMER = 900.0  # heavy demand drains muxes quickly


def main() -> None:
    deployment = build_onap_deployment(num_sites=16, muxes_per_site=1, seed=21)
    deployment.sim.run_until(15.0)
    print(f"{len(deployment.sites)} sites / {len(deployment.muxes)} vGMux "
          f"instances registered with FOCUS.\n")

    rng = random.Random(9)
    vpn_choices = sorted({v for m in deployment.muxes for v in m.vlan_tags})
    focus_ok = inventory_ok = 0
    inventory_oversubscribed = 0
    mux_free = {m.node_id: m.mux_capacity for m in deployment.muxes}

    for index in range(NUM_CUSTOMERS):
        site = rng.choice(deployment.sites)
        customer = VcpeCustomer(
            customer_id=f"cust-{index:03d}",
            vpn_id=rng.choice(vpn_choices),
            lat=site.lat + rng.uniform(-0.5, 0.5),
            lon=site.lon + rng.uniform(-0.5, 0.5),
            mux_sessions=SESSIONS_PER_CUSTOMER,
            max_site_distance_miles=300.0,
        )

        # --- FOCUS-driven homing: sees live capacity.
        plans = []
        deployment.homing.home_vcpe(customer, plans.append)
        deployment.sim.run_until(deployment.sim.now + 8.0)
        plan = plans[0]
        if plan.ok:
            focus_ok += 1
            deployment.consume_mux(plan.vgmux, SESSIONS_PER_CUSTOMER)
            site_id = plan.vg_site.split("::", 1)[1]
            deployment.consume_site(site_id, customer.vg_vcpus, customer.vg_ram_mb)
            mux_free[plan.vgmux] -= SESSIONS_PER_CUSTOMER
            print(f"  {customer.customer_id}: FOCUS -> {plan.vgmux} + {plan.vg_site}")
        else:
            print(f"  {customer.customer_id}: FOCUS -> rejected ({plan.reason})")

        # --- Legacy static inventory: same customer, no capacity knowledge.
        legacy = deployment.inventory.home_vcpe(customer)
        if legacy.ok:
            inventory_ok += 1
            if mux_free.get(legacy.vgmux, 0.0) < SESSIONS_PER_CUSTOMER:
                inventory_oversubscribed += 1

    print(f"\nFOCUS homing:    {focus_ok}/{NUM_CUSTOMERS} accepted "
          f"(rejections are genuine capacity/constraint failures)")
    print(f"Static inventory: {inventory_ok}/{NUM_CUSTOMERS} accepted, of which "
          f"{inventory_oversubscribed} landed on muxes that were actually full")
    print("\nThe static inventory can't express Table II's capacity queries, so "
          "it oversubscribes;\nFOCUS answers them from the nodes' live state.")


if __name__ == "__main__":
    main()
