"""Reproduction of FOCUS: Scalable Search Over Highly Dynamic Geo-distributed State.

The package is organised as a set of substrates (``repro.sim``, ``repro.gossip``,
``repro.store``, ``repro.mq``) underneath the FOCUS service itself
(``repro.core``), baselines (``repro.baselines``), integrations
(``repro.openstack``, ``repro.onap``) and workloads/harness utilities
(``repro.workloads``, ``repro.harness``).

Quickstart::

    from repro.core.query import Query
    from repro.harness import build_focus_cluster, drain, run_query

    scenario = build_focus_cluster(64, seed=7)
    drain(scenario, 15.0)  # registration + gossip group formation
    response = run_query(
        scenario,
        Query.from_bounds({"ram_mb": (4096.0, None)}, limit=5, freshness_ms=0.0),
    )
    print(response.matches)
"""

from repro._version import __version__

__all__ = ["__version__"]
