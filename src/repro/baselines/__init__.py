"""Node-finding baselines the paper compares against (§III, Fig. 2, Fig. 7).

Every baseline implements the :class:`~repro.baselines.base.NodeFinder`
interface so benchmarks can swap them uniformly:

* :mod:`repro.baselines.push`      — naive periodic push to a central DB (Fig. 2a)
* :mod:`repro.baselines.pull`      — naive on-demand pull from all nodes (Fig. 2b)
* :mod:`repro.baselines.hierarchy` — aggregating layer (Fig. 2c) and
  sub-setting managers (Fig. 2d)
* :mod:`repro.baselines.rabbitmq`  — message-queue pub and sub configurations
* :mod:`repro.baselines.focus_adapter` — FOCUS itself behind the same interface
"""

from repro.baselines.base import BaselineNode, NodeFinder
from repro.baselines.focus_adapter import FocusFinder
from repro.baselines.hierarchy import HierarchyFinder
from repro.baselines.pull import NaivePullFinder
from repro.baselines.push import NaivePushFinder
from repro.baselines.rabbitmq import RabbitPubFinder, RabbitSubFinder

__all__ = [
    "BaselineNode",
    "FocusFinder",
    "HierarchyFinder",
    "NaivePullFinder",
    "NaivePushFinder",
    "NodeFinder",
    "RabbitPubFinder",
    "RabbitSubFinder",
]
