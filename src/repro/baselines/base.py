"""Common interface and node process for the baselines.

A *baseline node* holds the same attribute state a FOCUS node agent would,
and can answer direct state requests. What varies between baselines is who
moves the state where (push vs pull vs broker) — that behaviour lives in
each finder module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.query import Query
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


class BaselineNode(Process, RpcMixin):
    """A node with attributes, queryable directly."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        region: str,
        *,
        static: Optional[Dict[str, object]] = None,
        dynamic: Optional[Dict[str, float]] = None,
    ) -> None:
        Process.__init__(self, sim, network, node_id, region)
        self.init_rpc()
        self.node_id = node_id
        self.static = dict(static or {})
        self.dynamic: Dict[str, float] = {k: float(v) for k, v in (dynamic or {}).items()}
        self.serve("node.state", self._rpc_state)
        self.serve("node.query", self._rpc_query)

    def attributes(self) -> Dict[str, object]:
        merged: Dict[str, object] = {"region": self.region}
        merged.update(self.static)
        merged.update(self.dynamic)
        return merged

    def set_attribute(self, name: str, value: float) -> None:
        self.dynamic[name] = float(value)

    def _rpc_state(self, params, respond, message):
        return {"node": self.node_id, "attrs": self.attributes(), "region": self.region}

    def _rpc_query(self, params, respond, message):
        query = Query.from_json(params["query"])
        attrs = self.attributes()
        return {
            "node": self.node_id,
            "match": query.matches(attrs),
            "attrs": attrs,
            "region": self.region,
        }


class NodeFinder:
    """Interface every node-finding system implements for the benches.

    Implementations expose:

    * :meth:`query` — asynchronous node-finding query;
    * :meth:`server_addresses` — the central endpoints whose bandwidth
      constitutes "bandwidth consumption at the query server" (Fig. 7a);
    * ``nodes`` — the node population (for workload drivers).
    """

    name: str = "abstract"

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.nodes: List[BaselineNode] = []
        self._external_bytes = 0
        self._accounting_installed = False

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        raise NotImplementedError

    def server_addresses(self) -> List[str]:
        raise NotImplementedError

    def install_accounting(self) -> None:
        """Count bytes crossing the central-site boundary.

        Fig. 7a measures "bandwidth consumption at the query server": traffic
        between the central site (server, broker, store — whatever the
        system centralises) and the node population. Traffic *inside* the
        central site (e.g. broker to its co-located consumer) is loopback in
        a real deployment and is excluded.
        """
        servers = set(self.server_addresses())

        def tap(message) -> None:
            if (message.src in servers) != (message.dst in servers):
                self._external_bytes += message.size

        self.network.add_delivery_tap(tap)
        self._accounting_installed = True

    def server_bandwidth_bytes(self) -> int:
        if not self._accounting_installed:
            raise RuntimeError(f"{self.name}: install_accounting() was not called")
        return self._external_bytes

    def reset_server_bandwidth(self) -> None:
        self._external_bytes = 0


def match_records(nodes_attrs: Dict[str, dict], query: Query) -> List[dict]:
    """Filter a node_id -> attrs map through a query, honouring its limit."""
    matches = []
    for node_id, attrs in nodes_attrs.items():
        if query.matches(attrs):
            matches.append(
                {"node": node_id, "attrs": attrs, "region": attrs.get("region", "")}
            )
            if query.limit is not None and len(matches) >= query.limit:
                break
    return matches
