"""FOCUS behind the common :class:`~repro.baselines.base.NodeFinder` interface.

Lets the comparison benchmarks treat FOCUS exactly like every baseline:
same query entry point, same central-site bandwidth accounting (the FOCUS
server plus its store replicas form the central site; representative
uploads, suggestions and directed pulls all cross the boundary and count).
"""

from __future__ import annotations

from typing import Callable, List

from repro.baselines.base import NodeFinder
from repro.core.query import Query
from repro.core.rest import QueryResponse
from repro.harness.scenarios import FocusScenario


class FocusFinder(NodeFinder):
    """Adapter over a built :class:`~repro.harness.scenarios.FocusScenario`."""

    name = "focus"

    def __init__(self, scenario: FocusScenario) -> None:
        super().__init__(scenario.sim, scenario.network)
        self.scenario = scenario
        self.nodes = scenario.agents  # NodeAgent also exposes set_attribute()
        self.install_accounting()

    def server_addresses(self) -> List[str]:
        addresses = [self.scenario.service.address, self.scenario.app.address]
        if self.scenario.store is not None:
            addresses.extend(r.address for r in self.scenario.store.replicas)
        return addresses

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        def adapt(response: QueryResponse) -> None:
            on_response(
                {
                    "matches": response.matches,
                    "source": response.source,
                    "timed_out": response.timed_out,
                    "elapsed": response.elapsed,
                }
            )

        self.scenario.app.query(query, adapt)
