"""Hierarchy baselines (Fig. 2c / 2d, §III-B2).

Two variants:

* **aggregating** — nodes push to a layer of aggregators that batch and
  forward everything to the central server. The server sees fewer *messages*
  but the same *bytes* (the paper's point about Fig. 2c).
* **sub-setting** — nodes push only to their subset manager; the central
  server pulls every manager on each query (Fig. 2d — the "static hierarchy"
  line of Fig. 7a, with 16 managers).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baselines.base import BaselineNode, NodeFinder, match_records
from repro.core.query import Query
from repro.sim.loop import Simulator
from repro.sim.network import Message, Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


class SubsetManager(Process, RpcMixin):
    """A manager holding the state of its subset of nodes.

    ``mode`` controls how much work the manager does per pull:

    * ``"projection"`` (default) — the manager is a generic partitioned
      store: it returns *every* row, projected to the queried attributes
      (column pushdown but no predicate pushdown — the central server
      evaluates the constraints). This is the Fig. 2d reading: subset
      managers are stock cloud managers, not query engines.
    * ``"predicate"`` — the manager also evaluates the query and returns
      matching rows only (an ablation showing how much a smarter manager
      layer closes the gap).
    * ``"full"`` — all rows, all columns.
    """

    MODES = ("projection", "predicate", "full")

    def __init__(self, sim: Simulator, network: Network, address: str, region: str,
                 *, mode: str = "projection") -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        if mode not in self.MODES:
            raise ValueError(f"unknown manager mode {mode!r}")
        self.mode = mode
        self.states: Dict[str, dict] = {}
        self.on("state.push", self._on_push)
        self.serve("mgr.query", self._rpc_query)

    def _on_push(self, message: Message) -> None:
        self.states[message.payload["node"]] = message.payload["attrs"]

    def _rpc_query(self, params, respond, message):
        query = Query.from_json(params["query"])
        if self.mode == "predicate":
            return {"matches": match_records(self.states, query)}
        if self.mode == "projection":
            wanted = [term.name for term in query.terms]
            return {
                "matches": [
                    {
                        "node": n,
                        "attrs": {k: a[k] for k in wanted if k in a},
                        "region": a.get("region", ""),
                    }
                    for n, a in self.states.items()
                ]
            }
        return {
            "matches": [
                {"node": n, "attrs": a, "region": a.get("region", "")}
                for n, a in self.states.items()
            ]
        }


class Aggregator(Process):
    """Fig. 2c middle layer: batches pushes and forwards them upstream."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        upstream: str,
        *,
        flush_interval: float = 1.0,
    ) -> None:
        super().__init__(sim, network, address, region)
        self.upstream = upstream
        self.flush_interval = flush_interval
        self._batch: List[dict] = []
        self.on("state.push", self._on_push)

    def _on_push(self, message: Message) -> None:
        self._batch.append(message.payload)

    def on_start(self) -> None:
        self.every(self.flush_interval, self.flush, jitter=self.flush_interval * 0.2)

    def flush(self) -> None:
        if not self._batch:
            return
        # One message upstream, but it carries every node's state: the byte
        # volume at the central server is unchanged.
        self.send(self.upstream, "state.batch", {"updates": self._batch})
        self._batch = []


class HierarchyRoot(Process, RpcMixin):
    """Central server for both hierarchy variants."""

    def __init__(self, sim: Simulator, network: Network, address: str, region: str,
                 *, processing_delay: float = 0.04, timeout: float = 3.0) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.processing_delay = processing_delay
        self.timeout = timeout
        self.states: Dict[str, dict] = {}
        self.manager_addresses: List[str] = []
        self.on("state.batch", self._on_batch)

    def _on_batch(self, message: Message) -> None:
        for update in message.payload["updates"]:
            self.states[update["node"]] = update["attrs"]

    # Aggregating variant answers from the local database.
    def answer_from_db(self, query: Query, on_response: Callable[[dict], None]) -> None:
        matches = match_records(self.states, query)
        self.sim.schedule(
            self.processing_delay,
            on_response,
            {"matches": matches, "source": "hierarchy-agg", "timed_out": False},
        )

    # Sub-setting variant pulls every manager.
    def answer_from_managers(self, query: Query, on_response: Callable[[dict], None]) -> None:
        state = {"pending": len(self.manager_addresses), "matches": {}, "done": False}
        if state["pending"] == 0:
            self._finish(state, query, on_response)
            return

        def on_reply(result) -> None:
            state["pending"] -= 1
            for record in (result or {}).get("matches", ()):
                # Managers may return unfiltered rows (projection mode);
                # the constraints are evaluated here at the root.
                if query.matches(record.get("attrs", {})):
                    state["matches"][record["node"]] = record
            self._advance(state, query, on_response)

        def on_timeout() -> None:
            state["pending"] -= 1
            self._advance(state, query, on_response)

        for address in self.manager_addresses:
            self.call(
                address,
                "mgr.query",
                {"query": query.to_json()},
                on_reply=on_reply,
                on_timeout=on_timeout,
                timeout=self.timeout,
            )

    def _advance(self, state, query, on_response) -> None:
        if state["done"]:
            return
        limit_reached = (
            query.limit is not None and len(state["matches"]) >= query.limit
        )
        if state["pending"] == 0 or limit_reached:
            self._finish(state, query, on_response)

    def _finish(self, state, query, on_response) -> None:
        state["done"] = True
        matches = list(state["matches"].values())
        if query.limit is not None:
            matches = matches[: query.limit]
        self.sim.schedule(
            self.processing_delay,
            on_response,
            {"matches": matches, "source": "hierarchy-subset", "timed_out": False},
        )


class HierarchyPushNode(BaselineNode):
    """Pushes to its assigned manager/aggregator."""

    def __init__(self, *args, target: str, push_interval: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.target = target
        self.push_interval = push_interval

    def on_start(self) -> None:
        self.every(self.push_interval, self.push, jitter=self.push_interval * 0.2)

    def push(self) -> None:
        self.send(
            self.target,
            "state.push",
            {"node": self.node_id, "attrs": self.attributes()},
        )


class HierarchyFinder(NodeFinder):
    """Either hierarchy variant, selected by ``mode``.

    The paper's Fig. 7a uses ``mode="subset"`` with 16 managers (the average
    number of group representatives reporting to FOCUS, fn. 4).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_nodes: int,
        node_factory: Callable[[int, str], dict],
        num_managers: int = 16,
        mode: str = "subset",
        push_interval: float = 1.0,
        server_region: Optional[str] = None,
        manager_mode: str = "projection",
    ) -> None:
        super().__init__(sim, network)
        if mode not in ("subset", "aggregate"):
            raise ValueError(f"unknown hierarchy mode {mode!r}")
        self.mode = mode
        self.name = f"hierarchy-{mode}"
        regions = [r.name for r in network.topology.regions]
        region = server_region or regions[0]
        self.root = HierarchyRoot(sim, network, "hier-root", region)
        self.root.start()
        self.middle: List[Process] = []
        for index in range(num_managers):
            mid_region = regions[index % len(regions)]
            if mode == "subset":
                manager = SubsetManager(
                    sim, network, f"hier-mgr-{index}", mid_region,
                    mode=manager_mode,
                )
                self.root.manager_addresses.append(manager.address)
            else:
                manager = Aggregator(
                    sim, network, f"hier-agg-{index}", mid_region, self.root.address,
                    flush_interval=push_interval,
                )
            manager.start()
            self.middle.append(manager)
        for index in range(num_nodes):
            node_region = regions[index % len(regions)]
            spec = node_factory(index, node_region)
            target = self.middle[index % len(self.middle)].address
            node = HierarchyPushNode(
                sim,
                network,
                spec["node_id"],
                node_region,
                static=spec.get("static"),
                dynamic=spec.get("dynamic"),
                target=target,
                push_interval=push_interval,
            )
            node.start()
            self.nodes.append(node)

        self.install_accounting()

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        if self.mode == "subset":
            self.root.answer_from_managers(query, on_response)
        else:
            self.root.answer_from_db(query, on_response)

    def server_addresses(self) -> List[str]:
        return [self.root.address]
