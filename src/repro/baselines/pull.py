"""Naive pull baseline (Fig. 2b).

The server polls every node on each query. Results are perfectly fresh, but
bandwidth and server load grow with the node count — the TCP-incast-prone
pattern the paper rules out (§III-B1).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.baselines.base import BaselineNode, NodeFinder
from repro.core.query import Query
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


class PullServer(Process, RpcMixin):
    """Queries all nodes on demand and aggregates their answers."""

    def __init__(self, sim: Simulator, network: Network, address: str, region: str,
                 *, processing_delay: float = 0.04, timeout: float = 3.0) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.processing_delay = processing_delay
        self.timeout = timeout
        self.node_addresses: List[str] = []

    def answer(self, query: Query, on_response: Callable[[dict], None]) -> None:
        state = {"pending": len(self.node_addresses), "matches": [], "done": False}
        if state["pending"] == 0:
            self._finish(state, query, on_response)
            return

        def on_reply(result) -> None:
            state["pending"] -= 1
            if result and result.get("match"):
                state["matches"].append(
                    {
                        "node": result["node"],
                        "attrs": result.get("attrs", {}),
                        "region": result.get("region", ""),
                    }
                )
            self._advance(state, query, on_response)

        def on_timeout() -> None:
            state["pending"] -= 1
            self._advance(state, query, on_response)

        for address in self.node_addresses:
            self.call(
                address,
                "node.query",
                {"query": query.to_json()},
                on_reply=on_reply,
                on_timeout=on_timeout,
                timeout=self.timeout,
            )

    def _advance(self, state, query, on_response) -> None:
        if state["done"]:
            return
        limit_reached = query.limit is not None and len(state["matches"]) >= query.limit
        if state["pending"] == 0 or limit_reached:
            self._finish(state, query, on_response)

    def _finish(self, state, query, on_response) -> None:
        state["done"] = True
        matches = state["matches"]
        if query.limit is not None:
            matches = matches[: query.limit]
        self.sim.schedule(
            self.processing_delay,
            on_response,
            {"matches": matches, "source": "pull", "timed_out": False},
        )


class NaivePullFinder(NodeFinder):
    """Builds the pull deployment."""

    name = "naive-pull"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_nodes: int,
        node_factory: Callable[[int, str], dict],
        server_region: Optional[str] = None,
    ) -> None:
        super().__init__(sim, network)
        regions = [r.name for r in network.topology.regions]
        region = server_region or regions[0]
        self.server = PullServer(sim, network, "pull-server", region)
        self.server.start()
        for index in range(num_nodes):
            node_region = regions[index % len(regions)]
            spec = node_factory(index, node_region)
            node = BaselineNode(
                sim,
                network,
                spec["node_id"],
                node_region,
                static=spec.get("static"),
                dynamic=spec.get("dynamic"),
            )
            node.start()
            self.nodes.append(node)
            self.server.node_addresses.append(node.address)

        self.install_accounting()

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        self.server.answer(query, on_response)

    def server_addresses(self) -> List[str]:
        return [self.server.address]
