"""Naive push baseline (Fig. 2a).

Every node periodically pushes its full state to a central server, which
keeps the latest copy per node and answers queries from that (possibly
stale) database. This is the OpenStack model minus the message queue.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baselines.base import BaselineNode, NodeFinder, match_records
from repro.core.query import Query
from repro.sim.loop import Simulator
from repro.sim.network import Message, Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


class CentralStateServer(Process, RpcMixin):
    """Central DB holding each node's last pushed state."""

    def __init__(self, sim: Simulator, network: Network, address: str, region: str,
                 *, processing_delay: float = 0.04) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.processing_delay = processing_delay
        self.states: Dict[str, dict] = {}
        self.state_times: Dict[str, float] = {}
        self.on("state.push", self._on_push)

    def _on_push(self, message: Message) -> None:
        payload = message.payload
        self.states[payload["node"]] = payload["attrs"]
        self.state_times[payload["node"]] = self.sim.now

    def answer(self, query: Query, on_response: Callable[[dict], None]) -> None:
        matches = match_records(self.states, query)
        self.sim.schedule(
            self.processing_delay,
            on_response,
            {"matches": matches, "source": "push-db", "timed_out": False},
        )


class PushNode(BaselineNode):
    """A node that pushes its state every ``push_interval`` seconds."""

    def __init__(self, *args, server: str, push_interval: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.server = server
        self.push_interval = push_interval

    def on_start(self) -> None:
        self.every(self.push_interval, self.push, jitter=self.push_interval * 0.2)

    def push(self) -> None:
        self.send(
            self.server,
            "state.push",
            {"node": self.node_id, "attrs": self.attributes()},
        )


class NaivePushFinder(NodeFinder):
    """Builds the push deployment and serves queries from the central DB."""

    name = "naive-push"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_nodes: int,
        node_factory: Callable[[int, str], dict],
        push_interval: float = 1.0,
        server_region: Optional[str] = None,
    ) -> None:
        super().__init__(sim, network)
        regions = [r.name for r in network.topology.regions]
        region = server_region or regions[0]
        self.server = CentralStateServer(sim, network, "push-server", region)
        self.server.start()
        for index in range(num_nodes):
            node_region = regions[index % len(regions)]
            spec = node_factory(index, node_region)
            node = PushNode(
                sim,
                network,
                spec["node_id"],
                node_region,
                static=spec.get("static"),
                dynamic=spec.get("dynamic"),
                server=self.server.address,
                push_interval=push_interval,
            )
            node.start()
            self.nodes.append(node)

        self.install_accounting()

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        self.server.answer(query, on_response)

    def server_addresses(self) -> List[str]:
        return [self.server.address]
