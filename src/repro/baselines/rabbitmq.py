"""Message-queue baselines (Fig. 7a's "RabbitMQ (pub)" and "RabbitMQ (sub)").

* **pub** — nodes periodically publish their state through the broker; a
  consumer co-located with the query server maintains the database queries
  are answered from. This is the OpenStack model (§III-A).
* **sub** — nodes subscribe for queries; the server publishes each query to
  a fanout exchange, every node evaluates it and publishes its answer to a
  response queue the server consumes.

The broker uses the CPU model from :mod:`repro.mq.broker`, so Fig. 7b's
latency blow-up past ~1k nodes emerges from broker saturation rather than
being scripted.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.baselines.base import BaselineNode, NodeFinder, match_records
from repro.core.query import Query
from repro.mq.broker import Broker, BrokerConfig
from repro.sim.loop import Simulator
from repro.sim.network import Message, Network, approx_size
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin

STATE_QUEUE = "node-state"
QUERY_EXCHANGE = "queries"
RESPONSE_QUEUE = "query-responses"


class PublishingNode(BaselineNode):
    """Publishes its state through the broker every ``interval`` seconds."""

    def __init__(self, *args, broker: str, interval: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.broker = broker
        self.interval = interval

    def on_start(self) -> None:
        self.send(self.broker, "mq.connect", {})
        self.every(self.interval, self.publish, jitter=self.interval * 0.2)

    def publish(self) -> None:
        body = {"node": self.node_id, "attrs": self.attributes()}
        self.send(
            self.broker,
            "mq.publish",
            {
                "queue": STATE_QUEUE,
                "body": body,
                "size": approx_size(body),
                "sent_at": self.sim.now,
            },
        )


class SubscribingNode(BaselineNode):
    """Receives queries via its broker queue and publishes its answers."""

    def __init__(self, *args, broker: str, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.broker = broker
        self.queue = f"q-{self.node_id}"

    def on_start(self) -> None:
        self.send(self.broker, "mq.bind", {"exchange": QUERY_EXCHANGE, "queue": self.queue})
        self.send(self.broker, "mq.subscribe", {"queue": self.queue})

    def handle_message(self, message: Message) -> None:
        if message.kind == "mq.deliver":
            body = message.payload["body"]
            query = Query.from_json(body["query"])
            attrs = self.attributes()
            answer = {
                "qid": body["qid"],
                "node": self.node_id,
                "match": query.matches(attrs),
                "attrs": attrs,
                "region": self.region,
            }
            self.send(
                self.broker,
                "mq.publish",
                {
                    "queue": RESPONSE_QUEUE,
                    "body": answer,
                    "size": approx_size(answer),
                    "sent_at": self.sim.now,
                },
            )
            return
        super().handle_message(message)


class _MqQueryServer(Process, RpcMixin):
    """Query server for both MQ modes (db for pub, aggregator for sub)."""

    def __init__(self, sim: Simulator, network: Network, address: str, region: str,
                 broker: str, *, processing_delay: float = 0.04, timeout: float = 3.0) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.broker = broker
        self.processing_delay = processing_delay
        self.timeout = timeout
        self.states: Dict[str, dict] = {}
        self._qid = itertools.count()
        self._pending: Dict[int, dict] = {}
        self.expected_nodes = 0

    # ---------------------------------------------------------------- pub path
    def subscribe_state(self) -> None:
        self.send(self.broker, "mq.subscribe", {"queue": STATE_QUEUE})

    def subscribe_responses(self) -> None:
        self.send(self.broker, "mq.subscribe", {"queue": RESPONSE_QUEUE})

    def handle_message(self, message: Message) -> None:
        if message.kind == "mq.deliver":
            queue = message.payload["queue"]
            body = message.payload["body"]
            if queue == STATE_QUEUE:
                self.states[body["node"]] = body["attrs"]
            elif queue == RESPONSE_QUEUE:
                self._on_query_answer(body)
            return
        super().handle_message(message)

    def answer_from_db(self, query: Query, on_response: Callable[[dict], None]) -> None:
        matches = match_records(self.states, query)
        self.sim.schedule(
            self.processing_delay,
            on_response,
            {"matches": matches, "source": "mq-pub", "timed_out": False},
        )

    # ---------------------------------------------------------------- sub path
    def answer_via_broadcast(self, query: Query, on_response: Callable[[dict], None]) -> None:
        qid = next(self._qid)
        state = {
            "query": query,
            "matches": {},
            "answers": 0,
            "on_response": on_response,
            "done": False,
        }
        self._pending[qid] = state
        body = {"qid": qid, "query": query.to_json()}
        self.send(
            self.broker,
            "mq.publish",
            {
                "exchange": QUERY_EXCHANGE,
                "body": body,
                "size": approx_size(body),
                "sent_at": self.sim.now,
            },
        )
        self.after(self.timeout, self._query_deadline, qid)

    def _on_query_answer(self, body: dict) -> None:
        state = self._pending.get(body["qid"])
        if state is None or state["done"]:
            return
        state["answers"] += 1
        if body.get("match"):
            state["matches"][body["node"]] = {
                "node": body["node"],
                "attrs": body.get("attrs", {}),
                "region": body.get("region", ""),
            }
        query = state["query"]
        limit_reached = (
            query.limit is not None and len(state["matches"]) >= query.limit
        )
        if limit_reached or state["answers"] >= self.expected_nodes:
            self._finish(body["qid"], timed_out=False)

    def _query_deadline(self, qid: int) -> None:
        if qid in self._pending and not self._pending[qid]["done"]:
            self._finish(qid, timed_out=True)

    def _finish(self, qid: int, *, timed_out: bool) -> None:
        state = self._pending.pop(qid)
        state["done"] = True
        query = state["query"]
        matches = list(state["matches"].values())
        if query.limit is not None:
            matches = matches[: query.limit]
        self.sim.schedule(
            self.processing_delay,
            state["on_response"],
            {"matches": matches, "source": "mq-sub", "timed_out": timed_out},
        )


class _RabbitFinderBase(NodeFinder):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        server_region: Optional[str] = None,
        broker_config: Optional[BrokerConfig] = None,
    ) -> None:
        super().__init__(sim, network)
        regions = [r.name for r in network.topology.regions]
        self.region = server_region or regions[0]
        self.broker = Broker(sim, network, "mq-broker", self.region, broker_config)
        self.broker.start()
        self.server = _MqQueryServer(
            sim, network, "mq-server", self.region, self.broker.address
        )
        self.server.start()

    def server_addresses(self) -> List[str]:
        return [self.broker.address, self.server.address]


class RabbitPubFinder(_RabbitFinderBase):
    """Nodes publish state at 1/s; queries answered from the consumer DB."""

    name = "rabbitmq-pub"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_nodes: int,
        node_factory: Callable[[int, str], dict],
        publish_interval: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(sim, network, **kwargs)
        self.server.subscribe_state()
        regions = [r.name for r in network.topology.regions]
        for index in range(num_nodes):
            node_region = regions[index % len(regions)]
            spec = node_factory(index, node_region)
            node = PublishingNode(
                sim,
                network,
                spec["node_id"],
                node_region,
                static=spec.get("static"),
                dynamic=spec.get("dynamic"),
                broker=self.broker.address,
                interval=publish_interval,
            )
            node.start()
            self.nodes.append(node)
        self.install_accounting()

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        self.server.answer_from_db(query, on_response)


class RabbitSubFinder(_RabbitFinderBase):
    """Queries broadcast to all nodes via the broker; answers flow back."""

    name = "rabbitmq-sub"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_nodes: int,
        node_factory: Callable[[int, str], dict],
        **kwargs,
    ) -> None:
        super().__init__(sim, network, **kwargs)
        self.server.subscribe_responses()
        regions = [r.name for r in network.topology.regions]
        for index in range(num_nodes):
            node_region = regions[index % len(regions)]
            spec = node_factory(index, node_region)
            node = SubscribingNode(
                sim,
                network,
                spec["node_id"],
                node_region,
                static=spec.get("static"),
                dynamic=spec.get("dynamic"),
                broker=self.broker.address,
            )
            node.start()
            self.nodes.append(node)
        self.server.expected_nodes = num_nodes
        self.install_accounting()

    def query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        self.server.answer_via_broadcast(query, on_response)
