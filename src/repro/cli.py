"""Command-line interface: run FOCUS scenarios without writing code.

Installed as ``focus-repro``. Subcommands:

* ``demo``    — build a cluster and show groups forming and queries running;
* ``query``   — ad-hoc query against a fresh cluster
                (``--term "ram_mb>=4096" --term "cpu_percent<=50"``);
* ``trace``   — replay the synthetic Chameleon trace and print percentiles;
* ``compare`` — FOCUS vs one baseline, server bandwidth side by side;
* ``chaos``   — seeded failure scenarios (crash, partition, churn, server
                failover) with a deterministic resilience report;
* ``swarm``   — the full-protocol SWIM sweep on the region-sharded parallel
                kernel (``--workers N``; ``--workers 1`` runs the serial
                reference arm of the same workload);
* ``info``    — the default attribute schema and configuration.
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional

from repro._version import __version__
from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm

_TERM_PATTERN = re.compile(r"^(\w+)\s*(>=|<=|==)\s*(.+)$")


def parse_term(text: str) -> QueryTerm:
    """Parse ``attr>=value`` / ``attr<=value`` / ``attr==value``."""
    match = _TERM_PATTERN.match(text.strip())
    if match is None:
        raise argparse.ArgumentTypeError(
            f"bad term {text!r}; expected attr>=value, attr<=value or attr==value"
        )
    name, op, raw = match.groups()
    try:
        value: object = float(raw)
    except ValueError:
        value = raw.strip()
    if op == "==":
        return QueryTerm.exact(name, value)  # type: ignore[arg-type]
    if isinstance(value, str):
        raise argparse.ArgumentTypeError(f"{text!r}: bounds need numeric values")
    if op == ">=":
        return QueryTerm.at_least(name, value)
    return QueryTerm.at_most(name, value)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the focus-repro command."""
    parser = argparse.ArgumentParser(
        prog="focus-repro",
        description="FOCUS (ICDCS 2019) reproduction - scenario runner",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared by every subcommand that builds a simulated cluster: which
    # determinism profile the simulator runs. "v1" is the bit-exact
    # reference stream; "v2" is the fast profile (batched numpy RNG, arena
    # message records, GC-frozen hot state) — still seeded-reproducible,
    # but a different byte stream, so don't diff v1 and v2 outputs.
    profiled = argparse.ArgumentParser(add_help=False)
    profiled.add_argument(
        "--profile", choices=["v1", "v2"], default="v1",
        help="determinism profile: v1 = bit-exact reference (default), "
             "v2 = fast (batched RNG + arena records; different but "
             "equally reproducible stream)",
    )

    demo = subparsers.add_parser("demo", parents=[profiled],
                                 help="groups forming + sample queries")
    demo.add_argument("--nodes", type=int, default=64)
    demo.add_argument("--seed", type=int, default=7)

    query = subparsers.add_parser("query", parents=[profiled],
                                  help="ad-hoc query against a cluster")
    query.add_argument("--nodes", type=int, default=64)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument("--limit", type=int, default=None)
    query.add_argument(
        "--term", dest="terms", action="append", type=parse_term, required=True,
        metavar="ATTR>=VALUE",
    )

    trace = subparsers.add_parser("trace", parents=[profiled],
                                  help="synthetic Chameleon trace replay")
    trace.add_argument("--nodes", type=int, default=200)
    trace.add_argument("--events", type=int, default=200)
    trace.add_argument("--seed", type=int, default=33)

    compare = subparsers.add_parser("compare", help="FOCUS vs a baseline")
    compare.add_argument("--nodes", type=int, default=400)
    compare.add_argument(
        "--baseline",
        choices=["naive-push", "naive-pull", "hierarchy", "rabbitmq-pub",
                 "rabbitmq-sub"],
        default="naive-push",
    )
    compare.add_argument("--queries", type=int, default=10)
    compare.add_argument("--seed", type=int, default=1234)

    chaos = subparsers.add_parser(
        "chaos", help="seeded failure scenarios + resilience report"
    )
    chaos.add_argument(
        "--scenario",
        default="all",
        metavar="NAME",
        help="which failure scenario to run: 'all' (default), 'list', or any "
             "name registered in repro.harness.failure_suite.SCENARIOS",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="also write the full resilience report JSON")

    swarm = subparsers.add_parser(
        "swarm", parents=[profiled],
        help="full-protocol SWIM sweep on the parallel kernel",
    )
    swarm.add_argument("--nodes", type=int, default=400)
    swarm.add_argument("--duration", type=float, default=3.0)
    swarm.add_argument(
        "--workers", type=int, default=1,
        help="region worker processes (1 = serial loop; >1 shards the "
             "topology's regions over forked workers with conservative "
             "window sync — byte-identical summaries either way)",
    )
    swarm.add_argument(
        "--verify", action="store_true",
        help="also run the serial arm and assert the summaries match",
    )

    subparsers.add_parser("info", help="default schema and configuration")
    return parser


# ---------------------------------------------------------------- commands
def cmd_demo(args) -> int:
    """``demo``: build a cluster, show group formation and sample queries."""
    from repro.harness import build_focus_cluster, drain, run_query

    print(f"Building {args.nodes} nodes (seed {args.seed}, "
          f"profile {args.profile})...")
    scenario = build_focus_cluster(args.nodes, seed=args.seed,
                                   profile=args.profile)
    drain(scenario, 15.0)
    groups = [g for g in scenario.service.dgm.groups.all_groups()
              if g.size_estimate() > 0]
    print(f"{len(groups)} attribute groups formed. Sample queries:")
    for label, query in (
        ("ram >= 4GB", Query([QueryTerm.at_least("ram_mb", 4096.0)],
                             limit=5, freshness_ms=0.0)),
        ("idle hosts", Query([QueryTerm.at_most("cpu_percent", 25.0)],
                             limit=5, freshness_ms=0.0)),
        ("schedulers", Query([QueryTerm.exact("service_type", "scheduler")],
                             limit=5)),
    ):
        response = run_query(scenario, query)
        print(f"  {label:12} -> {len(response.matches)} matches in "
              f"{response.elapsed * 1000:.0f} ms ({response.source})")
    return 0


def cmd_query(args) -> int:
    """``query``: run one ad-hoc query built from --term arguments."""
    from repro.harness import build_focus_cluster, drain, run_query

    query = Query(args.terms, limit=args.limit, freshness_ms=0.0)
    scenario = build_focus_cluster(args.nodes, seed=args.seed,
                                   profile=args.profile)
    drain(scenario, 15.0)
    response = run_query(scenario, query)
    print(f"{len(response.matches)} matches "
          f"({response.elapsed * 1000:.0f} ms, source={response.source}):")
    for match in response.matches:
        attrs = ", ".join(
            f"{t.name}={match['attrs'].get(t.name)}" for t in query.terms
        )
        print(f"  {match['node']} [{match['region']}] {attrs}")
    return 0


def cmd_trace(args) -> int:
    """``trace``: replay the synthetic Chameleon trace, print percentiles."""
    from repro.core.config import FocusConfig as _Config
    from repro.harness import build_focus_cluster, drain
    from repro.sim.metrics import Histogram
    from repro.workloads import ChameleonTraceGenerator

    scenario = build_focus_cluster(
        args.nodes, seed=args.seed, config=_Config(cache_enabled=False),
        warm_start=True, with_store=False, record_bandwidth_events=False,
        profile=args.profile,
    )
    drain(scenario, 3.0)
    generator = ChameleonTraceGenerator(seed=1)
    pairs = generator.accelerated_queries(args.events, limit=10, freshness_ms=0.0)
    histogram = Histogram("trace", streaming=True)
    start = scenario.sim.now
    for offset, query in pairs:
        scenario.sim.schedule_at(
            start + offset, scenario.app.query, query,
            lambda response: histogram.observe(response.elapsed),
        )
    scenario.sim.run_until(start + pairs[-1][0] + 8.0)
    print(f"{histogram.count} queries at ~{generator.mean_rate():.0f} q/s "
          f"over {args.nodes} nodes:")
    for percentile in (50, 75, 99):
        print(f"  p{percentile}: {histogram.percentile(percentile) * 1000:6.0f} ms")
    return 0


def cmd_compare(args) -> int:
    """``compare``: FOCUS vs one baseline, central-site bandwidth."""
    from repro.harness.comparison import (
        build_finder,
        comparison_queries,
        measure_bandwidth,
    )

    print(f"{args.nodes} nodes, {args.queries} queries at 1/s; "
          f"bandwidth at the central site:")
    rows = []
    for system in ("focus", args.baseline):
        finder = build_finder(system, args.nodes, seed=args.seed)
        stats = measure_bandwidth(finder, comparison_queries(args.queries))
        rows.append((system, stats["bandwidth_kbps"], stats["matches"]))
    for system, bandwidth, matches in rows:
        print(f"  {system:14} {bandwidth:10.1f} KB/s   ({matches} matches)")
    focus_bw, base_bw = rows[0][1], rows[1][1]
    if base_bw > focus_bw > 0:
        print(f"  -> FOCUS eliminates {100 * (1 - focus_bw / base_bw):.0f}% "
              f"of {args.baseline}'s server traffic")
    return 0


def cmd_chaos(args) -> int:
    """``chaos``: run the failure suite, print the resilience numbers."""
    import json

    from repro.harness.failure_suite import SCENARIOS, run_suite

    if args.scenario == "list":
        for name in SCENARIOS:
            print(name)
        return 0
    if args.scenario != "all" and args.scenario not in SCENARIOS:
        known = ", ".join(SCENARIOS)
        print(f"unknown scenario {args.scenario!r}; choose from: all, {known}",
              file=sys.stderr)
        return 2
    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    report = run_suite(seed=args.seed, scenarios=names)
    print(f"Failure suite (seed {args.seed}):")
    for name in names:
        result = report["scenarios"][name]
        window = result["fault_window"]
        detection = result["detection_latency_s"]
        detection_text = "n/a" if detection is None else f"{detection:5.1f} s"
        print(f"  {name:22} detect={detection_text:>8}  "
              f"reconverge={result['reconvergence_s']:4.1f} s  "
              f"fn={window['false_negative_rate']:6.2%}  "
              f"stale={window['stale_answer_rate']:6.2%}  "
              f"timeouts={window['timeouts']}/{window['polls']}")
        for entry in result["fault_log"]:
            print(f"      t={entry['t']:6.1f}  {entry['action']}")
    print(f"report checksum: {report['checksum'][:16]}…")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


def cmd_swarm(args) -> int:
    """``swarm``: the canonical sharded SWIM sweep, serial or parallel."""
    import time

    from repro.sim.parallel.workload import (
        run_parallel,
        run_serial,
        summary_checksum,
    )

    print(f"{args.nodes} nodes for {args.duration:g} simulated seconds "
          f"(profile {args.profile}, workers {args.workers})...")
    start = time.perf_counter()
    if args.workers <= 1:
        summary = run_serial(args.nodes, args.duration, profile=args.profile)
        detail = "serial loop"
    else:
        summary, coordinator = run_parallel(
            args.nodes, args.duration,
            workers=args.workers, profile=args.profile,
        )
        detail = (f"{coordinator.workers} workers, "
                  f"{coordinator.windows_run} windows, "
                  f"{coordinator.messages_exchanged} cross-region messages")
    elapsed = time.perf_counter() - start
    events = summary["events"]
    print(f"{events} events in {elapsed:.2f}s wall "
          f"({events / elapsed:,.0f} ev/s; {detail})")
    print(f"summary checksum: {summary_checksum(summary)[:16]}…")
    if args.verify and args.workers > 1:
        reference = run_serial(args.nodes, args.duration, profile=args.profile)
        if reference != summary:
            print("MISMATCH: parallel summary diverges from the serial arm",
                  file=sys.stderr)
            return 1
        print("verified: byte-identical to the serial arm")
    return 0


def cmd_info(args) -> int:
    """``info``: print the default schema and configuration knobs."""
    config = FocusConfig()
    print("Default dynamic attributes (name / cutoff / range):")
    for name, spec in config.schema.dynamic().items():
        print(f"  {name:12} cutoff={spec.cutoff:<8g} "
              f"range=[{spec.min_value:g}, {spec.max_value:g}] {spec.unit}")
    print("Static attributes:", ", ".join(sorted(config.schema.static())))
    print(f"Group size cap: {config.max_group_size}; "
          f"representatives/group: {config.representatives_per_group}; "
          f"report interval: {config.report_interval}s")
    print(f"Gossip: fanout {config.serf.gossip_fanout}, "
          f"interval {config.serf.gossip_interval * 1000:.0f} ms")
    return 0


COMMANDS = {
    "demo": cmd_demo,
    "query": cmd_query,
    "trace": cmd_trace,
    "compare": cmd_compare,
    "chaos": cmd_chaos,
    "swarm": cmd_swarm,
    "info": cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``focus-repro`` console script."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
