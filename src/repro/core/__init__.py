"""The FOCUS service: attribute-grouped, gossip-coordinated node search.

Components (mirroring §VIII of the paper):

* :mod:`repro.core.attributes` — attribute schema (static vs dynamic, cutoffs)
* :mod:`repro.core.query`      — the query structure (§V-A)
* :mod:`repro.core.naming`     — deterministic group naming (§VIII-A2)
* :mod:`repro.core.groups`     — group metadata, fork and geo-split decisions
* :mod:`repro.core.cache`      — query response cache with freshness (§VI)
* :mod:`repro.core.service`    — the FOCUS server: Registrar + Dynamic Groups
  Manager + Query Router behind northbound/southbound APIs
* :mod:`repro.core.agent`      — the node agent: node manager + one p2p
  (Serf) agent per dynamic attribute group (§VIII-B)
* :mod:`repro.core.rest`       — application-side client (REST-equivalent)
* :mod:`repro.core.cpumodel`   — busy-until CPU service-time model (Fig. 3)
* :mod:`repro.core.admission`  — overload defenses: throttling, admission
  queue, bulkheads, circuit breakers (all config-gated, off by default)
"""

from repro.core.admission import (
    AdmissionQueue,
    CircuitBreaker,
    OverloadConfig,
    TokenBucket,
)
from repro.core.attributes import (
    AttributeKind,
    AttributeSchema,
    AttributeSpec,
    openstack_schema,
)
from repro.core.cache import QueryCache
from repro.core.cpumodel import ServerCpuModel
from repro.core.config import FocusConfig
from repro.core.groups import GroupInfo, GroupTable
from repro.core.naming import group_base, group_name, groups_covering, parse_group_name
from repro.core.query import Query, QueryTerm
from repro.core.rest import FocusClient, QueryResponse
from repro.core.service import FocusService
from repro.core.agent import NodeAgent

__all__ = [
    "AdmissionQueue",
    "AttributeKind",
    "AttributeSchema",
    "AttributeSpec",
    "CircuitBreaker",
    "FocusClient",
    "FocusConfig",
    "FocusService",
    "GroupInfo",
    "GroupTable",
    "NodeAgent",
    "OverloadConfig",
    "Query",
    "QueryCache",
    "QueryResponse",
    "QueryTerm",
    "ServerCpuModel",
    "TokenBucket",
    "group_base",
    "group_name",
    "groups_covering",
    "openstack_schema",
    "parse_group_name",
]
