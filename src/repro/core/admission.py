"""Overload defenses for the serving plane: throttling, queueing, breakers.

Once the FOCUS servers model CPU service time (:mod:`repro.core.cpumodel`),
they can saturate the way the paper's Fig. 3 shows RabbitMQ saturating —
and then the interesting question is what stands between offered load and
collapse. This module is that defense layer. Everything here is config-gated
through :class:`OverloadConfig` and **off by default**, so the pinned v1/v2
kernel checksums and the shard-plane run digest stay byte-identical.

Patterns (each independently switchable):

* **Token-bucket throttling** (:class:`TokenBucket`) — reject excess
  requests at the door, with optional per-client buckets so one greedy
  client cannot exhaust the shared budget (per-client fairness).
* **Queue-based load leveling** (:class:`AdmissionQueue`) — a bounded
  FIFO/LIFO admission queue in front of each CPU lane, shedding on
  capacity and on deadline (a request that has already waited past its
  deadline is dropped instead of wasting service time on a reply nobody
  is waiting for).
* **Bulkhead isolation** — wired in :mod:`repro.core.service`: the query
  and registration paths get separate :class:`~repro.core.cpumodel.ServerCpuModel`
  lanes carved out of the same physical cores, so a thundering-herd
  re-registration storm cannot starve reads (and vice versa).
* **Circuit breaker** (:class:`CircuitBreaker`) — per-shard
  closed → open → half-open state machine driven by failure rate and
  latency over a sliding outcome window. While open, the router falls
  back to replica/cache stale reads stamped with the existing
  ``staleness_ms`` bound instead of queueing more work onto a drowning
  shard.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import ConfigError

_QUEUE_DISCIPLINES = ("fifo", "lifo")


@dataclass
class OverloadConfig:
    """All overload-model and defense knobs, off by default.

    ``FocusConfig.server_queue_enabled`` is the master switch: none of
    these take effect unless it is on (enforced by
    :meth:`repro.core.config.FocusConfig.validate`), and with everything
    here at its default the serving plane behaves exactly as before.
    """

    # ----------------------------------------------------------- CPU model
    #: Charge queries/registrations/reports real CPU service time on a
    #: busy-until :class:`~repro.core.cpumodel.ServerCpuModel` per server
    #: (per shard, per replica). Off = the legacy fixed
    #: ``server_processing_delay`` serial queue.
    cpu_model_enabled: bool = False
    #: Cores per serving-plane server (each shard gets its own machine).
    cores: float = 4.0
    #: Core-seconds to parse/route/answer one query.
    per_query_cpu: float = 0.002
    #: Core-seconds to process one registration (table + group placement).
    per_registration_cpu: float = 0.005
    #: Core-seconds to ingest one representative report.
    per_report_cpu: float = 0.002
    #: Core-seconds for a replica to answer one bounded-staleness read.
    per_replica_query_cpu: float = 0.001
    #: Shed work whose queue wait would exceed this (None = unbounded — the
    #: pure Fig. 3 collapse).
    max_backlog_seconds: Optional[float] = None

    # ----------------------------------------------------------- throttling
    throttle_enabled: bool = False
    #: Sustained admitted request rate per bucket (requests/second).
    throttle_rate: float = 200.0
    #: Burst capacity per bucket (requests).
    throttle_burst: float = 50.0
    #: One bucket per client address (fairness) instead of one shared.
    throttle_per_client: bool = True

    # ------------------------------------------------------ admission queue
    queue_enabled: bool = False
    #: Pending requests beyond this are shed on arrival (None = unbounded).
    queue_capacity: Optional[int] = 256
    #: "fifo" or "lifo" (LIFO favours fresh requests under sustained
    #: overload: the newest arrival is the one whose client is still there).
    queue_discipline: str = "fifo"
    #: Requests that waited longer than this are shed at dequeue time
    #: instead of being served dead (None disables deadline shedding).
    queue_deadline: Optional[float] = 2.0

    # -------------------------------------------------------------- bulkhead
    bulkhead_enabled: bool = False
    #: Fraction of each server's cores reserved for the query path; the
    #: remainder serves registrations and reports.
    bulkhead_query_share: float = 0.75

    # -------------------------------------------------------- circuit breaker
    breaker_enabled: bool = False
    #: Trip when the failure fraction over the window reaches this...
    breaker_failure_threshold: float = 0.5
    #: ...but only once the window holds at least this many outcomes.
    breaker_min_volume: int = 8
    #: Successes slower than this count as failures (None = rate-only).
    breaker_latency_threshold: Optional[float] = None
    #: Sliding outcome window length.
    breaker_window: int = 32
    #: Seconds an open breaker waits before probing (half-open).
    breaker_cooldown: float = 5.0
    #: Probes admitted while half-open; all must succeed to close.
    breaker_half_open_probes: int = 2
    #: Uniform extra cooldown drawn from a derived RNG stream (decorrelates
    #: breakers that tripped together); 0 keeps cooldowns exact.
    breaker_cooldown_jitter: float = 0.0

    def any_defense_enabled(self) -> bool:
        return (
            self.throttle_enabled
            or self.queue_enabled
            or self.bulkhead_enabled
            or self.breaker_enabled
        )

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on nonsense combinations."""
        if self.cores <= 0:
            raise ConfigError(f"overload.cores must be positive, got {self.cores}")
        for name in (
            "per_query_cpu",
            "per_registration_cpu",
            "per_report_cpu",
            "per_replica_query_cpu",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"overload.{name} must be >= 0, got {value}")
        if self.max_backlog_seconds is not None and self.max_backlog_seconds < 0:
            raise ConfigError(
                "overload.max_backlog_seconds must be >= 0 or None, "
                f"got {self.max_backlog_seconds}"
            )
        if self.any_defense_enabled() and not self.cpu_model_enabled:
            raise ConfigError(
                "overload defenses (throttle/queue/bulkhead/breaker) require "
                "overload.cpu_model_enabled — without a CPU model there is no "
                "overload to defend against"
            )
        if self.throttle_enabled:
            if self.throttle_rate <= 0:
                raise ConfigError(
                    f"overload.throttle_rate must be positive, got {self.throttle_rate}"
                )
            if self.throttle_burst < 1:
                raise ConfigError(
                    f"overload.throttle_burst must be >= 1, got {self.throttle_burst}"
                )
        if self.queue_enabled:
            if self.queue_discipline not in _QUEUE_DISCIPLINES:
                raise ConfigError(
                    f"overload.queue_discipline must be one of {_QUEUE_DISCIPLINES}, "
                    f"got {self.queue_discipline!r}"
                )
            if self.queue_capacity is not None and self.queue_capacity < 1:
                raise ConfigError(
                    "overload.queue_capacity must be >= 1 or None, "
                    f"got {self.queue_capacity}"
                )
            if self.queue_deadline is not None and self.queue_deadline <= 0:
                raise ConfigError(
                    "overload.queue_deadline must be positive or None, "
                    f"got {self.queue_deadline}"
                )
        if self.bulkhead_enabled and not 0.0 < self.bulkhead_query_share < 1.0:
            raise ConfigError(
                "overload.bulkhead_query_share must be in (0, 1) so both "
                f"bulkheads keep capacity, got {self.bulkhead_query_share}"
            )
        if self.breaker_enabled:
            if not 0.0 < self.breaker_failure_threshold <= 1.0:
                raise ConfigError(
                    "overload.breaker_failure_threshold must be in (0, 1], "
                    f"got {self.breaker_failure_threshold}"
                )
            if self.breaker_min_volume < 1:
                raise ConfigError(
                    "overload.breaker_min_volume must be >= 1, "
                    f"got {self.breaker_min_volume}"
                )
            if self.breaker_window < self.breaker_min_volume:
                raise ConfigError(
                    "overload.breaker_window must be >= breaker_min_volume, "
                    f"got {self.breaker_window} < {self.breaker_min_volume}"
                )
            if self.breaker_cooldown <= 0:
                raise ConfigError(
                    "overload.breaker_cooldown must be positive, "
                    f"got {self.breaker_cooldown}"
                )
            if self.breaker_half_open_probes < 1:
                raise ConfigError(
                    "overload.breaker_half_open_probes must be >= 1, "
                    f"got {self.breaker_half_open_probes}"
                )
            if self.breaker_cooldown_jitter < 0:
                raise ConfigError(
                    "overload.breaker_cooldown_jitter must be >= 0, "
                    f"got {self.breaker_cooldown_jitter}"
                )


class TokenBucket:
    """Deterministic token-bucket rate limiter with optional per-client buckets.

    Tokens refill continuously at ``rate`` per second up to ``burst``; each
    admitted request spends one token. With ``per_client`` every client
    address gets its own bucket, so fairness is structural: a flash crowd
    from one client exhausts only that client's budget.
    """

    __slots__ = ("rate", "burst", "per_client", "_buckets", "allowed", "throttled")

    _SHARED = "<shared>"

    def __init__(self, rate: float, burst: float, *, per_client: bool = True) -> None:
        self.rate = rate
        self.burst = burst
        self.per_client = per_client
        # client -> (tokens, refilled_at)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self.allowed = 0
        self.throttled = 0

    def allow(self, now: float, client: Optional[str] = None) -> bool:
        key = client if (self.per_client and client is not None) else self._SHARED
        tokens, refilled_at = self._buckets.get(key, (self.burst, now))
        tokens = min(self.burst, tokens + (now - refilled_at) * self.rate)
        if tokens >= 1.0:
            self._buckets[key] = (tokens - 1.0, now)
            self.allowed += 1
            return True
        self._buckets[key] = (tokens, now)
        self.throttled += 1
        return False


class AdmissionQueue:
    """Bounded FIFO/LIFO admission queue in front of one CPU lane.

    Queue-based load leveling: the lane serves one request at a time off
    its :class:`~repro.core.cpumodel.ServerCpuModel`; arrivals while busy
    wait in an explicit queue. Arrivals past ``capacity`` are shed
    immediately; entries that waited past ``deadline`` are shed at dequeue
    time (their caller has long since timed out — serving them is pure
    waste). ``discipline`` picks which waiting entry runs next: ``"fifo"``
    preserves order, ``"lifo"`` serves the freshest request first, which
    keeps *some* answers fast under sustained overload.

    ``run(delay)`` is invoked when the entry completes service, with the
    total sojourn time (wait + service) it experienced; ``shed(reason)``
    when it is dropped (``"queue-full"`` or ``"deadline"``).
    """

    def __init__(
        self,
        sim,
        model,
        *,
        capacity: Optional[int] = 256,
        discipline: str = "fifo",
        deadline: Optional[float] = 2.0,
    ) -> None:
        if discipline not in _QUEUE_DISCIPLINES:
            raise ConfigError(f"unknown queue discipline {discipline!r}")
        self._sim = sim
        self.model = model
        self.capacity = capacity
        self.discipline = discipline
        self.deadline = deadline
        self._pending: Deque[Tuple[float, float, Callable, Callable]] = deque()
        self._busy = False
        self.admitted = 0
        self.shed_capacity = 0
        self.shed_deadline = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(
        self,
        service_time: float,
        run: Callable[[float], None],
        shed: Callable[[str], None],
    ) -> bool:
        """Admit, queue, or shed one request; returns False iff shed."""
        now = self._sim.now
        if not self._busy:
            self._begin(now, now, service_time, run)
            return True
        if self.capacity is not None and len(self._pending) >= self.capacity:
            self.shed_capacity += 1
            shed("queue-full")
            return False
        self._pending.append((now, service_time, run, shed))
        return True

    def _begin(
        self, now: float, arrived_at: float, service_time: float, run: Callable
    ) -> None:
        self._busy = True
        self.admitted += 1
        delay = self.model.occupy(now, service_time)
        self._sim.schedule(delay, self._complete, arrived_at, run)

    def _complete(self, arrived_at: float, run: Callable) -> None:
        now = self._sim.now
        run(now - arrived_at)
        while self._pending:
            if self.discipline == "lifo":
                entry = self._pending.pop()
            else:
                entry = self._pending.popleft()
            arrived, service_time, next_run, shed = entry
            if self.deadline is not None and now - arrived > self.deadline:
                self.shed_deadline += 1
                shed("deadline")
                continue
            self._begin(now, arrived, service_time, next_run)
            return
        self._busy = False

    def reset(self) -> None:
        """Crash-restart semantics: the in-memory queue does not survive."""
        self._pending.clear()
        self._busy = False
        self.model.reset()


class CircuitBreaker:
    """Closed → open → half-open breaker over a sliding outcome window.

    A pure, simulator-free state machine (unit- and Hypothesis-testable):
    callers feed it wall-clock ``now`` explicitly. Trips open when, with at
    least ``min_volume`` outcomes in the window, the failure fraction
    reaches ``failure_threshold``; successes slower than
    ``latency_threshold`` count as failures (a shard that answers in 8 s is
    as good as down). After ``cooldown`` seconds (plus optional jitter from
    a derived RNG stream, for determinism) the next :meth:`allow` moves it
    to half-open, which admits exactly ``half_open_probes`` probes: all
    must succeed to re-close; any failure re-opens. The cooldown transition
    happens in :meth:`allow` unconditionally, so an open breaker can never
    wedge — time alone always gets it back to half-open.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: float = 0.5,
        min_volume: int = 8,
        latency_threshold: Optional[float] = None,
        window: int = 32,
        cooldown: float = 5.0,
        half_open_probes: int = 2,
        cooldown_jitter: float = 0.0,
        rng=None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.latency_threshold = latency_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.cooldown_jitter = cooldown_jitter
        self._rng = rng
        self._window: Deque[bool] = deque(maxlen=window)
        self.state = self.CLOSED
        self._reopen_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.opened_count = 0
        self.rejected = 0

    # ------------------------------------------------------------- admission
    def _tick(self, now: float) -> None:
        """Time-based transition: an elapsed cooldown opens the probe window."""
        if self.state == self.OPEN and now >= self._reopen_at:
            self.state = self.HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    def peek(self, now: float) -> bool:
        """Whether :meth:`allow` would admit, without consuming a probe slot.

        Applies the cooldown transition (it is driven by time, not by
        traffic) but never claims a half-open probe — callers that gate a
        multi-shard plan check every breaker with ``peek`` first, then
        claim probes with :meth:`allow` only on the branches they take.
        """
        self._tick(now)
        if self.state == self.CLOSED:
            return True
        if self.state == self.HALF_OPEN:
            return self._probes_in_flight < self.half_open_probes
        return False

    def allow(self, now: float) -> bool:
        """May a request proceed to the protected resource right now?"""
        self._tick(now)
        if self.state == self.CLOSED:
            return True
        if self.state == self.HALF_OPEN:
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejected += 1
            return False
        self.rejected += 1
        return False

    # --------------------------------------------------------------- outcomes
    def record_success(self, now: float, latency: float = 0.0) -> None:
        if (
            self.latency_threshold is not None
            and latency > self.latency_threshold
        ):
            self.record_failure(now)
            return
        if self.state == self.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._close()
        elif self.state == self.CLOSED:
            self._window.append(True)

    def record_failure(self, now: float) -> None:
        if self.state == self.HALF_OPEN:
            self._trip(now)
        elif self.state == self.CLOSED:
            self._window.append(False)
            if len(self._window) >= self.min_volume:
                failures = self._window.count(False)
                if failures / len(self._window) >= self.failure_threshold:
                    self._trip(now)

    # ------------------------------------------------------------ transitions
    def _trip(self, now: float) -> None:
        self.state = self.OPEN
        self.opened_count += 1
        jitter = 0.0
        if self.cooldown_jitter > 0 and self._rng is not None:
            jitter = self._rng.random() * self.cooldown_jitter
        self._reopen_at = now + self.cooldown + jitter
        self._window.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0

    def _close(self) -> None:
        self.state = self.CLOSED
        self._window.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0
