"""The FOCUS node agent (§VIII-B).

Two cooperating pieces run on every node:

* the **node manager** (this process): collects attribute values, registers
  with the FOCUS service, asks for group suggestions when a dynamic value
  leaves its group's range, answers direct queries, performs representative
  duty (periodic member-list uploads), and fans group queries into the p2p
  fabric;
* one **p2p agent** (:class:`~repro.gossip.agent.SerfAgent`) per dynamic
  attribute group the node belongs to. Group queries arrive at the manager,
  are gossiped to the whole group via the serf query mechanism, and every
  member's answer returns directly to this node, which filters matches and
  replies to the FOCUS server.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

from repro.core.config import FocusConfig
from repro.core.groups import serf_address
from repro.core.query import Query
from repro.gossip.agent import SerfAgent
from repro.sim.loop import RepeatingTimer, Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import DEFERRED, RpcMixin

#: Serf query name used for FOCUS group queries.
GROUP_QUERY_EVENT = "fq"

#: How long after joining to verify the join actually took.
JOIN_VERIFY_DELAY = 3.0


class GroupMembership:
    """One attribute group this node currently belongs to."""

    __slots__ = ("group", "attribute", "low", "high", "serf", "report_timer")

    def __init__(self, group: str, attribute: str, low: float, high: float, serf: SerfAgent) -> None:
        self.group = group
        self.attribute = attribute
        self.low = low
        self.high = high
        self.serf = serf
        self.report_timer: Optional[RepeatingTimer] = None

    def contains(self, value: float) -> bool:
        return self.low <= value < self.high


class NodeAgent(Process, RpcMixin):
    """The per-node FOCUS agent. Its network address is the node id."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        region: str,
        focus_address: str,
        *,
        static: Optional[Dict[str, object]] = None,
        dynamic: Optional[Dict[str, float]] = None,
        config: Optional[FocusConfig] = None,
        collector: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        Process.__init__(self, sim, network, node_id, region)
        self.init_rpc()
        self.node_id = node_id
        self.focus_address = focus_address
        self.config = config or FocusConfig()
        self.static = dict(static or {})
        self.dynamic: Dict[str, float] = {k: float(v) for k, v in (dynamic or {}).items()}
        self.collector = collector
        self.memberships: Dict[str, GroupMembership] = {}
        self.registered = False
        self.registration_error: Optional[str] = None
        self._skip_registration = False
        self._moving: set = set()
        self._rng = sim.derive_rng(f"agent/{node_id}")

        #: Materialized views (§XII extension): definitions this node knows,
        #: and the view groups it currently belongs to.
        self.view_definitions: Dict[str, Query] = {}
        self.view_memberships: Dict[str, GroupMembership] = {}
        self._joining_views: set = set()

        self.serve("node.group-query", self._rpc_group_query)
        self.serve("node.query", self._rpc_node_query)
        self.serve("node.be-representative", self._rpc_be_representative)
        self.serve("node.stop-representative", self._rpc_stop_representative)
        self.serve("node.move-group", self._rpc_move_group)
        self.serve("node.view-def", self._rpc_view_def)
        self.serve("node.drop-view", self._rpc_drop_view)

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        if not self._skip_registration:
            self.register()
        if self.collector is not None:
            self.every(
                self.config.collection_interval,
                self._collect,
                jitter=self.config.collection_interval * 0.2,
            )

    def on_stop(self) -> None:
        for membership in list(self.memberships.values()) + list(
            self.view_memberships.values()
        ):
            if membership.report_timer is not None:
                membership.report_timer.stop()
            membership.serf.stop()
        self.memberships.clear()
        self.view_memberships.clear()
        # Crash semantics: in-flight joins/moves and outstanding RPC calls
        # must not leak into a restarted incarnation.
        self._moving.clear()
        self._joining_views.clear()
        self.reset_rpc()

    def restart(self) -> None:
        """Crash recovery: come back up and re-register with the service.

        Registration re-triggers group suggestions, so the node rejoins its
        attribute groups (and any materialized views) from scratch — the
        recovery path §VIII-B relies on.
        """
        self._skip_registration = False
        self.registered = False
        self.registration_error = None
        super().restart()

    def start_without_registration(self) -> None:
        """Start without contacting the service (harness warm start)."""
        self._skip_registration = True
        self.start()

    def shutdown(self) -> None:
        """Graceful departure: deregister and let serf agents announce leave."""
        if self.running:
            self.call(
                self.focus_address,
                "focus.deregister",
                {"node_id": self.node_id},
                on_reply=lambda result: None,
            )
        for membership in list(self.memberships.values()) + list(
            self.view_memberships.values()
        ):
            membership.serf.leave()
        self.after(self.config.serf.gossip_interval * 6, self.stop)

    # ------------------------------------------------------------ attributes
    def attributes(self) -> Dict[str, object]:
        """Current full attribute view (static + dynamic + region)."""
        merged: Dict[str, object] = {"region": self.region}
        merged.update(self.static)
        merged.update(self.dynamic)
        return merged

    def set_attribute(self, name: str, value: float) -> None:
        """Update a dynamic attribute; may trigger a group move (§VII).

        Values pass through the schema's normalizer first (§XII), so
        heterogeneous collectors can report in their native units.
        """
        value = float(self.config.schema.normalize_value(name, value))
        self.dynamic[name] = value
        membership = self.memberships.get(name)
        if membership is not None:
            if not membership.contains(value) and name not in self._moving:
                self._request_move(name, value, leaving=membership.group)
        # Event trigger (§XII): a state change may move this node into or
        # out of any materialized view.
        self._reevaluate_views()

    def _collect(self) -> None:
        for name, value in self.collector().items():
            self.set_attribute(name, value)

    # ----------------------------------------------------------- registration
    def register(self) -> None:
        self.call(
            self.focus_address,
            "focus.register",
            {
                "node_id": self.node_id,
                "region": self.region,
                "static": self.static,
                "dynamic": self.dynamic,
            },
            on_reply=self._on_registered,
            on_timeout=self._retry_register,
            timeout=self.config.query_timeout * 2,
        )

    def _retry_register(self) -> None:
        self.after(1.0 + self._rng.random(), self.register)

    def _on_registered(self, result) -> None:
        if result.get("error"):
            self.registration_error = str(result["error"])
            return
        self.registered = True
        for suggestion in result.get("groups", ()):
            self._join_group(suggestion)
        for definition in result.get("views", ()):
            self._learn_view(str(definition["view_id"]), definition["query"])

    # ------------------------------------------------------------- group join
    def _join_group(self, suggestion: Dict[str, object]) -> None:
        group = str(suggestion["name"])
        attribute = str(suggestion["attribute"])
        low, high = suggestion["range"]  # type: ignore[misc]
        address = serf_address(self.node_id, group)
        old = self.memberships.get(attribute)
        if old is not None and old.group == group:
            return
        if self.network.is_registered(address):
            # Rejoining a group whose previous serf agent is still draining
            # its graceful leave: tear it down immediately.
            self.network.endpoint(address).stop()  # type: ignore[attr-defined]
        serf_config = self.config.serf
        fanout = suggestion.get("fanout")
        if fanout is not None and fanout != serf_config.gossip_fanout:
            # §XII: this group runs at its own fanout (time-sensitive apps).
            serf_config = replace(serf_config, gossip_fanout=int(fanout))
        serf = SerfAgent(self.sim, self.network, self.node_id, address, self.region, serf_config)
        serf.on_query(GROUP_QUERY_EVENT, self._answer_group_query)
        serf.start()
        membership = GroupMembership(group, attribute, float(low), float(high), serf)
        self.memberships[attribute] = membership
        entry_points = list(suggestion.get("entry_points") or ())
        if entry_points:
            serf.join(entry_points)
            self.after(JOIN_VERIFY_DELAY, self._verify_join, attribute, group)
        if suggestion.get("representative"):
            self._start_reporting(membership, float(suggestion.get("report_interval", 5.0)))

    def _verify_join(self, attribute: str, group: str) -> None:
        """Entry points can be stale; re-request a suggestion if isolated."""
        membership = self.memberships.get(attribute)
        if membership is None or membership.group != group or not self.running:
            return
        if membership.serf.group_size() > 1:
            return
        value = self.dynamic.get(attribute)
        if value is not None:
            self._request_move(attribute, value, leaving=group)

    def _request_move(self, attribute: str, value: float, *, leaving: Optional[str]) -> None:
        self._moving.add(attribute)

        def on_reply(result) -> None:
            self._moving.discard(attribute)
            if not self.running or result.get("error"):
                return
            suggestion = result["group"]
            old = self.memberships.get(attribute)
            if old is not None and old.group != suggestion["name"]:
                if old.report_timer is not None:
                    old.report_timer.stop()
                old.serf.leave()
            self._join_group(suggestion)
            # The value may have changed again while the suggestion was in
            # flight; chase it so the node never settles in a wrong group.
            current = self.dynamic.get(attribute)
            landed = self.memberships.get(attribute)
            if (
                current is not None
                and landed is not None
                and not landed.contains(current)
            ):
                self._request_move(attribute, current, leaving=landed.group)

        self.call(
            self.focus_address,
            "focus.suggest",
            {
                "node_id": self.node_id,
                "region": self.region,
                "attribute": attribute,
                "value": value,
                "leaving": leaving,
            },
            on_reply=on_reply,
            on_timeout=lambda: self._moving.discard(attribute),
            timeout=self.config.query_timeout * 2,
        )

    # ------------------------------------------------------ materialized views
    def _rpc_view_def(self, params, respond, message):
        self._learn_view(str(params["view_id"]), params["query"])
        return {"ok": True}

    def _rpc_drop_view(self, params, respond, message):
        view_id = str(params["view_id"])
        self.view_definitions.pop(view_id, None)
        membership = self.view_memberships.pop(view_id, None)
        if membership is not None:
            if membership.report_timer is not None:
                membership.report_timer.stop()
            membership.serf.leave()
        return {"ok": True}

    def _learn_view(self, view_id: str, query_json) -> None:
        self.view_definitions[view_id] = Query.from_json(query_json)
        self._reevaluate_views()

    def _reevaluate_views(self) -> None:
        """The event trigger: join/leave view groups as state changes."""
        if not self.view_definitions or not self.running:
            return
        attrs = self.attributes()
        for view_id, query in self.view_definitions.items():
            matches = query.matches(attrs)
            member = view_id in self.view_memberships
            if matches and not member and view_id not in self._joining_views:
                self._join_view(view_id)
            elif not matches and member:
                self._leave_view(view_id)

    def _join_view(self, view_id: str) -> None:
        self._joining_views.add(view_id)

        def on_reply(result) -> None:
            self._joining_views.discard(view_id)
            if not self.running or result.get("error"):
                return
            group = str(result["name"])
            address = serf_address(self.node_id, group)
            if self.network.is_registered(address):
                self.network.endpoint(address).stop()  # type: ignore[attr-defined]
            serf = SerfAgent(
                self.sim, self.network, self.node_id, address, self.region,
                self.config.serf,
            )
            serf.on_query(GROUP_QUERY_EVENT, self._answer_group_query)
            serf.start()
            membership = GroupMembership(
                group, f"__view__:{view_id}", float("-inf"), float("inf"), serf
            )
            self.view_memberships[view_id] = membership
            entry_points = list(result.get("entry_points") or ())
            if entry_points:
                serf.join(entry_points)
            if result.get("representative"):
                self._start_reporting(
                    membership, float(result.get("report_interval", 5.0))
                )
            # State may have changed again while the join was in flight.
            self._reevaluate_views()

        self.call(
            self.focus_address,
            "focus.join-view",
            {"node_id": self.node_id, "view_id": view_id, "region": self.region},
            on_reply=on_reply,
            on_timeout=lambda: self._joining_views.discard(view_id),
            timeout=self.config.query_timeout * 2,
        )

    def _leave_view(self, view_id: str) -> None:
        membership = self.view_memberships.pop(view_id, None)
        if membership is None:
            return
        if membership.report_timer is not None:
            membership.report_timer.stop()
            membership.report_timer = None
        membership.serf.leave()
        self.call(
            self.focus_address,
            "focus.leave-view",
            {"node_id": self.node_id, "view_id": view_id},
            on_reply=lambda result: None,
        )

    # ------------------------------------------------------ representative duty
    def _start_reporting(self, membership: GroupMembership, interval: float) -> None:
        if membership.report_timer is not None:
            return

        def report() -> None:
            self._upload_report(membership)

        membership.report_timer = self.every(interval, report, jitter=interval * 0.2)

    def _upload_report(self, membership: GroupMembership) -> None:
        # Bare node ids: the service already knows each node's region from
        # registration, so shipping regions would waste upload bandwidth.
        members = [m.name for m in membership.serf.alive_members()]

        def on_reply(result) -> None:
            if not result.get("representative") and membership.report_timer is not None:
                membership.report_timer.stop()
                membership.report_timer = None

        self.call(
            self.focus_address,
            "focus.group-report",
            {"group": membership.group, "reporter": self.node_id, "members": members},
            on_reply=on_reply,
            timeout=self.config.query_timeout,
        )

    # ------------------------------------------------------------ query paths
    def _answer_group_query(self, payload, origin: str) -> Dict[str, object]:
        """Every group member answers; the originator aggregates (§VII).

        Non-matching members answer with a bare "no" — shipping their full
        attribute state would waste the group's bandwidth (Fig. 8b).
        """
        query = Query.from_json(payload)
        attrs = self.attributes()
        if not query.matches(attrs):
            return {"node": self.node_id, "match": False}
        return {
            "node": self.node_id,
            "match": True,
            "attrs": attrs,
            "region": self.region,
        }

    def _rpc_group_query(self, params, respond, message):
        group = str(params["group"])
        membership = None
        for candidate in list(self.memberships.values()) + list(
            self.view_memberships.values()
        ):
            if candidate.group == group:
                membership = candidate
                break
        if membership is None:
            return {"matches": [], "respondents": 0, "error": "not-member"}

        limit = Query.from_json(params["query"]).limit

        def on_complete(responses: Dict[str, object]) -> None:
            matches = [
                {
                    "node": r["node"],
                    "attrs": r["attrs"],
                    "region": r.get("region", ""),
                }
                for r in responses.values()
                if r and r.get("match")
            ]
            if limit is not None:
                # Trim at the aggregating member: the server asked for at
                # most ``limit`` nodes, so don't ship more upstream.
                matches = matches[:limit]
            respond({"matches": matches, "respondents": len(responses)})

        membership.serf.query(
            GROUP_QUERY_EVENT,
            params["query"],
            on_complete,
            timeout=self.config.group_query_timeout,
        )
        return DEFERRED

    def _rpc_node_query(self, params, respond, message):
        query = Query.from_json(params["query"])
        attrs = self.attributes()
        return {
            "node": self.node_id,
            "match": query.matches(attrs),
            "attrs": attrs,
            "region": self.region,
        }

    def _rpc_be_representative(self, params, respond, message):
        group = str(params["group"])
        for membership in list(self.memberships.values()) + list(
            self.view_memberships.values()
        ):
            if membership.group == group:
                self._start_reporting(membership, float(params.get("interval", 5.0)))
                return {"ok": True}
        return {"ok": False, "error": "not-member"}

    def _rpc_stop_representative(self, params, respond, message):
        group = str(params["group"])
        for membership in self.memberships.values():
            if membership.group == group and membership.report_timer is not None:
                membership.report_timer.stop()
                membership.report_timer = None
        return {"ok": True}

    def _rpc_move_group(self, params, respond, message):
        """The DGM asks us to re-request a group (e.g. after a geo split)."""
        attribute = str(params["attribute"])
        value = self.dynamic.get(attribute)
        membership = self.memberships.get(attribute)
        if value is None or membership is None:
            return {"ok": False}
        if attribute not in self._moving:
            self._request_move(attribute, value, leaving=membership.group)
        return {"ok": True}

    # --------------------------------------------------------------- helpers
    def endpoint_addresses(self) -> List[str]:
        """All network addresses owned by this node (manager + serf agents)."""
        addresses = [self.address]
        addresses.extend(m.serf.address for m in self.memberships.values())
        addresses.extend(m.serf.address for m in self.view_memberships.values())
        return addresses

    def total_bandwidth_bytes(self) -> int:
        """Bytes sent+received across every endpoint of this node."""
        return sum(
            self.network.meter(a).total_bytes for a in self.endpoint_addresses()
        )
