"""Attribute schema: static vs dynamic attributes and group cutoffs.

Nodes have attributes that are *static* (values never change, e.g. CPU
architecture — kept in the FOCUS data store) or *dynamic* (values change over
time, e.g. free memory — managed via p2p groups). Each dynamic attribute has
a *cutoff*: the width of the value range covered by one attribute group
(§VII, §VIII-A2). E.g. with a disk cutoff of 10, group ``disk.10`` holds
nodes with 10–20 GB free.

The paper's evaluation schema (§X-A) is exposed as :func:`openstack_schema`:

    {CPU usage: 25%, vCPUs: 2, RAM_MB: 2048 MB, disk: 5 GB}
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.errors import GroupError


class AttributeKind(str, enum.Enum):
    """Whether an attribute's value can change over time (SS V-A)."""
    STATIC = "static"
    DYNAMIC = "dynamic"


#: §XII translation/normalization: maps a raw source value (possibly in a
#: foreign unit or encoding) to the schema's canonical numeric form.
Normalizer = Callable[[object], float]


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one queryable attribute.

    ``cutoff`` is required for dynamic attributes (group width) and must be
    absent for static ones. ``min_value``/``max_value`` bound the legal value
    range and drive workload generators. ``normalizer`` (§XII) translates
    heterogeneous source values into the canonical unit before they touch
    grouping or matching — e.g. a node agent reading free memory in bytes
    feeding a schema that groups by megabytes.
    """

    name: str
    kind: AttributeKind
    cutoff: Optional[float] = None
    min_value: float = 0.0
    max_value: float = float("inf")
    unit: str = ""
    normalizer: Optional[Normalizer] = None

    def __post_init__(self) -> None:
        if self.kind == AttributeKind.DYNAMIC:
            if self.cutoff is None or self.cutoff <= 0:
                raise GroupError(
                    f"dynamic attribute {self.name!r} needs a positive cutoff"
                )
        elif self.cutoff is not None:
            raise GroupError(f"static attribute {self.name!r} cannot have a cutoff")
        if self.min_value > self.max_value:
            raise GroupError(f"attribute {self.name!r} has min > max")

    @property
    def is_dynamic(self) -> bool:
        return self.kind == AttributeKind.DYNAMIC

    def clamp(self, value: float) -> float:
        return max(self.min_value, min(self.max_value, value))

    def normalize(self, value: object) -> float:
        """Translate a raw source value into the canonical unit."""
        if self.normalizer is not None:
            return float(self.normalizer(value))
        return float(value)  # type: ignore[arg-type]


class AttributeSchema:
    """The set of attributes a FOCUS deployment knows about."""

    def __init__(self, specs: Optional[Dict[str, AttributeSpec]] = None) -> None:
        self._specs: Dict[str, AttributeSpec] = dict(specs or {})

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def add(self, spec: AttributeSpec) -> None:
        if spec.name in self._specs:
            raise GroupError(f"attribute {spec.name!r} already declared")
        self._specs[spec.name] = spec

    def get(self, name: str) -> AttributeSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise GroupError(f"unknown attribute {name!r}") from None

    def maybe_get(self, name: str) -> Optional[AttributeSpec]:
        return self._specs.get(name)

    def dynamic(self) -> Dict[str, AttributeSpec]:
        return {n: s for n, s in self._specs.items() if s.is_dynamic}

    def static(self) -> Dict[str, AttributeSpec]:
        return {n: s for n, s in self._specs.items() if not s.is_dynamic}

    def cutoffs(self) -> Dict[str, float]:
        return {n: s.cutoff for n, s in self._specs.items() if s.cutoff is not None}

    def normalize_value(self, name: str, value: object) -> object:
        """Apply the attribute's normalizer, if any; pass through otherwise."""
        spec = self._specs.get(name)
        if spec is None or spec.normalizer is None:
            return value
        return spec.normalize(value)


def openstack_schema() -> AttributeSchema:
    """The paper's evaluation schema (§X-A) plus common static attributes.

    Value ranges mirror the paper's testbed hosts (EC2 VMs with 4 vCPUs and
    16 GB RAM, §X-A), which with the paper's cutoffs yields a few dozen group
    families — and therefore the ~150-member average group size the paper
    reports at scale (§X-C).
    """
    schema = AttributeSchema()
    schema.add(
        AttributeSpec("cpu_percent", AttributeKind.DYNAMIC, cutoff=25.0,
                      min_value=0.0, max_value=100.0, unit="%")
    )
    schema.add(
        AttributeSpec("vcpus", AttributeKind.DYNAMIC, cutoff=2.0,
                      min_value=0.0, max_value=8.0)
    )
    schema.add(
        AttributeSpec("ram_mb", AttributeKind.DYNAMIC, cutoff=2048.0,
                      min_value=0.0, max_value=16384.0, unit="MB")
    )
    schema.add(
        AttributeSpec("disk_gb", AttributeKind.DYNAMIC, cutoff=5.0,
                      min_value=0.0, max_value=100.0, unit="GB")
    )
    for name in ("arch", "cores", "region", "site", "service_type", "project_id"):
        schema.add(AttributeSpec(name, AttributeKind.STATIC))
    return schema
