"""Query response cache with freshness semantics (§VI).

Checking the cache is the first step in processing a query. Each cached
entry stores the response and the time it was fetched from the groups; a
query's ``freshness`` parameter (milliseconds) bounds how old a cached
response may be. Freshness zero means "as close to real time as possible" —
it always bypasses the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.core.query import Query


class CacheEntry:
    """One cached response and the time it was fetched from the groups."""
    __slots__ = ("matches", "fetched_at")

    def __init__(self, matches: List[dict], fetched_at: float) -> None:
        self.matches = matches
        self.fetched_at = fetched_at


class QueryCache:
    """LRU cache keyed by the query's canonical form."""

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, query: Query, now: float) -> Optional[List[dict]]:
        """A cached response satisfying the query's freshness, or ``None``."""
        entry = self.lookup_entry(query, now)
        return entry.matches if entry is not None else None

    def lookup_entry(self, query: Query, now: float) -> Optional[CacheEntry]:
        """Like :meth:`lookup` but returns the whole entry, so callers can
        surface the answer's age as an explicit staleness bound."""
        if query.freshness_ms <= 0:
            self.misses += 1
            return None
        entry = self._entries.get(query.cache_key())
        if entry is None:
            self.misses += 1
            return None
        age_ms = (now - entry.fetched_at) * 1000.0
        if age_ms > query.freshness_ms:
            self.misses += 1
            return None
        self._entries.move_to_end(query.cache_key())
        self.hits += 1
        return entry

    def lookup_stale(self, query: Query) -> Optional[CacheEntry]:
        """The cached entry for ``query`` regardless of freshness.

        Degraded-mode reads only (circuit-breaker fallback): when the owning
        shard is unreachable, a stale answer stamped with its true age beats
        a timeout. Does not count toward hits/misses and does not touch LRU
        order — the default lookup paths are unchanged.
        """
        return self._entries.get(query.cache_key())

    def store(
        self, query: Query, matches: List[dict], now: float,
        *, staleness_ms: float = 0.0,
    ) -> None:
        """Cache ``matches``; ``staleness_ms`` is how stale the result already
        was when it arrived (a replicated or re-cached answer), so the entry's
        effective fetch time is backdated and freshness bounds stay honest."""
        key = query.cache_key()
        self._entries[key] = CacheEntry(matches, now - staleness_ms / 1000.0)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
