"""FOCUS deployment configuration.

Bundles every operator-tunable knob called out by the paper: attribute
cutoffs (via the schema), the group size cap that triggers forks, the number
of representatives per group and their upload period, query timeouts, cache
size, geographic split threshold, and the gossip parameters passed down to
the node agents' Serf clients (fanout 4 / interval 100 ms, §VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.admission import OverloadConfig
from repro.core.attributes import AttributeSchema, openstack_schema
from repro.errors import ConfigError
from repro.gossip.agent import SerfConfig


def _default_serf_config() -> SerfConfig:
    return SerfConfig(gossip_fanout=4, gossip_interval=0.1)


@dataclass
class FocusConfig:
    """All FOCUS service and node-agent knobs in one place."""

    schema: AttributeSchema = field(default_factory=openstack_schema)
    #: Fork a group once its size estimate reaches this (§VII). The paper
    #: observes average group sizes of ~150 in the trace experiment.
    max_group_size: int = 150
    #: Representatives per group uploading member lists (§VII). The paper's
    #: evaluation averaged ~16 representatives in total (fn. 4), i.e. about
    #: one per occupied group.
    representatives_per_group: int = 1
    #: Representative upload period, seconds.
    report_interval: float = 5.0
    #: Server-side query abort timeout (§VIII-A3).
    query_timeout: float = 3.0
    #: Modelled per-query server processing time (request parsing, cache and
    #: table lookups, response encoding). Fig. 8c's ~45 ms cache-hit latency
    #: is dominated by this.
    server_processing_delay: float = 0.04
    #: Node-side serf query timeout (gossip convergence bound).
    group_query_timeout: float = 1.5
    #: Response cache capacity.
    cache_max_entries: int = 1024
    #: Enable/disable the response cache entirely (disabled in Fig. 7c).
    cache_enabled: bool = True
    #: Split a group family per-region once its members span more than this
    #: great-circle distance (km); None disables geo splits. The paper
    #: presents geo splits as an optional capability (§VII) and its own
    #: evaluation runs groups spanning all four regions, so the default is
    #: off; the ablation bench and tests exercise it.
    geo_split_km: Optional[float] = None
    #: How long a node may sit in the transition table before being swept.
    transition_ttl: float = 30.0
    #: Under heavy load, hand the group-query fan-out to the application
    #: instead of performing it server-side (§VI "Optimizations").
    delegation_enabled: bool = False
    #: Outstanding server-side queries above which delegation kicks in.
    delegation_threshold: int = 64
    #: Route multi-constraint queries to the attribute with the fewest
    #: candidate nodes (§VI). Disabling picks the most populous attribute
    #: instead — the ablation benchmark shows what the optimisation saves.
    smallest_group_routing: bool = True
    #: Gossip configuration for node agents' per-group Serf clients.
    serf: SerfConfig = field(default_factory=_default_serf_config)
    #: §XII: per-attribute gossip fanout overrides. Groups of a listed
    #: attribute run their Serf clients at the given fanout — "when set to a
    #: high value, of great use for time-sensitive applications" at the cost
    #: of member bandwidth (see the fanout ablation).
    fanout_overrides: Dict[str, int] = field(default_factory=dict)
    #: How often the node agent's collector refreshes attribute values.
    collection_interval: float = 1.0
    #: How often the DGM syncs its primary tables to the store.
    store_sync_interval: float = 10.0
    #: Number of serving-plane shards. 1 (the default) keeps the legacy
    #: single ``FocusService`` — byte-identical to the pre-sharding code
    #: path. Above 1, :func:`~repro.core.shardplane.build_shard_plane`
    #: partitions the attribute/group tables over a consistent-hash ring of
    #: group-family keys and fronts them with a scatter-gather
    #: :class:`~repro.core.shardplane.ShardRouter`.
    shards: int = 1
    #: Virtual nodes per shard on the family hash ring (balance smoothness).
    shard_virtual_nodes: int = 64
    #: Deploy one read replica per region, answering bounded-staleness
    #: queries from a region-local cache + materialized views (CQRS reads).
    replica_reads: bool = False
    #: How often the router re-materializes view results to region replicas.
    replica_refresh_interval: float = 5.0
    #: Model each server's query processing as a serial queue instead of
    #: infinite concurrency. Off by default so existing seeded runs keep
    #: their exact byte streams. On its own (``overload`` untouched) the
    #: service time is the fixed ``server_processing_delay`` — the knob the
    #: shard scale-out bench turns on to expose its saturation knee. It is
    #: also the master switch for the overload subsystem: the CPU
    #: service-time model and every admission-control defense in
    #: ``overload`` require it (enforced by :meth:`validate`).
    server_queue_enabled: bool = False
    #: CPU service-time model + overload defenses (throttling, admission
    #: queue, bulkheads, circuit breaker). Everything defaults off; see
    #: :class:`repro.core.admission.OverloadConfig`.
    overload: OverloadConfig = field(default_factory=OverloadConfig)

    def validate(self) -> None:
        """Fail fast on unknown/unused knob combinations.

        Called by :func:`repro.core.shardplane.build_shard_plane` before any
        process is built, so a config that silently does nothing (defenses
        configured but the master switch off) is an error, not a no-op.
        """
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.shard_virtual_nodes < 1:
            raise ConfigError(
                f"shard_virtual_nodes must be >= 1, got {self.shard_virtual_nodes}"
            )
        self.overload.validate()
        if self.overload.cpu_model_enabled and not self.server_queue_enabled:
            raise ConfigError(
                "overload.cpu_model_enabled requires server_queue_enabled=True "
                "— the serial service queue is the master switch the CPU model "
                "plugs into"
            )
        if self.overload.breaker_enabled and self.shards < 2:
            raise ConfigError(
                "overload.breaker_enabled requires shards >= 2 — the per-shard "
                "circuit breaker lives in the scatter-gather ShardRouter, which "
                "only exists for a sharded plane"
            )

    def cutoff_for(self, attribute: str) -> float:
        spec = self.schema.get(attribute)
        if spec.cutoff is None:
            raise ValueError(f"attribute {attribute!r} is static (no cutoff)")
        return spec.cutoff

    def fanout_for(self, attribute: str) -> int:
        """Gossip fanout for groups of ``attribute`` (override or default)."""
        return self.fanout_overrides.get(attribute, self.serf.gossip_fanout)
