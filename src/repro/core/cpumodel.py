"""Reusable server CPU service-time model (busy-until tracking).

§III of the paper measures RabbitMQ's CPU climbing with producer count until
latency explodes near 6k producers; ``repro.mq.broker`` reproduces that
collapse with an explicit M/D/c service-time model approximated by its
equivalent fast single server. This module extracts that model so the FOCUS
serving plane — the shards, the router's replicas, and the legacy single
server — can saturate the same way instead of processing every request for
free.

The model is a single logical server of capacity ``cores`` running at some
number of core-seconds per request, plus an optional standing
``per_connection_cpu`` core-seconds/second per open connection (heartbeats,
channel bookkeeping). A request arriving at time ``t`` starts service at
``max(t, busy_until)`` and occupies the server for ``service`` seconds;
below capacity the backlog stays near zero, past capacity it — and
therefore latency — grows without bound. That knee is the saturation
behaviour ``benchmarks/bench_overload.py`` measures and the admission layer
(:mod:`repro.core.admission`) defends.
"""

from __future__ import annotations

from typing import Optional

#: Never model fewer cores than this, no matter how much connection upkeep
#: eats capacity (matches the broker's historical floor).
MIN_EFFECTIVE_CORES = 0.1


class ServerCpuModel:
    """Busy-until CPU accounting for one logical server (or one bulkhead lane).

    The model is deliberately tiny and deterministic: a float pointer
    ``busy_until`` plus busy-time accumulators for utilization sampling.
    Callers either compute the service time themselves (the broker preserves
    its historical float-op order this way) and use :meth:`try_occupy` /
    :meth:`occupy`, or hand a core-seconds cost to :meth:`admit`.
    """

    __slots__ = (
        "cores",
        "per_request_cpu",
        "per_connection_cpu",
        "max_backlog_seconds",
        "busy_until",
        "busy_accum",
        "window_busy",
        "requests_served",
        "requests_shed",
    )

    def __init__(
        self,
        cores: float = 4.0,
        *,
        per_request_cpu: float = 0.002,
        per_connection_cpu: float = 0.0,
        max_backlog_seconds: Optional[float] = None,
    ) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self.cores = cores
        self.per_request_cpu = per_request_cpu
        self.per_connection_cpu = per_connection_cpu
        #: Requests whose queue wait would exceed this are shed instead of
        #: occupying the server; ``None`` queues without bound (the pure
        #: saturation knee).
        self.max_backlog_seconds = max_backlog_seconds
        self.busy_until = 0.0
        self.busy_accum = 0.0
        self.window_busy = 0.0
        self.requests_served = 0
        self.requests_shed = 0

    # ------------------------------------------------------------ service time
    def effective_cores(self, connections: int = 0) -> float:
        """Cores left for request work after connection upkeep."""
        upkeep = connections * self.per_connection_cpu
        return max(MIN_EFFECTIVE_CORES, self.cores - upkeep)

    def service_time(self, cost: Optional[float] = None, connections: int = 0) -> float:
        """Seconds of server occupancy for ``cost`` core-seconds of work."""
        if cost is None:
            cost = self.per_request_cpu
        return cost / self.effective_cores(connections)

    # --------------------------------------------------------------- occupancy
    def backlog_seconds(self, now: float) -> float:
        """Queueing delay a newly arrived request would see."""
        return max(0.0, self.busy_until - now)

    def occupy(self, now: float, service: float) -> float:
        """Occupy the server for ``service`` seconds; unbounded backlog.

        Returns the total delay (queue wait + service) until the request
        leaves the server. This is the serial-queue arithmetic the shard
        sweep's pinned digest was produced with — do not reorder the float
        operations.
        """
        start = max(now, self.busy_until)
        self.busy_until = start + service
        self.busy_accum += service
        self.window_busy += service
        self.requests_served += 1
        return self.busy_until - now

    def try_occupy(self, now: float, service: float) -> Optional[float]:
        """Like :meth:`occupy`, but shed when the backlog bound is exceeded.

        Returns the total delay, or ``None`` if the request was shed (the
        server is left untouched — a shed request costs nothing).
        """
        start = max(now, self.busy_until)
        wait = start - now
        if self.max_backlog_seconds is not None and wait > self.max_backlog_seconds:
            self.requests_shed += 1
            return None
        self.busy_until = start + service
        self.busy_accum += service
        self.window_busy += service
        self.requests_served += 1
        return self.busy_until - now

    def admit(
        self, now: float, cost: Optional[float] = None, connections: int = 0
    ) -> Optional[float]:
        """Convert ``cost`` core-seconds to service time and occupy."""
        return self.try_occupy(now, self.service_time(cost, connections))

    # ------------------------------------------------------------- utilization
    def take_window_busy(self) -> float:
        """Busy-time accumulated since the last call (for 1 Hz sampling)."""
        busy = self.window_busy
        self.window_busy = 0.0
        return busy

    def utilization(self, window: float, connections: int = 0) -> float:
        """Fraction of the machine busy over ``window``, counting upkeep.

        Consumes the busy window (see :meth:`take_window_busy`); mirrors the
        broker's historical sampling arithmetic: connection upkeep claims its
        share of the machine first, request work is scaled by the remainder.
        """
        connection_fraction = min(
            1.0, connections * self.per_connection_cpu / self.cores
        )
        message_fraction = min(1.0, self.take_window_busy() / window) * (
            1.0 - connection_fraction
        )
        return min(1.0, connection_fraction + message_fraction)

    def reset(self) -> None:
        """Crash-restart semantics: a rebooted server has an empty queue."""
        self.busy_until = 0.0
        self.window_busy = 0.0
