"""The Dynamic Groups Manager (§VIII-A2).

Responsibilities:

* **suggestions** — map a (node, attribute, value) to a group via the
  deterministic naming function, handing back entry points (or "start a new
  group" for the first node);
* **group tables** — the primary in-memory :class:`~repro.core.groups.GroupTable`,
  periodically synchronised to the store and rebuilt from representative
  reports after a failure;
* **transition table** — nodes between groups are tracked so the router can
  include them in queries (§VII);
* **representatives** — a small random subset of each group uploads the
  member list periodically; the DGM (re)appoints them as membership churns;
* **forks** — groups exceeding the size cap stop receiving new nodes;
* **geo splits** — families spanning too much geography switch to per-region
  instances and existing members are asked to move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.groups import GroupInfo, GroupMember, GroupTable
from repro.core.registrar import NodeRecord


@dataclass
class Transition:
    """A node that asked for a group but has not yet shown up in a report."""

    node_id: str
    attribute: str
    group: str
    since: float


class DynamicGroupsManager:
    """Group lifecycle component of the FOCUS service.

    The transition table is keyed by ``(node_id, attribute)``: a node moving
    between ram groups is only *missing* from ram-group coverage, so the
    router only needs to direct-query it for ram-routed queries — its other
    attribute groups still cover it (§VII).
    """

    def __init__(self, service) -> None:
        self.service = service
        self.groups = GroupTable()
        self.transitions: Dict[tuple, Transition] = {}

    # ------------------------------------------------------------ suggestions
    def suggest_for_registration(self, record: NodeRecord) -> List[Dict[str, object]]:
        """Group suggestions for every dynamic attribute of a new node.

        On a sharded plane, registrations are replicated to every shard and
        each shard only suggests for the group families it owns — the
        router merges the per-shard suggestion lists back into one reply.
        """
        return [
            self.suggest(record.node_id, record.region, attribute, value)
            for attribute, value in sorted(record.last_dynamic.items())
            if self.service.owns_family(attribute, value)
        ]

    def suggest(
        self,
        node_id: str,
        region: str,
        attribute: str,
        value: float,
    ) -> Dict[str, object]:
        """Suggest the group for one attribute value (registration or move)."""
        config = self.service.config
        cutoff = config.cutoff_for(attribute)
        family = self.groups.family_for_value(attribute, float(value), cutoff)
        group = family.open_instance_for(region, config.max_group_size, self.service.sim.now)
        self.groups.index(group)
        entry_points = group.entry_points()
        start_new = not entry_points
        # Entry points are captured before adding this node, so a node is
        # never told to bootstrap from itself.
        group.pending[node_id] = GroupMember(node_id, region, self.service.sim.now)
        self.transitions[(node_id, attribute)] = Transition(
            node_id, attribute, group.name, self.service.sim.now
        )
        representative = self._maybe_appoint_representative(group, node_id)
        if group.size_estimate() >= config.max_group_size:
            family.mark_forked(group)
        record = self.service.registrar.get(node_id)
        if record is not None:
            record.last_dynamic[attribute] = float(value)
        self.service.metrics.counter("suggestions").inc()
        return {
            "name": group.name,
            "attribute": attribute,
            "range": list(group.range),
            "entry_points": entry_points,
            "start_new": start_new,
            "representative": representative,
            "report_interval": config.report_interval,
            "fanout": config.fanout_for(attribute),
        }

    def _maybe_appoint_representative(self, group: GroupInfo, node_id: str) -> bool:
        config = self.service.config
        if len(group.representatives) < config.representatives_per_group:
            group.representatives.add(node_id)
            return True
        return False

    def node_left_group(self, node_id: str, group_name: str) -> None:
        """A node announced it is leaving ``group_name`` (attribute moved)."""
        group = self.groups.get(group_name)
        if group is None:
            return
        group.members.pop(node_id, None)
        group.pending.pop(node_id, None)
        group.representatives.discard(node_id)

    def forget_node(self, node_id: str) -> None:
        for group in self.groups.groups_of_node(node_id):
            self.node_left_group(node_id, group.name)
        for key in [k for k in self.transitions if k[0] == node_id]:
            del self.transitions[key]

    def transitioning_nodes(self, attribute: str) -> List[str]:
        """Nodes currently between groups of ``attribute``."""
        return [
            t.node_id
            for (node_id, attr), t in self.transitions.items()
            if attr == attribute
        ]

    # ---------------------------------------------------------------- reports
    def handle_report(self, params: Dict[str, object]) -> Dict[str, object]:
        """A representative uploaded its group member list."""
        group_name = str(params["group"])
        reporter = str(params["reporter"])
        members = list(params.get("members") or ())
        group = self.groups.get(group_name)
        if group is None:
            # DGM restarted and lost its tables: rebuild from the report
            # (§VIII-A2, failure recovery "comes naturally").
            group = self._rebuild_group(group_name)
            if group is None:
                return {"ok": False, "representative": False}
        # Reports carry bare node ids; regions come from the registration
        # records (saves most of the upload bandwidth).
        node_ids = [str(m) for m in members]
        regions = {}
        for node_id in node_ids:
            record = self.service.registrar.get(node_id)
            regions[node_id] = record.region if record is not None else ""
        group.record_report(node_ids, regions, self.service.sim.now)
        for node_id in node_ids:
            key = (node_id, group.attribute)
            transition = self.transitions.get(key)
            if transition is not None and transition.group == group_name:
                del self.transitions[key]
        still_representative = self._refresh_representatives(group, reporter)
        self._check_fork(group)
        self._check_geo_split(group)
        self.service.metrics.counter("group_reports").inc()
        return {"ok": True, "representative": still_representative}

    def _rebuild_group(self, group_name: str) -> Optional[GroupInfo]:
        from repro.core.naming import parse_group_name

        try:
            parsed = parse_group_name(group_name.split("#")[0])
            cutoff = self.service.config.cutoff_for(parsed.attribute)
        except Exception:
            return None
        family = self.groups.family(parsed.attribute, parsed.base, cutoff)
        group = GroupInfo(
            group_name,
            parsed.attribute,
            parsed.base,
            cutoff,
            region=parsed.region,
            created_at=self.service.sim.now,
        )
        family.instances[group_name] = group
        self.groups.index(group)
        return group

    def _refresh_representatives(self, group: GroupInfo, reporter: str) -> bool:
        """Maintain exactly ``representatives_per_group`` live reps.

        Dead reps (absent from the reported member list) are dropped, new
        ones are appointed from the membership, and excess reps are trimmed
        deterministically (so concurrent reporters converge instead of
        demoting each other forever). The return value tells the reporter
        whether to keep reporting.
        """
        config = self.service.config
        target = config.representatives_per_group
        live = {n for n in group.representatives if n in group.members}
        if reporter not in live and len(live) < target and reporter in group.members:
            live.add(reporter)
        if len(live) < target:
            candidates = [n for n in group.members if n not in live]
            rng = self.service.rng
            for node_id in rng.sample(candidates, min(target - len(live), len(candidates))):
                live.add(node_id)
                self._send_appointment(group, node_id)
        elif len(live) > target:
            for node_id in sorted(live, reverse=True)[: len(live) - target]:
                live.discard(node_id)
        group.representatives = live
        return reporter in live

    def _send_appointment(self, group: GroupInfo, node_id: str) -> None:
        self.service.call(
            node_id,
            "node.be-representative",
            {"group": group.name, "interval": self.service.config.report_interval},
            on_reply=lambda result: None,
            timeout=self.service.config.query_timeout,
        )

    def _check_fork(self, group: GroupInfo) -> None:
        if group.open and group.size_estimate() >= self.service.config.max_group_size:
            family = self.groups.family(group.attribute, group.base, group.cutoff)
            family.mark_forked(group)
            self.service.metrics.counter("group_forks").inc()

    def _check_geo_split(self, group: GroupInfo) -> None:
        threshold_km = self.service.config.geo_split_km
        if threshold_km is None or group.region is not None:
            return
        regions = group.regions_spanned()
        if len(regions) < 2:
            return
        topology = self.service.network.topology
        known = [r for r in regions if any(r == reg.name for reg in topology.regions)]
        if len(known) < 2 or topology.max_distance_km(known) <= threshold_km:
            return
        family = self.groups.family(group.attribute, group.base, group.cutoff)
        if not family.geo_split:
            family.enable_geo_split()
            self.service.metrics.counter("geo_splits").inc()
            self._migrate_after_geo_split(group)

    def _migrate_after_geo_split(self, group: GroupInfo) -> None:
        """Ask each member to re-request a (now region-qualified) group.

        Moves are staggered to avoid a reconfiguration storm.
        """
        rng = self.service.rng
        for node_id in group.all_node_ids():
            delay = rng.uniform(0.0, self.service.config.report_interval)

            def move(node_id=node_id) -> None:
                self.service.call(
                    node_id,
                    "node.move-group",
                    {"attribute": group.attribute, "from_group": group.name},
                    on_reply=lambda result: None,
                )

            self.service.after(delay, move)

    # ------------------------------------------------------------ maintenance
    def check_stale_groups(self) -> None:
        """Re-appoint reporting duty for groups that went silent.

        If every representative of a group crashed, nobody uploads its member
        list any more; after a few missed report intervals the DGM appoints a
        fresh random member. The next report then prunes the dead reps.
        """
        interval = self.service.config.report_interval
        stale_cutoff = self.service.sim.now - 3 * interval
        for group in self.groups.all_groups():
            if group.members and group.updated_at < stale_cutoff:
                rng = self.service.rng
                node_id = rng.choice(sorted(group.members))
                group.representatives.add(node_id)
                self._send_appointment(group, node_id)

    def sweep_transitions(self) -> None:
        """Expire transition entries older than the TTL."""
        ttl = self.service.config.transition_ttl
        cutoff = self.service.sim.now - ttl
        expired = [key for key, t in self.transitions.items() if t.since < cutoff]
        for key in expired:
            del self.transitions[key]

    def sync_to_store(self) -> None:
        """Persist the primary group table (async, off the query path)."""
        store = self.service.store_client
        if store is None:
            return
        for group in self.groups.all_groups():
            store.put(
                "groups",
                group.name,
                {
                    "attribute": group.attribute,
                    "range": list(group.range),
                    "members": sorted(group.members.keys()),
                    "representatives": sorted(group.representatives),
                },
            )
