"""Group metadata, fork-on-size, and geographic splits (§VII).

A *group family* is the set of group instances that share one
``(attribute, base)`` range — one instance normally, more after forks
(size cap) or a geo split (one instance per region). The
:class:`GroupTable` is the DGM's primary in-memory structure; it is
periodically synchronised to the store and can be rebuilt from
representative reports after a DGM failure (§VIII-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GroupError
from repro.core.naming import group_base, group_name


def serf_address(node_id: str, group: str) -> str:
    """Convention: the p2p agent a node runs for a group has this address.

    Being deterministic, entry points can be computed from node ids alone —
    no address exchange is needed when suggesting groups.
    """
    return f"{node_id}/serf/{group}"


@dataclass
class GroupMember:
    """One node's membership in a group, as known to the DGM."""

    node_id: str
    region: str
    joined_at: float


class GroupInfo:
    """One group instance."""

    def __init__(
        self,
        name: str,
        attribute: str,
        base: float,
        cutoff: float,
        *,
        region: Optional[str] = None,
        created_at: float = 0.0,
    ) -> None:
        self.name = name
        self.attribute = attribute
        self.base = base
        self.cutoff = cutoff
        self.region = region
        self.created_at = created_at
        self.updated_at = created_at
        #: Accepting new suggestions? Cleared when the group forks.
        self.open = True
        self.members: Dict[str, GroupMember] = {}
        #: Nodes suggested into this group but not yet seen in a report.
        self.pending: Dict[str, GroupMember] = {}
        self.representatives: Set[str] = set()

    @property
    def range(self) -> Tuple[float, float]:
        return self.base, self.base + self.cutoff

    def size_estimate(self) -> int:
        """Known members plus suggested-but-unreported nodes."""
        return len(self.members.keys() | self.pending.keys())

    def contains_value(self, value: float) -> bool:
        low, high = self.range
        return low <= value < high

    def all_node_ids(self) -> List[str]:
        # Sorted so downstream random *sampling* is reproducible: sets
        # iterate in hash order, which varies across interpreter runs.
        return sorted(self.members.keys() | self.pending.keys())

    def entry_points(self, limit: int = 3) -> List[str]:
        """Serf addresses a joining node can sync with."""
        node_ids = list(self.members.keys()) + list(self.pending.keys())
        return [serf_address(n, self.name) for n in node_ids[:limit]]

    def record_report(self, node_ids: List[str], regions: Dict[str, str], time: float) -> None:
        """Replace the member list from a representative upload."""
        self.members = {
            node_id: GroupMember(node_id, regions.get(node_id, ""), time)
            for node_id in node_ids
        }
        for node_id in node_ids:
            self.pending.pop(node_id, None)
        # Pending entries eventually expire via the DGM's transition sweep.
        self.updated_at = time
        self.representatives &= set(node_ids)

    def regions_spanned(self) -> Set[str]:
        regions = {m.region for m in self.members.values() if m.region}
        regions |= {m.region for m in self.pending.values() if m.region}
        return regions

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Group {self.name} size~{self.size_estimate()} open={self.open}>"


class GroupFamily:
    """All instances covering one (attribute, base) range."""

    def __init__(self, attribute: str, base: float, cutoff: float) -> None:
        self.attribute = attribute
        self.base = base
        self.cutoff = cutoff
        self.family_name = group_name(attribute, base, cutoff)
        #: When geo-split, new suggestions are region-qualified.
        self.geo_split = False
        self.instances: Dict[str, GroupInfo] = {}
        self._fork_counter = 0

    def all_instances(self) -> List[GroupInfo]:
        return list(self.instances.values())

    def open_instance_for(self, region: str, max_size: int, time: float) -> GroupInfo:
        """The instance a new node in ``region`` should join, forking if full."""
        candidates = [
            g
            for g in self.instances.values()
            if g.open
            and g.size_estimate() < max_size
            and (not self.geo_split or g.region == region)
        ]
        if candidates:
            # Fill the fullest non-full group first so forks stay rare.
            return max(candidates, key=GroupInfo.size_estimate)
        return self._new_instance(region if self.geo_split else None, time)

    def _new_instance(self, region: Optional[str], time: float) -> GroupInfo:
        name = self.family_name
        if region is not None:
            name = f"{name}@{region}"
        if any(g.name == name for g in self.instances.values()):
            self._fork_counter += 1
            name = f"{name}#{self._fork_counter}"
        group = GroupInfo(
            name,
            self.attribute,
            self.base,
            self.cutoff,
            region=region,
            created_at=time,
        )
        self.instances[group.name] = group
        return group

    def mark_forked(self, group: GroupInfo) -> None:
        """Stop suggesting ``group``; future nodes get a fresh instance."""
        group.open = False

    def enable_geo_split(self) -> None:
        """Switch the family to one-group-per-region for new suggestions."""
        self.geo_split = True


class GroupTable:
    """The DGM's view of every group family, keyed by (attribute, base)."""

    def __init__(self) -> None:
        self._families: Dict[Tuple[str, float], GroupFamily] = {}
        self._by_name: Dict[str, GroupInfo] = {}

    def __len__(self) -> int:
        return len(self._by_name)

    def family(self, attribute: str, base: float, cutoff: float) -> GroupFamily:
        key = (attribute, base)
        if key not in self._families:
            self._families[key] = GroupFamily(attribute, base, cutoff)
        return self._families[key]

    def family_for_value(self, attribute: str, value: float, cutoff: float) -> GroupFamily:
        return self.family(attribute, group_base(value, cutoff), cutoff)

    def get(self, name: str) -> Optional[GroupInfo]:
        return self._by_name.get(name)

    def require(self, name: str) -> GroupInfo:
        group = self._by_name.get(name)
        if group is None:
            raise GroupError(f"unknown group {name!r}")
        return group

    def index(self, group: GroupInfo) -> None:
        self._by_name[group.name] = group

    def all_groups(self) -> List[GroupInfo]:
        return list(self._by_name.values())

    def instances_covering(
        self,
        attribute: str,
        lower: Optional[float],
        upper: Optional[float],
    ) -> List[GroupInfo]:
        """Every existing instance whose range intersects ``[lower, upper]``.

        Intersecting existing instances (rather than enumerating names) keeps
        open-ended bounds cheap and naturally includes forked and geo-split
        instances.
        """
        matches = []
        for family in self._families.values():
            if family.attribute != attribute:
                continue
            low, high = family.base, family.base + family.cutoff
            # Intersect [low, high) with the query interval. A group also
            # matches an upper-bounded query if its range *starts* below the
            # bound (some members may qualify).
            if lower is not None and high <= lower:
                continue
            if upper is not None and low > upper:
                continue
            matches.extend(family.instances.values())
        return matches

    def groups_of_node(self, node_id: str) -> List[GroupInfo]:
        return [
            g
            for g in self._by_name.values()
            if node_id in g.members or node_id in g.pending
        ]
