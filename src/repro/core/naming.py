"""Deterministic group naming (§VIII-A2).

Group names are a pure function of ``(attribute, value, cutoff)`` plus an
optional region qualifier added when a group family has been geo-split
(§VII). With a disk cutoff of 10, a node with 13 GB free maps to group
``disk_gb.10``, which holds nodes with 10–20 GB free. The geo-split variant
is ``disk_gb.10@us-west-2``.

Because the function is deterministic, the Registrar, the DGM and the Query
Router all derive the same name independently — there is no name-allocation
coordination anywhere.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.errors import GroupError


def group_base(value: float, cutoff: float) -> float:
    """The lower edge of the cutoff-aligned range containing ``value``."""
    if cutoff <= 0:
        raise GroupError(f"cutoff must be positive, got {cutoff}")
    import math

    base = math.floor(value / cutoff) * cutoff
    # Normalise -0.0 and floating noise at range edges.
    if base == 0:
        base = 0.0
    return base


def _format_number(value: float) -> str:
    """Render 2048.0 as '2048' and 0.5 as '0.5' for stable names."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def group_name(
    attribute: str,
    value: float,
    cutoff: float,
    *,
    region: Optional[str] = None,
) -> str:
    """Deterministic name of the group containing ``value``."""
    if "." in attribute or "@" in attribute:
        raise GroupError(f"attribute name {attribute!r} may not contain '.' or '@'")
    base = group_base(value, cutoff)
    name = f"{attribute}.{_format_number(base)}"
    if region is not None:
        name = f"{name}@{region}"
    return name


class ParsedGroupName(NamedTuple):
    attribute: str
    base: float
    region: Optional[str]


def parse_group_name(name: str) -> ParsedGroupName:
    """Inverse of :func:`group_name` (without the cutoff, which is config)."""
    body, _, region = name.partition("@")
    attribute, separator, base_text = body.partition(".")
    if not separator or not attribute:
        raise GroupError(f"malformed group name {name!r}")
    try:
        base = float(base_text)
    except ValueError:
        raise GroupError(f"malformed group base in {name!r}") from None
    return ParsedGroupName(attribute, base, region or None)


def group_range(base: float, cutoff: float) -> Tuple[float, float]:
    """The half-open value range ``[base, base + cutoff)`` of a group."""
    return base, base + cutoff


def groups_covering(
    attribute: str,
    lower: Optional[float],
    upper: Optional[float],
    cutoff: float,
    *,
    value_min: float = 0.0,
    value_max: float = float("inf"),
    max_groups: int = 1024,
) -> List[str]:
    """Names of every group whose range intersects ``[lower, upper]``.

    Open bounds are clamped to the attribute's declared value range; an
    unbounded attribute with an open upper bound enumerates up to
    ``max_groups`` groups above the lower bound (the router intersects this
    with groups that actually exist, so over-enumeration is harmless).
    """
    effective_lower = value_min if lower is None else max(lower, value_min)
    effective_upper = value_max if upper is None else min(upper, value_max)
    if effective_upper < effective_lower:
        return []
    start = group_base(effective_lower, cutoff)
    names = []
    base = start
    while base <= effective_upper:
        names.append(group_name(attribute, base, cutoff))
        base += cutoff
        if len(names) >= max_groups:
            break
    return names
