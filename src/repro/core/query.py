"""The FOCUS query structure (§V-A).

A query is a list of queryable attribute terms. Each term has a name, an
upper bound and a lower bound (equal bounds express exact match; ``None``
leaves a side unbounded, supporting lesser/greater-than). The query carries a
``limit`` (maximum responses) and a ``freshness`` in milliseconds — zero
demands results as close to real time as possible (bypassing the cache).

Static attributes may also match by equality on strings (e.g.
``arch == "x86"``); numeric bounds and string equality are both supported.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Union

from repro.errors import QueryError

Value = Union[float, int, str]


class QueryTerm:
    """One attribute constraint.

    For numeric attributes use ``lower``/``upper`` (inclusive). For string
    attributes use ``equals``.
    """

    __slots__ = ("name", "lower", "upper", "equals")

    def __init__(
        self,
        name: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        equals: Optional[str] = None,
    ) -> None:
        if not name:
            raise QueryError("term needs an attribute name")
        if equals is not None and (lower is not None or upper is not None):
            raise QueryError(f"term {name!r}: equals excludes numeric bounds")
        if equals is None and lower is None and upper is None:
            raise QueryError(f"term {name!r}: needs at least one bound")
        if lower is not None and upper is not None and lower > upper:
            raise QueryError(f"term {name!r}: lower {lower} > upper {upper}")
        self.name = name
        self.lower = lower
        self.upper = upper
        self.equals = equals

    @classmethod
    def exact(cls, name: str, value: Value) -> "QueryTerm":
        """Exact match: both bounds equal (numeric) or string equality."""
        if isinstance(value, str):
            return cls(name, equals=value)
        return cls(name, lower=float(value), upper=float(value))

    @classmethod
    def at_least(cls, name: str, value: float) -> "QueryTerm":
        return cls(name, lower=float(value))

    @classmethod
    def at_most(cls, name: str, value: float) -> "QueryTerm":
        return cls(name, upper=float(value))

    def matches(self, value: object) -> bool:
        """Whether a node's attribute value satisfies this term."""
        if value is None:
            return False
        if self.equals is not None:
            return value == self.equals
        try:
            number = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        if self.lower is not None and number < self.lower:
            return False
        if self.upper is not None and number > self.upper:
            return False
        return True

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {"name": self.name}
        if self.lower is not None:
            data["lower"] = self.lower
        if self.upper is not None:
            data["upper"] = self.upper
        if self.equals is not None:
            data["equals"] = self.equals
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "QueryTerm":
        return cls(
            str(data["name"]),
            lower=data.get("lower"),  # type: ignore[arg-type]
            upper=data.get("upper"),  # type: ignore[arg-type]
            equals=data.get("equals"),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.equals is not None:
            return f"<{self.name} == {self.equals!r}>"
        return f"<{self.lower} <= {self.name} <= {self.upper}>"


class Query:
    """A multi-term query with ``limit`` and ``freshness`` (ms)."""

    __slots__ = ("terms", "limit", "freshness_ms")

    def __init__(
        self,
        terms: Iterable[QueryTerm],
        *,
        limit: Optional[int] = None,
        freshness_ms: float = 0.0,
    ) -> None:
        self.terms = list(terms)
        if not self.terms:
            raise QueryError("query needs at least one term")
        names = [t.name for t in self.terms]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate attribute terms in query: {names}")
        if limit is not None and limit <= 0:
            raise QueryError(f"limit must be positive, got {limit}")
        if freshness_ms < 0:
            raise QueryError(f"freshness must be >= 0 ms, got {freshness_ms}")
        self.limit = limit
        self.freshness_ms = freshness_ms

    @classmethod
    def from_bounds(
        cls,
        bounds: Dict[str, object],
        *,
        limit: Optional[int] = None,
        freshness_ms: float = 0.0,
    ) -> "Query":
        """Convenience constructor.

        ``bounds`` maps attribute name to either ``(lower, upper)`` (use
        ``None`` for an open side), a single number (exact match), or a
        string (equality).
        """
        terms = []
        for name, bound in bounds.items():
            if isinstance(bound, tuple):
                lower, upper = bound
                terms.append(QueryTerm(name, lower=lower, upper=upper))
            else:
                terms.append(QueryTerm.exact(name, bound))  # type: ignore[arg-type]
        return cls(terms, limit=limit, freshness_ms=freshness_ms)

    def term(self, name: str) -> Optional[QueryTerm]:
        for term in self.terms:
            if term.name == name:
                return term
        return None

    def matches(self, attributes: Dict[str, object]) -> bool:
        """Whether a node's full attribute dict satisfies every term."""
        return all(term.matches(attributes.get(term.name)) for term in self.terms)

    def to_json(self) -> Dict[str, object]:
        return {
            "terms": [t.to_json() for t in self.terms],
            "limit": self.limit,
            "freshness_ms": self.freshness_ms,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Query":
        return cls(
            [QueryTerm.from_json(t) for t in data["terms"]],  # type: ignore[union-attr]
            limit=data.get("limit"),  # type: ignore[arg-type]
            freshness_ms=float(data.get("freshness_ms", 0.0)),  # type: ignore[arg-type]
        )

    def cache_key(self) -> str:
        """Canonical key ignoring freshness (freshness is checked at lookup)."""
        terms = sorted(
            (t.name, t.lower, t.upper, t.equals) for t in self.terms
        )
        return json.dumps({"terms": terms, "limit": self.limit}, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Query {self.terms} limit={self.limit} fresh={self.freshness_ms}ms>"
