"""The Registrar (§VIII-A1).

Listens for node registration requests carrying the node's id, region and
attribute-value pairs. Static attributes land in per-attribute store tables
(node ID | value | other attributes | timestamp); dynamic attributes are
handed to the DGM, which suggests p2p groups for the node to join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import RegistrationError


@dataclass
class NodeRecord:
    """The service's registration record for one node."""

    node_id: str
    region: str
    static: Dict[str, object]
    registered_at: float
    #: Dynamic values as of the last registration/suggestion (coarse view).
    last_dynamic: Dict[str, float] = field(default_factory=dict)


def static_table_name(attribute: str) -> str:
    """Store table holding one static attribute's rows (SS VIII-A1)."""
    return f"static::{attribute}"


class Registrar:
    """Registration component; owns the node registry and static tables."""

    def __init__(self, service) -> None:
        self.service = service
        self.nodes: Dict[str, NodeRecord] = {}
        #: Rows per static-attribute table; lets the router pick the
        #: smallest table for multi-attribute static queries (§VIII-A1).
        self.static_counts: Dict[str, int] = {}

    def register(self, params: Dict[str, object]) -> Dict[str, object]:
        """Process a registration request; returns group suggestions.

        Raises :class:`RegistrationError` for malformed requests. Re-registration
        of a known node id replaces its record (a node restart).
        """
        node_id = params.get("node_id")
        region = params.get("region")
        if not node_id or not isinstance(node_id, str):
            raise RegistrationError("registration needs a node_id")
        if not region or not isinstance(region, str):
            raise RegistrationError(f"node {node_id!r}: registration needs a region")
        static = dict(params.get("static") or {})
        dynamic = dict(params.get("dynamic") or {})
        schema = self.service.config.schema
        for name in dynamic:
            spec = schema.maybe_get(name)
            if spec is None or not spec.is_dynamic:
                raise RegistrationError(
                    f"node {node_id!r}: unknown dynamic attribute {name!r}"
                )

        record = NodeRecord(
            node_id=node_id,
            region=region,
            static=static,
            registered_at=self.service.sim.now,
            last_dynamic={k: float(v) for k, v in dynamic.items()},
        )
        previous = self.nodes.get(node_id)
        if previous is not None:
            for name in previous.static:
                self.static_counts[name] = self.static_counts.get(name, 1) - 1
        self.nodes[node_id] = record
        for name in static:
            self.static_counts[name] = self.static_counts.get(name, 0) + 1
        self._write_static_tables(record)
        suggestions = self.service.dgm.suggest_for_registration(record)
        self.service.metrics.counter("registrations").inc()
        return {"groups": suggestions}

    def deregister(self, node_id: str) -> None:
        record = self.nodes.pop(node_id, None)
        if record is not None:
            for name in record.static:
                self.static_counts[name] = self.static_counts.get(name, 1) - 1
        self.service.dgm.forget_node(node_id)
        self.service.views.forget_node(node_id)

    def get(self, node_id: str) -> Optional[NodeRecord]:
        return self.nodes.get(node_id)

    def restore_record(self, node_id: str, row_value: Dict[str, object]) -> None:
        """Rebuild one registration record from a persisted ``nodes`` row."""
        static = dict(row_value.get("static") or {})
        record = NodeRecord(
            node_id=node_id,
            region=str(row_value.get("region", "")),
            static=static,
            registered_at=float(row_value.get("registered_at", 0.0)),  # type: ignore[arg-type]
        )
        previous = self.nodes.get(node_id)
        if previous is not None:
            for name in previous.static:
                self.static_counts[name] = self.static_counts.get(name, 1) - 1
        self.nodes[node_id] = record
        for name in static:
            self.static_counts[name] = self.static_counts.get(name, 0) + 1

    # --------------------------------------------------------------- storage
    def _write_static_tables(self, record: NodeRecord) -> None:
        """Asynchronously persist static attributes, one table per attribute.

        Each row also carries all the node's other static attributes so a
        multi-attribute static query only touches one table (§VIII-A1).
        """
        store = self.service.store_client
        if store is None or not self.service.persist_statics:
            return
        for name, value in record.static.items():
            store.put(
                static_table_name(name),
                record.node_id,
                {
                    "value": value,
                    "attributes": record.static,
                    "region": record.region,
                },
            )
        store.put(
            "nodes",
            record.node_id,
            {
                "region": record.region,
                "registered_at": record.registered_at,
                # Full static attributes ride along so a restarted service
                # can rebuild the registry from this one table.
                "static": record.static,
            },
        )
