"""Application-side client — the REST API equivalent (§V).

:class:`FocusClient` is bound to any RPC-capable host process and issues
northbound queries. It transparently handles *delegated* responses (§VI):
when the server is overloaded it returns group candidate lists instead of
results, and the client performs the directed pull itself (those responses
never traverse — and are never cached by — the server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.query import Query
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


@dataclass
class QueryResponse:
    """Outcome of one FOCUS query as seen by the application."""

    matches: List[dict]
    source: str
    elapsed: float
    timed_out: bool = False
    groups_queried: int = 0
    #: Upper bound on the answer's age (0 for a live directed pull; cached
    #: and replica answers report how stale their snapshot may be).
    staleness_ms: float = 0.0
    error: Optional[str] = None

    @property
    def node_ids(self) -> List[str]:
        return [str(m["node"]) for m in self.matches]


class FocusClient:
    """Query client for one application process."""

    def __init__(self, host, focus_address: str = "focus", *, group_query_timeout: float = 2.0) -> None:
        self.host = host
        self.focus_address = focus_address
        self.group_query_timeout = group_query_timeout

    def query(
        self,
        query: Query,
        on_response: Callable[[QueryResponse], None],
        *,
        timeout: float = 10.0,
    ) -> None:
        started = self.host.sim.now

        def on_reply(result: dict) -> None:
            delegated = result.get("delegated")
            if delegated:
                self._pull_delegated(query, delegated, started, on_response)
                return
            on_response(
                QueryResponse(
                    matches=list(result.get("matches", ())),
                    source=str(result.get("source", "unknown")),
                    elapsed=self.host.sim.now - started,
                    timed_out=bool(result.get("timed_out", False)),
                    groups_queried=int(result.get("groups_queried", 0)),
                    staleness_ms=float(result.get("staleness_ms", 0.0)),
                    error=result.get("error"),
                )
            )

        def on_timeout() -> None:
            on_response(
                QueryResponse(
                    matches=[],
                    source="timeout",
                    elapsed=self.host.sim.now - started,
                    timed_out=True,
                )
            )

        self.host.call(
            self.focus_address,
            "focus.query",
            {"query": query.to_json()},
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=timeout,
        )

    # -------------------------------------------------------- materialized views
    def create_view(
        self,
        query: Query,
        on_done: Optional[Callable[[dict], None]] = None,
        *,
        view_id: Optional[str] = None,
    ) -> None:
        """Register a standing query as a materialized view (§XII)."""
        self.host.call(
            self.focus_address,
            "focus.create-view",
            {"query": query.to_json(), "view_id": view_id},
            on_reply=on_done if on_done is not None else lambda result: None,
        )

    def drop_view(self, view_id: str,
                  on_done: Optional[Callable[[dict], None]] = None) -> None:
        self.host.call(
            self.focus_address,
            "focus.drop-view",
            {"view_id": view_id},
            on_reply=on_done if on_done is not None else lambda result: None,
        )

    # ------------------------------------------------------------- delegation
    def _pull_delegated(
        self,
        query: Query,
        delegated: dict,
        started: float,
        on_response: Callable[[QueryResponse], None],
    ) -> None:
        """Client-side directed pull using server-provided candidates."""
        groups = list(delegated.get("groups", ()))
        transitions = list(delegated.get("transitions", ()))
        state = {
            "pending": 0,
            "matches": {},
            "done": False,
            "groups_queried": 0,
        }
        rng = self.host.sim.derive_rng(f"client/{self.host.address}/delegated")

        def finish(timed_out: bool) -> None:
            if state["done"]:
                return
            state["done"] = True
            matches = list(state["matches"].values())
            if query.limit is not None:
                matches = matches[: query.limit]
            on_response(
                QueryResponse(
                    matches=matches,
                    source="delegated",
                    elapsed=self.host.sim.now - started,
                    timed_out=timed_out,
                    groups_queried=state["groups_queried"],
                )
            )

        def advance() -> None:
            if state["done"]:
                return
            if query.limit is not None and len(state["matches"]) >= query.limit:
                finish(False)
            elif state["pending"] == 0:
                finish(False)

        def on_group_reply(result) -> None:
            state["pending"] -= 1
            for record in (result or {}).get("matches", ()):
                state["matches"][str(record["node"])] = record
            advance()

        def on_node_reply(result) -> None:
            state["pending"] -= 1
            if result and result.get("match"):
                state["matches"][str(result["node"])] = {
                    "node": result["node"],
                    "attrs": result.get("attrs", {}),
                    "region": result.get("region", ""),
                }
            advance()

        def on_timeout() -> None:
            state["pending"] -= 1
            advance()

        for group in groups:
            candidates = list(group.get("candidates", ()))
            if not candidates:
                continue
            member = rng.choice(candidates)
            state["pending"] += 1
            state["groups_queried"] += 1
            self.host.call(
                member,
                "node.group-query",
                {"group": group["name"], "query": query.to_json()},
                on_reply=on_group_reply,
                on_timeout=on_timeout,
                timeout=self.group_query_timeout,
            )
        for node_id in transitions:
            state["pending"] += 1
            self.host.call(
                node_id,
                "node.query",
                {"query": query.to_json()},
                on_reply=on_node_reply,
                on_timeout=on_timeout,
                timeout=self.group_query_timeout,
            )
        if state["pending"] == 0:
            finish(False)


class Application(Process, RpcMixin):
    """A minimal application process hosting a :class:`FocusClient`.

    Examples and benchmarks instantiate one of these per querying service
    (e.g. the OpenStack scheduler, the ONAP homing service).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        focus_address: str = "focus",
    ) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.client = FocusClient(self, focus_address)
        self.responses: List[QueryResponse] = []

    def query(
        self,
        query: Query,
        on_response: Optional[Callable[[QueryResponse], None]] = None,
    ) -> None:
        """Issue a query; responses are also collected in ``self.responses``."""

        def record(response: QueryResponse) -> None:
            self.responses.append(response)
            if on_response is not None:
                on_response(response)

        self.client.query(query, record)
