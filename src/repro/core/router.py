"""The Query Router (§VIII-A3) — directed pulling (§VI).

Processing order for a query:

1. **cache** — first step; a hit answers immediately if it satisfies the
   query's freshness bound.
2. **static path** — queries touching only static attributes are answered
   from the store (one table lookup: the smallest static-attribute table).
3. **directed pull** — otherwise the router picks the dynamic term whose
   candidate groups contain the fewest nodes (the "smallest group"
   optimisation for multi-constraint queries), sends the query to one random
   member per candidate group (load-balanced routing), includes nodes from
   the transition table for inclusiveness, aggregates, and answers.
4. **delegation** — under heavy load the router returns the group candidate
   lists instead of fanning out itself, and the application pulls directly;
   delegated responses are not cached (§VI).

A configured timeout bounds the whole operation (§VIII-A3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.groups import GroupInfo
from repro.core.query import Query
from repro.core.registrar import static_table_name
from repro.errors import QueryError
from repro.sim.rpc import DEFERRED


class ActiveQuery:
    """State of one in-flight dynamic query."""

    def __init__(self, query: Query, respond, started_at: float) -> None:
        self.query = query
        self.respond = respond
        self.started_at = started_at
        self.matches: Dict[str, dict] = {}
        self.source = "groups"
        self.pending_groups: Set[str] = set()
        self.remaining_plan: List[GroupInfo] = []
        self.pending_transitions = 0
        self.groups_queried = 0
        self.finished = False
        self.retried: Set[str] = set()

    @property
    def limit_reached(self) -> bool:
        return self.query.limit is not None and len(self.matches) >= self.query.limit

    def trimmed_matches(self) -> List[dict]:
        matches = list(self.matches.values())
        if self.query.limit is not None:
            matches = matches[: self.query.limit]
        return matches


class QueryRouter:
    """Query-processing component of the FOCUS service."""

    def __init__(self, service) -> None:
        self.service = service
        self.outstanding = 0

    # ----------------------------------------------------------------- entry
    def handle(self, params: Dict[str, object], respond) -> object:
        query = Query.from_json(params["query"])  # type: ignore[arg-type]
        service = self.service
        service.metrics.counter("queries").inc()
        service.resources.charge_query()

        if service.config.cache_enabled:
            entry = service.cache.lookup_entry(query, service.sim.now)
            if entry is not None:
                matches = entry.matches
                if query.limit is not None:
                    matches = matches[: query.limit]
                age_ms = (service.sim.now - entry.fetched_at) * 1000.0
                self._finish_with(respond, matches, "cache", staleness_ms=age_ms)
                return DEFERRED

        view = service.views.match_query(query)
        if view is not None and self._view_usable(view):
            self._view_pull(query, view, respond)
            return DEFERRED

        static_terms, dynamic_terms = self._split_terms(query)
        if not dynamic_terms:
            self._static_query(query, static_terms, respond)
            return DEFERRED

        # A shard-plane sub-query pins the attribute the front router chose,
        # so every shard of the scatter set pulls the same term's groups and
        # the merged answer has exactly one over-approximated range.
        routed = params.get("routed_attribute")
        if routed is not None:
            pinned = [t for t in dynamic_terms if t.name == routed]
            if pinned:
                dynamic_terms = pinned

        attribute, plan = self._plan_groups(query, dynamic_terms)
        if (
            service.config.delegation_enabled
            and self.outstanding >= service.config.delegation_threshold
        ):
            self._delegate(query, attribute, plan, respond)
            return DEFERRED

        self._directed_pull(query, attribute, plan, respond)
        return DEFERRED

    # ----------------------------------------------------- materialized views
    def _view_usable(self, view) -> bool:
        """A view answers queries once populated (or once it has had time to
        populate and is genuinely empty)."""
        settle = self.service.config.report_interval
        return (
            view.group.size_estimate() > 0
            or view.created_at + settle <= self.service.sim.now
        )

    def _view_pull(self, query: Query, view, respond) -> None:
        """Answer from the view's dedicated group: maximally directed —
        every member matches the standing query by construction."""
        self.service.metrics.counter("view_queries").inc()
        state = ActiveQuery(query, respond, self.service.sim.now)
        state.source = "view"
        self.outstanding += 1
        if view.group.size_estimate() == 0:
            self._finish(state, timed_out=False)
            return
        self._query_group(state, view.group)
        self.service.after(self.service.config.query_timeout, self._timeout, state)

    def _split_terms(self, query: Query):
        schema = self.service.config.schema
        static_terms, dynamic_terms = [], []
        for term in query.terms:
            spec = schema.maybe_get(term.name)
            if spec is not None and spec.is_dynamic:
                dynamic_terms.append(term)
            else:
                static_terms.append(term)
        return static_terms, dynamic_terms

    # ------------------------------------------------------------ static path
    def _static_query(self, query: Query, static_terms, respond) -> None:
        registrar = self.service.registrar
        store = self.service.store_client
        smallest = min(
            static_terms, key=lambda t: registrar_table_size(registrar, t.name)
        )

        def finish(rows) -> None:
            matches = []
            for row in rows:
                attrs = dict(row.value.get("attributes") or {})
                if query.matches(attrs):
                    matches.append(
                        {
                            "node": row.key,
                            "attrs": attrs,
                            "region": row.value.get("region", ""),
                        }
                    )
                    if query.limit is not None and len(matches) >= query.limit:
                        break
            self._maybe_cache(query, matches)
            self._finish_with(respond, matches, "static")

        if store is None:
            # No store deployed: answer from the in-memory registry.
            rows = [
                _MemoryRow(r.node_id, {"attributes": r.static, "region": r.region})
                for r in registrar.nodes.values()
            ]
            finish(rows)
            return
        store.scan(
            static_table_name(smallest.name),
            finish,
            on_error=lambda exc: self._finish_with(respond, [], "static", error=str(exc)),
        )

    # --------------------------------------------------------- directed pull
    def _plan_groups(self, query: Query, dynamic_terms):
        """Candidate groups for the term with the fewest total nodes."""
        groups_table = self.service.dgm.groups
        best_attribute: Optional[str] = None
        best: Optional[List[GroupInfo]] = None
        best_total = None
        for term in dynamic_terms:
            if term.equals is not None:
                raise QueryError(
                    f"dynamic attribute {term.name!r} requires numeric bounds"
                )
            candidates = groups_table.instances_covering(
                term.name, term.lower, term.upper
            )
            total = sum(g.size_estimate() for g in candidates)
            prefer_smallest = self.service.config.smallest_group_routing
            better = (
                best_total is None
                or (total < best_total if prefer_smallest else total > best_total)
            )
            if better:
                best_attribute, best, best_total = term.name, candidates, total
        assert best is not None and best_attribute is not None
        # Smallest groups first: cheapest way to satisfy a limit.
        return best_attribute, sorted(best, key=GroupInfo.size_estimate)

    def _directed_pull(
        self, query: Query, attribute: str, plan: List[GroupInfo], respond
    ) -> None:
        service = self.service
        state = ActiveQuery(query, respond, service.sim.now)
        self.outstanding += 1

        # Only nodes transitioning between groups of the routed attribute can
        # be missed by the group fan-out; everyone else is covered.
        transitions = service.dgm.transitioning_nodes(attribute)
        state.pending_transitions = len(transitions)
        for node_id in transitions:
            self._query_transitioning(state, node_id)

        if query.limit is None:
            first_wave, state.remaining_plan = plan, []
        else:
            first_wave, state.remaining_plan = self._take_wave(plan, query.limit)
        if not first_wave and state.pending_transitions == 0:
            self._finish(state, timed_out=False)
            return
        for group in first_wave:
            self._query_group(state, group)
        # Empty group instances produce no RPCs; if the whole wave was empty
        # advance now (launching the next wave or finishing) instead of
        # hanging until the timeout. Replies cannot have arrived yet —
        # delivery is asynchronous — so this cannot double-finish.
        if not state.pending_groups:
            self._advance(state)
        if not state.finished:
            service.after(service.config.query_timeout, self._timeout, state)

    @staticmethod
    def _take_wave(plan: List[GroupInfo], limit: int):
        """Prefix of groups whose estimated population covers 2x the limit."""
        wave: List[GroupInfo] = []
        covered = 0
        index = 0
        while index < len(plan) and covered < 2 * limit:
            wave.append(plan[index])
            covered += plan[index].size_estimate()
            index += 1
        return wave, plan[index:]

    def _query_group(self, state: ActiveQuery, group: GroupInfo) -> None:
        service = self.service
        candidates = group.all_node_ids()
        if not candidates:
            return
        # Load-balanced routing: a different random member each time (§VII).
        member = service.rng.choice(candidates)
        state.pending_groups.add(group.name)
        state.groups_queried += 1
        service.metrics.counter("group_queries").inc()
        service.resources.charge_fanout()

        def on_reply(result, group=group) -> None:
            self._group_answered(state, group, result)

        def on_timeout(group=group, member=member) -> None:
            self._group_timed_out(state, group, member)

        service.call(
            member,
            "node.group-query",
            {"group": group.name, "query": state.query.to_json()},
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=service.config.query_timeout,
        )

    def _group_answered(self, state: ActiveQuery, group: GroupInfo, result) -> None:
        state.pending_groups.discard(group.name)
        if state.finished:
            return
        for record in (result or {}).get("matches", ()):
            state.matches[str(record["node"])] = record
        self._advance(state)

    def _group_timed_out(self, state: ActiveQuery, group: GroupInfo, member: str) -> None:
        """Retry once via a different member (resilience to node failure)."""
        state.pending_groups.discard(group.name)
        if state.finished:
            return
        others = [n for n in group.all_node_ids() if n != member]
        if others and group.name not in state.retried:
            state.retried.add(group.name)
            substitute = self.service.rng.choice(others)
            state.pending_groups.add(group.name)

            def on_reply(result, group=group) -> None:
                self._group_answered(state, group, result)

            self.service.call(
                substitute,
                "node.group-query",
                {"group": group.name, "query": state.query.to_json()},
                on_reply=on_reply,
                on_timeout=lambda: (
                    state.pending_groups.discard(group.name),
                    self._advance(state),
                ),
                timeout=self.service.config.query_timeout,
            )
            return
        self._advance(state)

    def _query_transitioning(self, state: ActiveQuery, node_id: str) -> None:
        """Directly query a node that is between groups (§VII)."""
        self.service.resources.charge_fanout()

        def on_reply(result) -> None:
            state.pending_transitions -= 1
            if state.finished:
                return
            if result and result.get("match"):
                state.matches[str(result["node"])] = {
                    "node": result["node"],
                    "attrs": result.get("attrs", {}),
                    "region": result.get("region", ""),
                }
            self._advance(state)

        def on_timeout() -> None:
            state.pending_transitions -= 1
            self._advance(state)

        self.service.call(
            node_id,
            "node.query",
            {"query": state.query.to_json()},
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=self.service.config.query_timeout,
        )

    def _advance(self, state: ActiveQuery) -> None:
        if state.finished:
            return
        if state.limit_reached:
            self._finish(state, timed_out=False)
            return
        if not state.pending_groups and state.remaining_plan:
            assert state.query.limit is not None
            shortfall = state.query.limit - len(state.matches)
            wave, state.remaining_plan = self._take_wave(
                state.remaining_plan, max(shortfall, 1)
            )
            for group in wave:
                self._query_group(state, group)
            return
        if not state.pending_groups and state.pending_transitions <= 0:
            self._finish(state, timed_out=False)

    def _timeout(self, state: ActiveQuery) -> None:
        if not state.finished:
            self.service.metrics.counter("query_timeouts").inc()
            self._finish(state, timed_out=True)

    def _finish(self, state: ActiveQuery, *, timed_out: bool) -> None:
        state.finished = True
        self.outstanding -= 1
        matches = state.trimmed_matches()
        if not timed_out:
            self._maybe_cache(state.query, list(state.matches.values()))
        self._finish_with(
            state.respond,
            matches,
            state.source,
            timed_out=timed_out,
            groups_queried=state.groups_queried,
        )

    # ------------------------------------------------------------- delegation
    def _delegate(
        self, query: Query, attribute: str, plan: List[GroupInfo], respond
    ) -> None:
        self.service.metrics.counter("delegated_queries").inc()
        payload = {
            "matches": [],
            "source": "delegated",
            "delegated": {
                "groups": [
                    {"name": g.name, "candidates": g.all_node_ids()} for g in plan
                ],
                "transitions": self.service.dgm.transitioning_nodes(attribute),
            },
        }
        self._respond_after_processing(respond, payload)

    # -------------------------------------------------------------- responses
    def _maybe_cache(self, query: Query, matches: List[dict]) -> None:
        if self.service.config.cache_enabled:
            self.service.cache.store(query, matches, self.service.sim.now)

    def _finish_with(
        self,
        respond,
        matches: List[dict],
        source: str,
        *,
        timed_out: bool = False,
        groups_queried: int = 0,
        error: Optional[str] = None,
        staleness_ms: float = 0.0,
    ) -> None:
        payload: Dict[str, object] = {
            "matches": matches,
            "source": source,
            "timed_out": timed_out,
            "groups_queried": groups_queried,
            "staleness_ms": staleness_ms,
        }
        if error is not None:
            payload["error"] = error
        self._respond_after_processing(respond, payload)

    def _respond_after_processing(self, respond, payload) -> None:
        """Model server-side processing time (the ~45 ms cache path of
        Fig. 8c is dominated by it).

        With ``server_queue_enabled`` the server is a serial queue: each
        response occupies the CPU for the processing delay, so responses
        queue behind each other and an overloaded server's latency grows
        without bound — the saturation knee the shard sweep measures.

        Under the overload CPU model the charge already happened at
        admission (:meth:`FocusService._admit_query` occupied the query
        lane before this handler ran), so the response leaves immediately
        rather than paying a second fixed delay.
        """
        if self.service.query_cpu is not None:
            respond(payload)
            return
        delay = self.service.config.server_processing_delay
        if self.service.config.server_queue_enabled:
            delay = self.service.enqueue_processing(delay)
        if delay > 0:
            self.service.sim.schedule(delay, respond, payload)
        else:
            respond(payload)


class _MemoryRow:
    """Adapter so the storeless static path looks like store rows."""

    __slots__ = ("key", "value")

    def __init__(self, key: str, value: dict) -> None:
        self.key = key
        self.value = value


def registrar_table_size(registrar, attribute: str) -> int:
    """Number of nodes carrying a static attribute (smallest-table choice)."""
    return registrar.static_counts.get(attribute, 0)
