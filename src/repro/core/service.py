"""The FOCUS server process.

Composes the Registrar, the Dynamic Groups Manager and the Query Router
behind RPC endpoints (the paper hosts them as REST APIs on one Jetty server,
with the Query Router bound to a separate port to split northbound and
southbound load — here the method namespace plays the port's role):

southbound (consumed by node agents)
    ``focus.register``, ``focus.deregister``, ``focus.suggest``,
    ``focus.group-report``

northbound (consumed by applications)
    ``focus.query``

The service also carries a resource model reproducing Fig. 8a's server
CPU/RAM measurements (the paper's server VM: 4 vCPUs, 16 GB RAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.naming import group_base, group_name

from repro.core.admission import AdmissionQueue, TokenBucket
from repro.core.cache import QueryCache
from repro.core.config import FocusConfig
from repro.core.cpumodel import ServerCpuModel
from repro.core.dgm import DynamicGroupsManager
from repro.core.query import Query
from repro.core.registrar import Registrar
from repro.core.router import QueryRouter
from repro.core.views import ViewManager, is_view_group
from repro.errors import FocusError
from repro.sim.loop import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import DEFERRED, RpcMixin
from repro.store.cluster import StoreClient, StoreCluster


@dataclass
class ResourceModelConfig:
    """CPU/RAM cost model for the FOCUS server (Fig. 8a calibration)."""

    cores: float = 4.0
    ram_total_mb: float = 16384.0
    #: Parsing, cache lookup and planning for one query.
    per_query_cpu: float = 0.002
    #: Issuing one group/transition RPC and merging its response. This is
    #: the work delegation (§VI) offloads to the application.
    per_fanout_cpu: float = 0.004
    per_report_cpu: float = 0.002
    per_registration_cpu: float = 0.005
    sample_interval: float = 1.0
    base_ram_mb: float = 450.0
    ram_per_node_mb: float = 0.12
    ram_per_group_mb: float = 0.06
    ram_per_cache_entry_mb: float = 0.01


class ServerResourceModel:
    """Accumulates modelled CPU work and samples utilisation and RAM."""

    def __init__(self, service: "FocusService", config: Optional[ResourceModelConfig] = None) -> None:
        self.service = service
        self.config = config or ResourceModelConfig()
        self._window_cpu = 0.0
        self.cpu_series: List[Tuple[float, float]] = []
        self.ram_series: List[Tuple[float, float]] = []

    def charge_query(self) -> None:
        self._window_cpu += self.config.per_query_cpu

    def charge_fanout(self) -> None:
        self._window_cpu += self.config.per_fanout_cpu

    def charge_report(self) -> None:
        self._window_cpu += self.config.per_report_cpu

    def charge_registration(self) -> None:
        self._window_cpu += self.config.per_registration_cpu

    def sample(self) -> None:
        cfg = self.config
        utilization = min(1.0, self._window_cpu / cfg.sample_interval / cfg.cores)
        self._window_cpu = 0.0
        ram_mb = (
            cfg.base_ram_mb
            + cfg.ram_per_node_mb * len(self.service.registrar.nodes)
            + cfg.ram_per_group_mb * len(self.service.dgm.groups)
            + cfg.ram_per_cache_entry_mb * len(self.service.cache)
        )
        now = self.service.sim.now
        self.cpu_series.append((now, utilization))
        self.ram_series.append((now, ram_mb))

    def mean_cpu_over(self, start: float, end: float) -> float:
        samples = [u for t, u in self.cpu_series if start <= t <= end]
        return sum(samples) / len(samples) if samples else float("nan")

    def mean_ram_over(self, start: float, end: float) -> float:
        samples = [r for t, r in self.ram_series if start <= t <= end]
        return sum(samples) / len(samples) if samples else float("nan")


class FocusService(Process, RpcMixin):
    """The FOCUS server."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        address: str = "focus",
        region: str,
        config: Optional[FocusConfig] = None,
        store_cluster: Optional[StoreCluster] = None,
        resource_config: Optional[ResourceModelConfig] = None,
        family_owner: Optional[Callable[[str], str]] = None,
        persist_statics: bool = True,
    ) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        # Node agents may retransmit registrations/reports under retries;
        # dedupe them server-side instead of double-executing.
        self.enable_rpc_idempotency()
        self.config = config or FocusConfig()
        self.metrics = MetricsRegistry()
        self.rng = sim.derive_rng(f"focus/{address}")
        #: Shard-plane partitioning: maps a group-family key to the shard
        #: address owning it. ``None`` (the legacy single server) owns every
        #: family; a shard only suggests/tracks groups whose family it owns.
        self.family_owner = family_owner
        #: Whether this server writes the static-attribute store tables.
        #: Registrations are replicated to every shard, so exactly one shard
        #: persists them (the rest would duplicate every row N ways).
        self.persist_statics = persist_statics
        #: Serial queue for the modelled query processor (see
        #: :meth:`enqueue_processing`); only advances under
        #: ``config.server_queue_enabled``. Callers pass the service time
        #: directly, so the lane's own per-request cost never applies.
        self._legacy_queue = ServerCpuModel(1.0)
        # ---- overload subsystem (all off by default; see core/admission.py)
        overload = self.config.overload
        #: CPU lane serving queries; with the bulkhead on it owns only
        #: ``bulkhead_query_share`` of the cores, otherwise it is the whole
        #: machine (and aliases :attr:`register_cpu`).
        self.query_cpu: Optional[ServerCpuModel] = None
        #: CPU lane serving registrations and reports.
        self.register_cpu: Optional[ServerCpuModel] = None
        self.admission: Optional[AdmissionQueue] = None
        self.throttle: Optional[TokenBucket] = None
        self.queries_throttled = 0
        self.queries_shed = 0
        self.registrations_shed = 0
        self.reports_shed = 0
        if overload.cpu_model_enabled:
            if overload.bulkhead_enabled:
                query_cores = overload.cores * overload.bulkhead_query_share
                self.query_cpu = ServerCpuModel(
                    query_cores,
                    per_request_cpu=overload.per_query_cpu,
                    max_backlog_seconds=overload.max_backlog_seconds,
                )
                self.register_cpu = ServerCpuModel(
                    overload.cores - query_cores,
                    per_request_cpu=overload.per_registration_cpu,
                    max_backlog_seconds=overload.max_backlog_seconds,
                )
            else:
                shared = ServerCpuModel(
                    overload.cores,
                    per_request_cpu=overload.per_query_cpu,
                    max_backlog_seconds=overload.max_backlog_seconds,
                )
                self.query_cpu = shared
                self.register_cpu = shared
            if overload.queue_enabled:
                self.admission = AdmissionQueue(
                    sim,
                    self.query_cpu,
                    capacity=overload.queue_capacity,
                    discipline=overload.queue_discipline,
                    deadline=overload.queue_deadline,
                )
            if overload.throttle_enabled:
                self.throttle = TokenBucket(
                    overload.throttle_rate,
                    overload.throttle_burst,
                    per_client=overload.throttle_per_client,
                )
        self.cache = QueryCache(self.config.cache_max_entries)
        self.store_client: Optional[StoreClient] = (
            store_cluster.client_for(self) if store_cluster is not None else None
        )
        self.registrar = Registrar(self)
        self.dgm = DynamicGroupsManager(self)
        self.router = QueryRouter(self)
        self.views = ViewManager(self)
        self.resources = ServerResourceModel(self, resource_config)

        self.serve("focus.register", self._rpc_register)
        self.serve("focus.deregister", self._rpc_deregister)
        self.serve("focus.suggest", self._rpc_suggest)
        self.serve("focus.leave-group", self._rpc_leave_group)
        self.serve("focus.group-report", self._rpc_report)
        self.serve("focus.query", self._rpc_query)
        self.serve("focus.create-view", self._rpc_create_view)
        self.serve("focus.drop-view", self._rpc_drop_view)
        self.serve("focus.join-view", self._rpc_join_view)
        self.serve("focus.leave-view", self._rpc_leave_view)

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        self.every(
            max(self.config.transition_ttl / 2, 1.0),
            self.dgm.sweep_transitions,
        )
        self.every(self.config.report_interval, self.dgm.check_stale_groups)
        self.every(self.config.report_interval, self.views.check_stale_view_groups)
        if self.store_client is not None:
            self.every(self.config.store_sync_interval, self.dgm.sync_to_store)
        self.every(self.resources.config.sample_interval, self.resources.sample)

    def on_stop(self) -> None:
        # Crash semantics: calls issued by the previous incarnation must not
        # resolve after the restart.
        self.reset_rpc()

    def restart(self) -> None:
        """Crash recovery: restart and reload registrations from the store.

        Group records come back on their own — representatives keep
        uploading member lists and ``handle_report`` recreates missing
        groups (see :meth:`recover_from_store`).
        """
        super().restart()
        self._legacy_queue.reset()
        if self.query_cpu is not None:
            self.query_cpu.reset()
        if self.register_cpu is not None:
            self.register_cpu.reset()
        if self.admission is not None:
            self.admission.reset()
        if self.store_client is not None:
            self.recover_from_store()

    # -------------------------------------------------------------- sharding
    def owns_family(self, attribute: str, value: float) -> bool:
        """Whether this server owns the group family covering ``value``.

        The legacy single server owns everything. A shard owns the family iff
        the plane's consistent-hash ring maps the family key to this shard's
        address. Geo-split region qualifiers and fork suffixes are not part
        of the key, so ownership is stable across splits and forks.
        """
        if self.family_owner is None:
            return True
        key = group_name(attribute, float(value), self.config.cutoff_for(attribute))
        return self.family_owner(key) == self.address

    def owns_family_base(self, attribute: str, base: float) -> bool:
        """Ownership by family base value (already cutoff-aligned)."""
        if self.family_owner is None:
            return True
        cutoff = self.config.cutoff_for(attribute)
        key = group_name(attribute, group_base(base, cutoff), cutoff)
        return self.family_owner(key) == self.address

    # ------------------------------------------------------- processing queue
    def enqueue_processing(self, service_time: float) -> float:
        """Modelled serial query processor: returns the delay until this
        response leaves the server, advancing the shared busy pointer."""
        return self._legacy_queue.occupy(self.sim.now, service_time)

    # --------------------------------------------------------- overload entry
    def _overload_payload(self, source: str) -> dict:
        """Rejection reply: shaped like a query answer so clients degrade
        gracefully (empty matches + an error tag) instead of timing out."""
        return {
            "matches": [],
            "source": source,
            "timed_out": False,
            "groups_queried": 0,
            "staleness_ms": 0.0,
            "error": source,
        }

    def _admit_query(self, params, respond, message):
        """Admission pipeline in front of the query path (CPU model on).

        Order matters: the throttle rejects at the door (costs nothing),
        then the admission queue levels what got through onto the query CPU
        lane; without the queue, arrivals stack up on the lane's busy-until
        pointer directly — the undefended Fig. 3 collapse (optionally capped
        by ``max_backlog_seconds`` shedding). The lane charge covers the
        whole query (parse, lookups, fan-out bookkeeping, encoding); the
        router's fixed processing delay is skipped so CPU is charged once.
        """
        overload = self.config.overload
        if self.throttle is not None and not self.throttle.allow(
            self.sim.now, message.src
        ):
            self.queries_throttled += 1
            return self._overload_payload("throttled")
        service_time = self.query_cpu.service_time(overload.per_query_cpu)

        def run(_sojourn: float = 0.0) -> None:
            try:
                result = self.router.handle(params, respond)
            except FocusError as exc:
                result = {"error": str(exc), "matches": [], "source": "error"}
            if result is not DEFERRED:
                respond(result)

        if self.admission is not None:
            def shed(reason: str) -> None:
                self.queries_shed += 1
                respond(self._overload_payload(f"shed-{reason}"))

            self.admission.submit(service_time, run, shed)
            return DEFERRED
        delay = self.query_cpu.try_occupy(self.sim.now, service_time)
        if delay is None:
            self.queries_shed += 1
            return self._overload_payload("shed-backlog")
        self.sim.schedule(delay, run)
        return DEFERRED

    # ------------------------------------------------------------ southbound
    def _rpc_register(self, params, respond, message):
        if self.register_cpu is not None:
            overload = self.config.overload
            delay = self.register_cpu.admit(
                self.sim.now, overload.per_registration_cpu
            )
            if delay is None:
                # Shed: no reply, the agent's retry machinery takes over.
                self.registrations_shed += 1
                return DEFERRED
            self.sim.schedule(delay, self._finish_register, params, respond)
            return DEFERRED
        return self._finish_register(params, None)

    def _finish_register(self, params, respond):
        try:
            result = self.registrar.register(params)
        except FocusError as exc:
            result = {"error": str(exc)}
        else:
            self.resources.charge_registration()
            result["views"] = self.views.definitions_for_registration()
        if respond is None:
            return result
        respond(result)

    def _rpc_deregister(self, params, respond, message):
        self.registrar.deregister(str(params["node_id"]))
        return {"ok": True}

    def _rpc_suggest(self, params, respond, message):
        leaving = params.get("leaving")
        if leaving:
            self.dgm.node_left_group(str(params["node_id"]), str(leaving))
        try:
            suggestion = self.dgm.suggest(
                str(params["node_id"]),
                str(params["region"]),
                str(params["attribute"]),
                float(params["value"]),
            )
        except FocusError as exc:
            return {"error": str(exc)}
        return {"group": suggestion}

    def _rpc_leave_group(self, params, respond, message):
        """A node is leaving a group owned by this shard.

        On the single server, leave+suggest travel together in one
        ``focus.suggest`` call; across shards the old family's owner can be a
        different server than the new one's, so the router splits the leave
        out into this endpoint.
        """
        self.dgm.node_left_group(str(params["node_id"]), str(params["group"]))
        return {"ok": True}

    def _rpc_report(self, params, respond, message):
        if self.register_cpu is not None:
            delay = self.register_cpu.admit(
                self.sim.now, self.config.overload.per_report_cpu
            )
            if delay is None:
                # Shed: the representative re-reports next interval anyway.
                self.reports_shed += 1
                return DEFERRED
            self.sim.schedule(delay, self._finish_report, params, respond)
            return DEFERRED
        return self._finish_report(params, None)

    def _finish_report(self, params, respond):
        self.resources.charge_report()
        if is_view_group(str(params.get("group", ""))):
            result = self.views.handle_report(params)
        else:
            result = self.dgm.handle_report(params)
        if respond is None:
            return result
        respond(result)

    def _rpc_create_view(self, params, respond, message):
        try:
            view = self.views.create_view(
                params["query"], view_id=params.get("view_id")
            )
        except FocusError as exc:
            return {"error": str(exc)}
        return {"view_id": view.view_id, "group": view.group.name}

    def _rpc_drop_view(self, params, respond, message):
        self.views.drop_view(str(params["view_id"]))
        return {"ok": True}

    def _rpc_join_view(self, params, respond, message):
        return self.views.handle_join(params)

    def _rpc_leave_view(self, params, respond, message):
        return self.views.handle_leave(params)

    # ------------------------------------------------------------ northbound
    def _rpc_query(self, params, respond, message):
        if self.query_cpu is not None:
            return self._admit_query(params, respond, message)
        try:
            return self.router.handle(params, respond)
        except FocusError as exc:
            return {"error": str(exc), "matches": [], "source": "error"}

    # ---------------------------------------------------------------- recovery
    def recover_from_store(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Rebuild service state after a crash-restart (§VIII-A).

        Two sources, matching the paper's failure story:

        * the **store** holds the registration records (and static tables),
          which are reloaded here;
        * the **groups** repopulate themselves: representatives keep
          uploading member lists, and :meth:`DynamicGroupsManager.handle_report`
          recreates missing group records from the first report it sees.
        """
        if self.store_client is None:
            raise FocusError("recovery requires a store-backed deployment")

        def loaded(rows) -> None:
            for row in rows:
                self.registrar.restore_record(row.key, row.value)
            self.metrics.counter("recoveries").inc()
            if on_done is not None:
                on_done()

        self.store_client.scan("nodes", loaded)

    # ------------------------------------------------------------ local entry
    def local_query(self, query: Query, on_response: Callable[[dict], None]) -> None:
        """Northbound entry without a separate application process.

        Used by the harness and tests; follows the same code path as the RPC
        endpoint (including the modelled processing delay).
        """
        try:
            result = self.router.handle({"query": query.to_json()}, on_response)
        except FocusError as exc:
            on_response({"error": str(exc), "matches": [], "source": "error"})
            return
        if result is not DEFERRED:
            on_response(result)
