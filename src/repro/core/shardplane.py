"""The partitioned FOCUS serving plane: shards, scatter-gather, replicas.

The single ``FocusService`` is the scaling wall for large fleets — every
registration, report and query funnels through one process. This module
splits it N ways while keeping every wire protocol intact:

* **sharding** — the attribute/group tables are partitioned by *group
  family* over a consistent-hash ring (:class:`FamilyShardMap`, built on
  :class:`~repro.store.hashring.ConsistentHashRing`). A family key is the
  region- and fork-agnostic part of a group name (``ram_mb.2048``), so all
  geo-split and forked instances of a family live on one shard and a family
  never straddles shards.
* **scatter-gather** — a front :class:`ShardRouter` owns the public
  ``focus`` address. Registrations replicate to every shard (each shard
  suggests groups only for the families it owns; the router merges the
  suggestion lists). Queries scatter only to the shards owning the routed
  attribute's covering families, pin the routed attribute in the sub-query,
  and merge partial results deterministically in shard order.
* **CQRS read replicas** — with ``replica_reads`` on, one
  :class:`RegionReadReplica` per region answers bounded-staleness queries
  from a region-local read-through cache, refreshed by materialized-view
  pushes from the router (``replica.view-update``).

Every answer that did not come straight from the groups carries an explicit
``staleness_ms`` bound, and re-cached answers backdate their cache entries
(see :meth:`~repro.core.cache.QueryCache.store`), so staleness compounds
honestly across cache → replica → cache hops.

``shards=1`` (the default, with ``replica_reads`` off) bypasses all of this
and returns the legacy single :class:`~repro.core.service.FocusService` —
byte-identical to the pre-sharding code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.admission import CircuitBreaker
from repro.core.cache import QueryCache
from repro.core.config import FocusConfig
from repro.core.cpumodel import ServerCpuModel
from repro.core.naming import group_name, groups_covering
from repro.core.query import Query
from repro.core.service import FocusService, ResourceModelConfig
from repro.core.views import is_view_group, view_group_name, _constraint_key
from repro.sim.loop import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import DEFERRED, RpcMixin
from repro.store.cluster import StoreCluster


def family_key_of_group(group: str) -> str:
    """The shard-ownership key of a group name.

    Strips the fork suffix (``#2``) and geo-split region qualifier
    (``@us-west-2``): every instance of a family shares one owner.
    """
    return group.split("#", 1)[0].partition("@")[0]


class FamilyShardMap:
    """Consistent-hash assignment of group families to shard addresses."""

    def __init__(self, shard_addresses: List[str], virtual_nodes: int = 64) -> None:
        from repro.store.hashring import ConsistentHashRing

        self.ring = ConsistentHashRing(virtual_nodes)
        for address in shard_addresses:
            self.ring.add_node(address)

    @property
    def shard_addresses(self) -> List[str]:
        return self.ring.nodes

    def owner(self, family_key: str) -> str:
        """The shard owning a family key (``attribute.base``)."""
        return self.ring.primary_for(family_key)

    def owner_of_group(self, group: str) -> str:
        return self.owner(family_key_of_group(group))

    def owner_for_value(self, attribute: str, value: float, cutoff: float) -> str:
        return self.owner(group_name(attribute, value, cutoff))

    def add_shard(self, address: str) -> None:
        self.ring.add_node(address)

    def remove_shard(self, address: str) -> None:
        self.ring.remove_node(address)

    def assignment(self, family_keys: List[str]) -> Dict[str, str]:
        """Family key → owning shard, for every key given."""
        return {key: self.owner(key) for key in family_keys}


class ShardRouter(Process, RpcMixin):
    """Front door of the sharded serving plane.

    Owns the public FOCUS address, so node agents and applications are
    oblivious to the partitioning. Stateless with respect to group
    membership — it holds only the family map, a read-through response
    cache, and the view registry (view definitions route by view id).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        shards: List[FocusService],
        *,
        address: str = "focus",
        region: str,
        config: FocusConfig,
        shard_map: Optional[FamilyShardMap] = None,
    ) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.enable_rpc_idempotency()
        self.config = config
        self.shards = shards
        self.shard_addresses = [s.address for s in shards]
        self.shard_map = shard_map or FamilyShardMap(
            self.shard_addresses, config.shard_virtual_nodes
        )
        self.metrics = MetricsRegistry()
        #: Router-level read-through cache for hot queries: a hit answers
        #: without touching any shard. Entries inherit the merged answer's
        #: staleness (backdated fetch time), so freshness bounds hold
        #: end-to-end.
        self.cache = QueryCache(config.cache_max_entries)
        #: view_id -> {"query_json", "key", "owner"}; definitions are
        #: registered here so matching queries route straight to the owner.
        self.views: Dict[str, Dict[str, object]] = {}
        self._view_counter = 0
        #: Region read replicas fed by the materialization loop.
        self.replicas: List["RegionReadReplica"] = []
        #: Per-shard circuit breakers on the query path (None unless
        #: ``config.overload.breaker_enabled``). A breaker that opens takes
        #: its shard out of the scatter set; matching queries degrade to
        #: stale cache reads (stamped with their true ``staleness_ms``)
        #: instead of queueing onto a drowning shard. Cooldown jitter draws
        #: from a derived RNG stream so runs stay seed-reproducible.
        self.breakers: Optional[Dict[str, CircuitBreaker]] = None
        overload = config.overload
        if overload.breaker_enabled:
            rng = sim.derive_rng(f"breaker/{address}")
            self.breakers = {
                shard: CircuitBreaker(
                    failure_threshold=overload.breaker_failure_threshold,
                    min_volume=overload.breaker_min_volume,
                    latency_threshold=overload.breaker_latency_threshold,
                    window=overload.breaker_window,
                    cooldown=overload.breaker_cooldown,
                    half_open_probes=overload.breaker_half_open_probes,
                    cooldown_jitter=overload.breaker_cooldown_jitter,
                    rng=rng,
                )
                for shard in self.shard_addresses
            }

        self.serve("focus.register", self._rpc_register)
        self.serve("focus.deregister", self._rpc_deregister)
        self.serve("focus.suggest", self._rpc_suggest)
        self.serve("focus.group-report", self._rpc_report)
        self.serve("focus.query", self._rpc_query)
        self.serve("focus.create-view", self._rpc_create_view)
        self.serve("focus.drop-view", self._rpc_drop_view)
        self.serve("focus.join-view", self._rpc_join_view)
        self.serve("focus.leave-view", self._rpc_leave_view)

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        if self.replicas:
            self.every(self.config.replica_refresh_interval, self._refresh_replicas)

    def on_stop(self) -> None:
        self.reset_rpc()

    # -------------------------------------------------------------- helpers
    def _shard_timeout(self) -> float:
        # The shard enforces config.query_timeout internally and answers
        # with a timed_out payload; the router's own RPC timeout sits above
        # it so shard-side timeouts surface as data, and only a crashed (or
        # saturated) shard trips the router-level timeout.
        return self.config.query_timeout + 1.0

    def _forward(self, shard: str, method: str, params, respond, *, fallback) -> None:
        """Proxy one call to a shard; answer ``fallback`` if it is down."""
        self.call(
            shard,
            method,
            params,
            on_reply=respond,
            on_timeout=lambda: respond(fallback),
            timeout=self._shard_timeout(),
        )

    # ----------------------------------------------------------- registration
    def _rpc_register(self, params, respond, message):
        """Replicate the registration to every shard and merge suggestions.

        Each shard registers the node (so its registrar can resolve regions
        in group reports and answer static queries) but only suggests groups
        for the families it owns; exactly one shard persists the static
        tables. The merged reply is indistinguishable from the single
        server's.
        """
        state = {"pending": len(self.shard_addresses), "groups": [],
                 "views": {}, "error": None, "done": False}

        def advance() -> None:
            state["pending"] -= 1
            if state["done"] or state["pending"] > 0:
                return
            state["done"] = True
            if state["error"] is not None and not state["groups"]:
                respond({"error": state["error"]})
                return
            groups = sorted(state["groups"], key=lambda s: str(s.get("attribute", "")))
            views = [state["views"][vid] for vid in sorted(state["views"])]
            respond({"groups": groups, "views": views})

        def on_reply(result) -> None:
            if result:
                if result.get("error"):
                    state["error"] = result["error"]
                state["groups"].extend(result.get("groups") or ())
                for definition in result.get("views") or ():
                    state["views"][str(definition["view_id"])] = definition
            advance()

        for shard in self.shard_addresses:
            self.call(
                shard,
                "focus.register",
                params,
                on_reply=on_reply,
                on_timeout=advance,
                timeout=self._shard_timeout(),
            )
        self.metrics.counter("registrations").inc()
        return DEFERRED

    def _rpc_deregister(self, params, respond, message):
        state = {"pending": len(self.shard_addresses)}

        def advance(result=None) -> None:
            state["pending"] -= 1
            if state["pending"] == 0:
                respond({"ok": True})

        for shard in self.shard_addresses:
            self.call(
                shard,
                "focus.deregister",
                params,
                on_reply=advance,
                on_timeout=advance,
                timeout=self._shard_timeout(),
            )
        return DEFERRED

    # ------------------------------------------------------------ suggestions
    def _rpc_suggest(self, params, respond, message):
        """Route a suggestion to the owner of the target value's family.

        A move between families owned by different shards is split: the old
        family's owner gets a ``focus.leave-group`` so its membership and
        representative bookkeeping stay accurate, and the new owner gets the
        suggest (without the leave, which it could not serve).
        """
        attribute = str(params["attribute"])
        value = float(params["value"])
        try:
            cutoff = self.config.cutoff_for(attribute)
        except Exception as exc:
            return {"error": str(exc)}
        target = self.shard_map.owner_for_value(attribute, value, cutoff)
        forward = dict(params)
        leaving = forward.get("leaving")
        if leaving:
            old_owner = self.shard_map.owner_of_group(str(leaving))
            if old_owner != target:
                forward.pop("leaving")
                self.call(
                    old_owner,
                    "focus.leave-group",
                    {"node_id": params["node_id"], "group": leaving},
                    on_reply=lambda result: None,
                    timeout=self._shard_timeout(),
                )
        self._forward(
            target, "focus.suggest", forward, respond,
            fallback={"error": f"shard {target} unavailable"},
        )
        return DEFERRED

    # ---------------------------------------------------------------- reports
    def _rpc_report(self, params, respond, message):
        group = str(params.get("group", ""))
        if is_view_group(group):
            owner = self.shard_map.owner(group)
        else:
            owner = self.shard_map.owner_of_group(group)
        # A representative whose shard is down must keep reporting, so the
        # fallback keeps its duty; the next report lands after failover.
        self._forward(
            owner, "focus.group-report", params, respond,
            fallback={"ok": False, "representative": True},
        )
        return DEFERRED

    # ------------------------------------------------------------------ views
    def _rpc_create_view(self, params, respond, message):
        view_id = params.get("view_id")
        if view_id is None:
            self._view_counter += 1
            view_id = f"v{self._view_counter}"
        view_id = str(view_id)
        if view_id in self.views:
            return {"error": f"view {view_id!r} already exists"}
        owner = self.shard_map.owner(view_group_name(view_id))
        forward = dict(params)
        forward["view_id"] = view_id

        def on_reply(result) -> None:
            if result and not result.get("error"):
                query = Query.from_json(params["query"])
                self.views[view_id] = {
                    "query_json": query.to_json(),
                    "key": _constraint_key(query),
                    "owner": owner,
                }
            respond(result)

        self.call(
            owner,
            "focus.create-view",
            forward,
            on_reply=on_reply,
            on_timeout=lambda: respond({"error": f"shard {owner} unavailable"}),
            timeout=self._shard_timeout(),
        )
        return DEFERRED

    def _rpc_drop_view(self, params, respond, message):
        view_id = str(params["view_id"])
        info = self.views.pop(view_id, None)
        owner = (
            str(info["owner"]) if info is not None
            else self.shard_map.owner(view_group_name(view_id))
        )
        self._forward(owner, "focus.drop-view", params, respond,
                      fallback={"ok": False})
        return DEFERRED

    def _rpc_join_view(self, params, respond, message):
        owner = self.shard_map.owner(view_group_name(str(params["view_id"])))
        self._forward(owner, "focus.join-view", params, respond,
                      fallback={"error": "view shard unavailable"})
        return DEFERRED

    def _rpc_leave_view(self, params, respond, message):
        owner = self.shard_map.owner(view_group_name(str(params["view_id"])))
        self._forward(owner, "focus.leave-view", params, respond,
                      fallback={"ok": False})
        return DEFERRED

    # ---------------------------------------------------------------- queries
    def _rpc_query(self, params, respond, message):
        query = Query.from_json(params["query"])
        self.metrics.counter("queries").inc()

        if self.config.cache_enabled:
            entry = self.cache.lookup_entry(query, self.sim.now)
            if entry is not None:
                matches = entry.matches
                if query.limit is not None:
                    matches = matches[: query.limit]
                age_ms = (self.sim.now - entry.fetched_at) * 1000.0
                return self._payload(matches, "cache", staleness_ms=age_ms)

        view = self._match_view(query)
        if view is not None:
            self._forward_query(str(view["owner"]), params, query, respond)
            return DEFERRED

        attribute, owners = self._scatter_plan(query)
        if attribute is None:
            # Static-only query: every shard holds the full registry; the
            # statics shard also owns the store tables.
            self._forward_query(self.shard_addresses[0], params, query, respond)
            return DEFERRED
        if len(owners) == 1:
            sub = dict(params)
            sub["routed_attribute"] = attribute
            self._forward_query(owners[0], sub, query, respond)
            return DEFERRED
        self._scatter_gather(params, query, attribute, owners, respond)
        return DEFERRED

    def _match_view(self, query: Query) -> Optional[Dict[str, object]]:
        wanted = _constraint_key(query)
        for view_id in sorted(self.views):
            if self.views[view_id]["key"] == wanted:
                return self.views[view_id]
        return None

    def _scatter_plan(self, query: Query):
        """Routed attribute + owning shards for a query.

        The router has no group tables, so the single server's smallest-group
        routing is approximated by the *fewest enumerated covering families*
        — the same tables-free signal both sides can compute. Bounds are
        clamped to the schema's declared value range before enumeration.
        """
        schema = self.config.schema
        best_attribute: Optional[str] = None
        best_families: Optional[List[str]] = None
        for term in query.terms:
            spec = schema.maybe_get(term.name)
            if spec is None or not spec.is_dynamic:
                continue
            families = groups_covering(
                term.name,
                term.lower if term.equals is None else None,
                term.upper if term.equals is None else None,
                spec.cutoff,
                value_min=spec.min_value,
                value_max=spec.max_value,
            )
            prefer_smallest = self.config.smallest_group_routing
            better = best_families is None or (
                len(families) < len(best_families)
                if prefer_smallest
                else len(families) > len(best_families)
            )
            if better:
                best_attribute, best_families = term.name, families
        if best_attribute is None:
            return None, []
        owner_set = {self.shard_map.owner(key) for key in best_families}
        owners = [a for a in self.shard_addresses if a in owner_set]
        return best_attribute, owners

    # --------------------------------------------------------- circuit breaker
    def _breaker_blocks(self, owners: List[str]) -> bool:
        """Whether any targeted shard's breaker refuses this query.

        Checked with :meth:`~repro.core.admission.CircuitBreaker.peek` so a
        plan that ends up degraded never consumes half-open probe slots on
        the shards that would have allowed it.
        """
        if self.breakers is None:
            return False
        now = self.sim.now
        return any(not self.breakers[owner].peek(now) for owner in owners)

    def _breaker_record(self, shard: str, sent_at: float, result) -> None:
        """Feed one shard outcome to its breaker (latency counts)."""
        if self.breakers is None:
            return
        breaker = self.breakers.get(shard)
        if breaker is None:
            return
        now = self.sim.now
        if result is None or result.get("error") or result.get("timed_out"):
            breaker.record_failure(now)
        else:
            breaker.record_success(now, now - sent_at)

    def _respond_degraded(self, query: Query, respond) -> None:
        """Breaker-open fallback: a stale cached answer beats a timeout.

        Freshness bounds are knowingly violated — that is the graceful-
        degradation contract — but never silently: the answer's true age is
        stamped in ``staleness_ms`` and the source says ``breaker-stale``.
        With nothing cached the client gets an immediate ``breaker-open``
        error instead of waiting out a doomed timeout.
        """
        self.metrics.counter("breaker_degraded").inc()
        entry = self.cache.lookup_stale(query) if self.config.cache_enabled else None
        if entry is not None:
            matches = entry.matches
            if query.limit is not None:
                matches = matches[: query.limit]
            age_ms = (self.sim.now - entry.fetched_at) * 1000.0
            respond(self._payload(matches, "breaker-stale", staleness_ms=age_ms))
            return
        payload = self._payload([], "breaker-open")
        payload["error"] = "breaker-open"
        respond(payload)

    def _forward_query(self, shard: str, params, query: Query, respond) -> None:
        """Single-shard query path; the reply is re-cached at the router."""
        if self._breaker_blocks([shard]):
            self._respond_degraded(query, respond)
            return
        if self.breakers is not None:
            self.breakers[shard].allow(self.sim.now)
        sent_at = self.sim.now

        def on_reply(result) -> None:
            self._breaker_record(shard, sent_at, result)
            self._absorb_and_respond(query, [result], respond)

        def on_timeout() -> None:
            self._breaker_record(shard, sent_at, None)
            respond(self._payload([], "shard-timeout", timed_out=True))

        self.call(
            shard,
            "focus.query",
            params,
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=self._shard_timeout(),
        )

    def _scatter_gather(self, params, query, attribute, owners, respond) -> None:
        """Fan a query out to the owning shards and merge partial results.

        With breakers on, a plan touching any open shard degrades whole
        (stale cache or breaker-open) rather than returning a silently
        partial merge missing the hot shard's matches.
        """
        if self._breaker_blocks(owners):
            self._respond_degraded(query, respond)
            return
        if self.breakers is not None:
            now = self.sim.now
            for owner in owners:
                self.breakers[owner].allow(now)
        self.metrics.counter("scatter_queries").inc()
        sub = dict(params)
        sub["routed_attribute"] = attribute
        partials: Dict[str, Optional[dict]] = {}
        state = {"pending": len(owners)}
        sent_at = self.sim.now

        def advance() -> None:
            state["pending"] -= 1
            if state["pending"] > 0:
                return
            # Merge in shard order (not arrival order) so the merged match
            # list — and everything derived from it — is deterministic.
            ordered = [partials.get(owner) for owner in owners]
            self._absorb_and_respond(query, ordered, respond)

        for owner in owners:
            def on_reply(result, owner=owner) -> None:
                partials[owner] = result
                self._breaker_record(owner, sent_at, result)
                advance()

            def on_timeout(owner=owner) -> None:
                self._breaker_record(owner, sent_at, None)
                advance()

            self.call(
                owner,
                "focus.query",
                sub,
                on_reply=on_reply,
                on_timeout=on_timeout,
                timeout=self._shard_timeout(),
            )

    def _absorb_and_respond(self, query: Query, partials, respond) -> None:
        """Merge shard answers, cache the result, respond to the caller."""
        matches: Dict[str, dict] = {}
        staleness = 0.0
        groups_queried = 0
        timed_out = False
        delegated_groups: List[dict] = []
        delegated_transitions: List[str] = []
        seen_any = False
        for partial in partials:
            if not partial:
                timed_out = True  # a shard never answered (crash/saturation)
                continue
            seen_any = True
            for record in partial.get("matches") or ():
                matches.setdefault(str(record["node"]), record)
            staleness = max(staleness, float(partial.get("staleness_ms", 0.0)))
            groups_queried += int(partial.get("groups_queried", 0))
            timed_out = timed_out or bool(partial.get("timed_out", False))
            delegated = partial.get("delegated")
            if delegated:
                delegated_groups.extend(delegated.get("groups") or ())
                delegated_transitions.extend(delegated.get("transitions") or ())
        if delegated_groups or delegated_transitions:
            # Delegated shards returned candidates instead of results; hand
            # the merged candidate set to the client, which pulls directly.
            respond({
                "matches": [],
                "source": "delegated",
                "delegated": {
                    "groups": delegated_groups,
                    "transitions": delegated_transitions,
                },
            })
            return
        merged = list(matches.values())
        errored = any(p and p.get("error") for p in partials)
        if not timed_out and not errored and seen_any and self.config.cache_enabled:
            self.cache.store(query, merged, self.sim.now, staleness_ms=staleness)
        if query.limit is not None:
            merged = merged[: query.limit]
        if not seen_any:
            source = "shard-timeout"
        elif len(partials) == 1 and partials[0]:
            source = str(partials[0].get("source", "groups"))
        else:
            source = "groups"
        payload = self._payload(
            merged, source,
            timed_out=timed_out, groups_queried=groups_queried,
            staleness_ms=staleness,
        )
        if len(partials) == 1 and partials[0] and partials[0].get("error"):
            payload["error"] = partials[0]["error"]
        respond(payload)

    @staticmethod
    def _payload(matches, source, *, timed_out=False, groups_queried=0,
                 staleness_ms=0.0):
        return {
            "matches": matches,
            "source": source,
            "timed_out": timed_out,
            "groups_queried": groups_queried,
            "staleness_ms": staleness_ms,
        }

    # ----------------------------------------------------- view materialization
    def _refresh_replicas(self) -> None:
        """CQRS write side → read side: re-materialize every view's result
        set and push it to each region replica with its staleness bound."""
        for view_id in sorted(self.views):
            info = self.views[view_id]

            def on_reply(result, info=info) -> None:
                if not result or result.get("timed_out") or result.get("error"):
                    return
                payload = {
                    "query": info["query_json"],
                    "matches": list(result.get("matches") or ()),
                    "staleness_ms": float(result.get("staleness_ms", 0.0)),
                }
                for replica in self.replicas:
                    self.call(
                        replica.address,
                        "replica.view-update",
                        payload,
                        on_reply=lambda r: None,
                        timeout=self._shard_timeout(),
                    )

            self.call(
                str(info["owner"]),
                "focus.query",
                {"query": info["query_json"]},
                on_reply=on_reply,
                timeout=self._shard_timeout(),
            )


class RegionReadReplica(Process, RpcMixin):
    """A per-region read-only FOCUS endpoint (the CQRS read side).

    Applications in the region query it with a freshness bound; it answers
    from its local cache (materialized views pushed by the router, plus
    read-through fills) whenever the cached answer is fresh enough, and
    forwards to the router otherwise. Every local answer reports its age as
    ``staleness_ms``; read-through fills inherit and compound the upstream
    staleness via the cache's backdated fetch time.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        router_address: str,
        *,
        region: str,
        config: FocusConfig,
    ) -> None:
        Process.__init__(self, sim, network, replica_address(region), region)
        self.init_rpc()
        self.router_address = router_address
        self.config = config
        self.cache = QueryCache(config.cache_max_entries)
        self.metrics = MetricsRegistry()
        #: Region-local CPU lane: serving a bounded-staleness read is cheap
        #: but not free, so a hot region's replica can itself saturate.
        #: Misses are charged where the work happens (router/shard side).
        overload = config.overload
        self.cpu: Optional[ServerCpuModel] = None
        if overload.cpu_model_enabled:
            self.cpu = ServerCpuModel(
                overload.cores,
                per_request_cpu=overload.per_replica_query_cpu,
                max_backlog_seconds=overload.max_backlog_seconds,
            )
        self.reads_shed = 0
        self.serve("focus.query", self._rpc_query)
        self.serve("replica.view-update", self._rpc_view_update)

    def _rpc_query(self, params, respond, message):
        query = Query.from_json(params["query"])
        entry = self.cache.lookup_entry(query, self.sim.now)
        if entry is not None:
            self.metrics.counter("replica_hits").inc()
            matches = entry.matches
            if query.limit is not None:
                matches = matches[: query.limit]
            age_ms = (self.sim.now - entry.fetched_at) * 1000.0
            payload = {
                "matches": matches,
                "source": "replica",
                "timed_out": False,
                "groups_queried": 0,
                "staleness_ms": age_ms,
            }
            if self.cpu is None:
                return payload
            delay = self.cpu.admit(self.sim.now)
            if delay is None:
                self.reads_shed += 1
                payload = {
                    "matches": [], "source": "shed-backlog", "timed_out": False,
                    "groups_queried": 0, "staleness_ms": 0.0,
                    "error": "shed-backlog",
                }
                return payload
            self.sim.schedule(delay, respond, payload)
            return DEFERRED
        self.metrics.counter("replica_misses").inc()

        def on_reply(result) -> None:
            if result and not result.get("timed_out") and not result.get("error") \
                    and not result.get("delegated"):
                self.cache.store(
                    query,
                    list(result.get("matches") or ()),
                    self.sim.now,
                    staleness_ms=float(result.get("staleness_ms", 0.0)),
                )
            respond(result)

        self.call(
            self.router_address,
            "focus.query",
            params,
            on_reply=on_reply,
            on_timeout=lambda: respond({
                "matches": [], "source": "timeout", "timed_out": True,
                "groups_queried": 0, "staleness_ms": 0.0,
            }),
            timeout=self.config.query_timeout * 3,
        )
        return DEFERRED

    def _rpc_view_update(self, params, respond, message):
        query = Query.from_json(params["query"])
        self.cache.store(
            query,
            list(params.get("matches") or ()),
            self.sim.now,
            staleness_ms=float(params.get("staleness_ms", 0.0)),
        )
        self.metrics.counter("view_updates").inc()
        return {"ok": True}


def replica_address(region: str) -> str:
    """Network address of a region's read replica."""
    return f"focus-replica@{region}"


@dataclass
class ShardPlane:
    """A deployed serving plane: 1..N shards, optional router and replicas."""

    shards: List[FocusService]
    router: Optional[ShardRouter] = None
    replicas: List[RegionReadReplica] = field(default_factory=list)

    @property
    def entry_address(self) -> str:
        """Where node agents and applications send ``focus.*`` calls."""
        return self.router.address if self.router is not None else self.shards[0].address

    @property
    def primary(self) -> FocusService:
        """The statics shard (and, legacy, the only server)."""
        return self.shards[0]

    def server_addresses(self) -> List[str]:
        """Every serving-plane address, for bandwidth accounting."""
        addresses = [s.address for s in self.shards]
        if self.router is not None:
            addresses.append(self.router.address)
        addresses.extend(r.address for r in self.replicas)
        return addresses

    def start(self) -> None:
        for shard in self.shards:
            shard.start()
        if self.router is not None:
            self.router.start()
        for replica in self.replicas:
            replica.start()

    def all_groups(self):
        """Union of every shard's group table (disjoint by construction)."""
        for shard in self.shards:
            yield from shard.dgm.groups.all_groups()


def shard_address(base: str, index: int) -> str:
    """Network address of shard ``index`` behind public address ``base``."""
    return f"{base}-shard{index}"


def build_shard_plane(
    sim: Simulator,
    network: Network,
    *,
    address: str = "focus",
    region: str,
    regions: Optional[List[str]] = None,
    config: FocusConfig,
    store_cluster: Optional[StoreCluster] = None,
    resource_config: Optional[ResourceModelConfig] = None,
) -> ShardPlane:
    """Construct (but do not start) a serving plane per ``config``.

    ``shards=1`` without ``replica_reads`` returns the legacy single
    server under the public address — no router, no extra processes, no
    extra RNG streams: byte-identical to the pre-sharding deployment.

    The config is validated first (:meth:`FocusConfig.validate`): knob
    combinations that would silently do nothing — overload defenses with
    the master ``server_queue_enabled`` switch off, a breaker on an
    unsharded plane — fail fast here instead of lying quietly.
    """
    config.validate()
    if config.shards <= 1 and not config.replica_reads:
        service = FocusService(
            sim,
            network,
            address=address,
            region=region,
            config=config,
            store_cluster=store_cluster,
            resource_config=resource_config,
        )
        return ShardPlane(shards=[service])

    regions = regions or [region]
    addresses = [shard_address(address, i) for i in range(max(config.shards, 1))]
    shard_map = FamilyShardMap(addresses, config.shard_virtual_nodes)
    shards = [
        FocusService(
            sim,
            network,
            address=addr,
            region=regions[index % len(regions)],
            config=config,
            store_cluster=store_cluster,
            resource_config=resource_config,
            family_owner=shard_map.owner,
            persist_statics=(index == 0),
        )
        for index, addr in enumerate(addresses)
    ]
    router = ShardRouter(
        sim, network, shards,
        address=address, region=region, config=config, shard_map=shard_map,
    )
    replicas: List[RegionReadReplica] = []
    if config.replica_reads:
        replicas = [
            RegionReadReplica(
                sim, network, router.address, region=r, config=config
            )
            for r in regions
        ]
        router.replicas = replicas
    return ShardPlane(shards=shards, router=router, replicas=replicas)
