"""Materialized views — the paper's §XII extension, implemented.

    "we wish to explore materialized views in FOCUS by creating specific
    p2p groups representing frequently issued queries. We wish to extend
    this concept by supporting event triggers — change in node state will
    automatically update the materialized view."

A *view* is a standing query materialised as its own p2p group:

* creating a view pushes its definition to every registered node (and to
  nodes that register later);
* each node evaluates the view predicate locally and joins/leaves the view
  group **whenever its own attributes change** — the event trigger;
* the query router answers a query that matches a view definition by pulling
  the view group directly: every member matches by construction, so the pull
  is maximally directed (no range over-approximation at all);
* view groups reuse the whole group machinery — entry points, pending
  tracking, representatives uploading member lists, stale-group recovery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.groups import GroupInfo, GroupMember
from repro.core.query import Query
from repro.errors import FocusError


def view_group_name(view_id: str) -> str:
    """The p2p group name backing a materialized view."""
    return f"view::{view_id}"


def is_view_group(group_name: str) -> bool:
    """Whether a group name denotes a materialized-view group."""
    return group_name.startswith("view::")


class View:
    """One registered materialized view."""

    __slots__ = ("view_id", "query", "group", "created_at")

    def __init__(self, view_id: str, query: Query, group: GroupInfo, created_at: float) -> None:
        self.view_id = view_id
        self.query = query
        self.group = group
        self.created_at = created_at


class ViewManager:
    """Service-side view registry and membership bookkeeping."""

    def __init__(self, service) -> None:
        self.service = service
        self.views: Dict[str, View] = {}
        self._counter = 0

    # ----------------------------------------------------------- definition
    def create_view(self, query_json: Dict[str, object],
                    view_id: Optional[str] = None) -> View:
        """Register a view and push its definition to every node."""
        query = Query.from_json(query_json)
        if query.limit is not None:
            raise FocusError("views materialise full result sets; drop the limit")
        if view_id is None:
            self._counter += 1
            view_id = f"v{self._counter}"
        if view_id in self.views:
            raise FocusError(f"view {view_id!r} already exists")
        group = GroupInfo(
            view_group_name(view_id),
            attribute="__view__",
            base=0.0,
            cutoff=float("inf"),
            created_at=self.service.sim.now,
        )
        view = View(view_id, query, group, self.service.sim.now)
        self.views[view_id] = view
        for node_id in list(self.service.registrar.nodes):
            self._push_definition(node_id, view)
        self.service.metrics.counter("views_created").inc()
        return view

    def drop_view(self, view_id: str) -> None:
        view = self.views.pop(view_id, None)
        if view is None:
            return
        for node_id in view.group.all_node_ids():
            self.service.call(
                node_id,
                "node.drop-view",
                {"view_id": view_id},
                on_reply=lambda result: None,
            )

    def definitions_for_registration(self) -> List[Dict[str, object]]:
        """View definitions handed to newly registering nodes."""
        return [
            {"view_id": v.view_id, "query": v.query.to_json()}
            for v in self.views.values()
        ]

    def _push_definition(self, node_id: str, view: View) -> None:
        self.service.call(
            node_id,
            "node.view-def",
            {"view_id": view.view_id, "query": view.query.to_json()},
            on_reply=lambda result: None,
        )

    # ----------------------------------------------------------- membership
    def handle_join(self, params: Dict[str, object]) -> Dict[str, object]:
        """A node whose state matches asks to join the view group."""
        view = self.views.get(str(params["view_id"]))
        if view is None:
            return {"error": "unknown view"}
        node_id = str(params["node_id"])
        region = str(params.get("region", ""))
        group = view.group
        entry_points = group.entry_points()
        start_new = not entry_points
        group.pending[node_id] = GroupMember(node_id, region, self.service.sim.now)
        representative = False
        if len(group.representatives) < self.service.config.representatives_per_group:
            group.representatives.add(node_id)
            representative = True
        return {
            "name": group.name,
            "entry_points": entry_points,
            "start_new": start_new,
            "representative": representative,
            "report_interval": self.service.config.report_interval,
        }

    def handle_leave(self, params: Dict[str, object]) -> Dict[str, object]:
        view = self.views.get(str(params["view_id"]))
        if view is None:
            return {"ok": False}
        node_id = str(params["node_id"])
        view.group.members.pop(node_id, None)
        view.group.pending.pop(node_id, None)
        view.group.representatives.discard(node_id)
        return {"ok": True}

    def handle_report(self, params: Dict[str, object]) -> Dict[str, object]:
        """Representative upload for a view group (same wire as DGM reports)."""
        group_name = str(params["group"])
        view = self.view_for_group(group_name)
        if view is None:
            return {"ok": False, "representative": False}
        node_ids = [str(m) for m in params.get("members") or ()]
        regions = {}
        for node_id in node_ids:
            record = self.service.registrar.get(node_id)
            regions[node_id] = record.region if record is not None else ""
        view.group.record_report(node_ids, regions, self.service.sim.now)
        still = self.service.dgm._refresh_representatives(
            view.group, str(params["reporter"])
        )
        return {"ok": True, "representative": still}

    def forget_node(self, node_id: str) -> None:
        """Remove a deregistered node from every view group."""
        for view in self.views.values():
            view.group.members.pop(node_id, None)
            view.group.pending.pop(node_id, None)
            view.group.representatives.discard(node_id)

    def view_for_group(self, group_name: str) -> Optional[View]:
        if not is_view_group(group_name):
            return None
        return self.views.get(group_name.split("::", 1)[1])

    # -------------------------------------------------------------- routing
    def match_query(self, query: Query) -> Optional[View]:
        """A view whose definition matches this query's constraints exactly.

        Limit and freshness are delivery parameters, not constraints, so
        they are ignored for matching.
        """
        wanted = _constraint_key(query)
        for view in self.views.values():
            if _constraint_key(view.query) == wanted:
                return view
        return None

    def check_stale_view_groups(self) -> None:
        """Mirror of the DGM's stale-group recovery for view groups."""
        interval = self.service.config.report_interval
        cutoff = self.service.sim.now - 3 * interval
        for view in self.views.values():
            group = view.group
            if group.members and group.updated_at < cutoff:
                node_id = self.service.rng.choice(sorted(group.members))
                group.representatives.add(node_id)
                self.service.call(
                    node_id,
                    "node.be-representative",
                    {"group": group.name, "interval": interval},
                    on_reply=lambda result: None,
                )


def _constraint_key(query: Query) -> str:
    import json

    terms = sorted((t.name, t.lower, t.upper, t.equals) for t in query.terms)
    return json.dumps(terms)
