"""Exception hierarchy shared across the reproduction.

Every error raised by this package derives from :class:`ReproError` so callers
can catch package-level failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """A violation of the simulation kernel's invariants.

    Examples: scheduling an event in the past, or running a simulator that
    was already stopped.
    """


class NetworkError(ReproError):
    """Delivery-layer failure (unknown endpoint, endpoint unregistered)."""


class StoreError(ReproError):
    """Replicated store failure (quorum unreachable, unknown table)."""


class QuorumError(StoreError):
    """Not enough live replicas acknowledged a read or a write."""


class BrokerError(ReproError):
    """Message-queue broker failure (unknown queue, broker stopped)."""


class FocusError(ReproError):
    """Base class for FOCUS-service errors."""


class RegistrationError(FocusError):
    """A node registration request was malformed or rejected."""


class QueryError(FocusError):
    """A query was malformed (bad bounds, unknown attribute, bad limit)."""


class QueryTimeout(FocusError):
    """The query router gave up waiting for group responses (Section VIII-A3)."""


class GroupError(FocusError):
    """Group-management failure (unknown group, invalid cutoff)."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration combination (fail fast)."""
