"""Deterministic fault injection (chaos) for the FOCUS reproduction.

Build a declarative :class:`~repro.faults.plan.FaultPlan`, hand it to a
:class:`~repro.faults.engine.ChaosEngine`, run the simulation. Same seed +
same plan => byte-identical run; empty plan => byte-identical to no chaos
at all.
"""

from repro.faults.engine import ChaosEngine
from repro.faults.plan import (
    ChurnBurst,
    CrashNode,
    DegradeLink,
    FaultEvent,
    FaultPlan,
    PartitionRegions,
    PauseProcess,
    crash_storm,
)

__all__ = [
    "ChaosEngine",
    "ChurnBurst",
    "CrashNode",
    "DegradeLink",
    "FaultEvent",
    "FaultPlan",
    "PartitionRegions",
    "PauseProcess",
    "crash_storm",
]
