"""Deterministic chaos engine: executes a :class:`~repro.faults.plan.FaultPlan`.

The engine is *not* a :class:`~repro.sim.process.Process` on purpose: it owns
no network address, sends no messages and registers no endpoint, so attaching
one to a simulation leaves the fault-free event order — and therefore every
determinism checksum — byte-identical. All of its randomness (none today,
churn target selection tomorrow) comes from its own derived stream
(``chaos/<name>``), never from the streams the protocols draw on.

Targets are resolved at *fire* time, not at schedule time: a plan can name a
node that a churn burst only creates later, and crashing an address twice is
a logged no-op rather than an error (chaos should not crash the simulator).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.plan import (
    ChurnBurst,
    CrashNode,
    DegradeLink,
    FaultEvent,
    FaultPlan,
    PartitionRegions,
    PauseProcess,
)
from repro.sim.loop import Simulator
from repro.sim.network import Network


class ChaosEngine:
    """Schedules a fault plan against one simulation.

    ``targets`` maps address -> process for crash/pause events; processes
    created later (churn) can be registered with :meth:`track`. ``churn``
    is an object with ``join(count)``/``leave(count)`` (usually a
    :class:`~repro.workloads.churn.ChurnController`) — required only if the
    plan contains :class:`ChurnBurst` events.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        name: str = "chaos",
        targets: Optional[Dict[str, object]] = None,
        churn=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.targets: Dict[str, object] = dict(targets or {})
        self.churn = churn
        #: Own seeded stream: plans that draw (future randomized chaos)
        #: never perturb protocol RNGs.
        self.rng = sim.derive_rng(f"chaos/{name}")
        #: ``(time, action)`` strings, appended as faults actually fire —
        #: the failure suite embeds this in its resilience report.
        self.log: List[Tuple[float, str]] = []
        #: Faults that could not be applied (missing target, bad state).
        self.skipped: List[Tuple[float, str]] = []

    # -------------------------------------------------------------- plumbing
    def track(self, address: str, process) -> None:
        """Register (or replace) a crash/pause target."""
        self.targets[address] = process

    def _note(self, action: str) -> None:
        self.log.append((self.sim.now, action))

    def _skip(self, reason: str) -> None:
        self.skipped.append((self.sim.now, reason))

    def _resolve(self, address: str):
        target = self.targets.get(address)
        if target is not None:
            return target
        if self.network.is_registered(address):
            return self.network.endpoint(address)
        return None

    # ------------------------------------------------------------- execution
    def execute(self, plan: FaultPlan) -> None:
        """Schedule every event in ``plan``; empty plans schedule nothing.

        Scheduling nothing for an empty plan is a hard guarantee: enabling
        chaos with no faults must leave the simulation's event sequence
        untouched (asserted by the chaos smoke check).
        """
        for event in plan.sorted_events():
            self.sim.schedule(
                max(0.0, event.at - self.sim.now), self._fire, event
            )

    def _fire(self, event: FaultEvent) -> None:
        if isinstance(event, CrashNode):
            self._crash(event)
        elif isinstance(event, PartitionRegions):
            self._partition(event)
        elif isinstance(event, DegradeLink):
            self._degrade(event)
        elif isinstance(event, ChurnBurst):
            self._churn(event)
        elif isinstance(event, PauseProcess):
            self._pause(event)
        else:  # pragma: no cover - plan.add validates kinds implicitly
            self._skip(f"unknown fault kind {type(event).__name__}")

    # ----------------------------------------------------------- fault kinds
    def _crash(self, event: CrashNode) -> None:
        target = self._resolve(event.target)
        if target is None or not getattr(target, "running", False):
            self._skip(f"crash {event.target}: not running")
            return
        target.stop()
        if event.lose_state and hasattr(target, "wipe"):
            target.wipe()
        self._note(event.describe())
        if event.restart_after is not None:
            self.sim.schedule(event.restart_after, self._restart, target, event)

    def _restart(self, target, event: CrashNode) -> None:
        if getattr(target, "running", False):
            self._skip(f"restart {event.target}: already running")
            return
        target.restart()
        self._note(f"restart {event.target}")

    def _partition(self, event: PartitionRegions) -> None:
        for region_a in event.side_a:
            for region_b in event.side_b:
                self.network.partition_regions(region_a, region_b)
        self._note(event.describe())
        if event.heal_after is not None:
            self.sim.schedule(event.heal_after, self._heal, event)

    def _heal(self, event: PartitionRegions) -> None:
        for region_a in event.side_a:
            for region_b in event.side_b:
                self.network.heal_regions(region_a, region_b)
        self._note(f"heal {','.join(event.side_a)}|{','.join(event.side_b)}")

    def _degrade(self, event: DegradeLink) -> None:
        self.network.degrade_link(
            event.src,
            event.dst,
            latency_multiplier=event.latency_multiplier,
            loss_rate=event.loss_rate,
        )
        self._note(event.describe())
        if event.clear_after is not None:
            self.sim.schedule(event.clear_after, self._clear_degrade, event)

    def _clear_degrade(self, event: DegradeLink) -> None:
        self.network.clear_link_degradation(event.src, event.dst)
        self._note(f"clear degrade {event.src}~{event.dst}")

    def _churn(self, event: ChurnBurst) -> None:
        if self.churn is None:
            self._skip(f"churn burst at {event.at:g}: no churn controller")
            return
        self.churn.burst(
            joins=event.joins, leaves=event.leaves, spacing=event.spacing
        )
        self._note(event.describe())

    def _stall_group(self, target) -> List[object]:
        """A GC stall freezes the whole OS process: the target plus every
        co-located endpoint it owns (a node agent's serf agents)."""
        group = [target]
        for address in getattr(target, "endpoint_addresses", lambda: [])():
            if address != getattr(target, "address", None) and self.network.is_registered(
                address
            ):
                group.append(self.network.endpoint(address))
        return group

    def _pause(self, event: PauseProcess) -> None:
        target = self._resolve(event.target)
        if target is None or not getattr(target, "running", False):
            self._skip(f"pause {event.target}: not running")
            return
        if target.paused:
            self._skip(f"pause {event.target}: already paused")
            return
        group = self._stall_group(target)
        for process in group:
            if process.running and not process.paused:
                process.pause()
        self._note(event.describe())
        self.sim.schedule(event.resume_after, self._resume, group, event)

    def _resume(self, group: List[object], event: PauseProcess) -> None:
        resumed = False
        for process in group:
            if getattr(process, "running", False) and process.paused:
                process.resume()
                resumed = True
        if not resumed:
            self._skip(f"resume {event.target}: not paused")
            return
        self._note(f"resume {event.target}")

    # --------------------------------------------------------------- reports
    def fault_log(self) -> List[Dict[str, object]]:
        """The applied-fault timeline, JSON-ready."""
        return [{"t": t, "action": action} for t, action in self.log]


# Callable alias documented for harness writers: anything with this shape can
# serve as the engine's churn handler.
ChurnHandler = Callable[[int, int, float], None]
