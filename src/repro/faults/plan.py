"""Declarative fault schedules.

A :class:`FaultPlan` is a list of fault events pinned to simulation times.
Plans are plain data — building one has zero side effects on the simulation,
so the same plan can be rendered into docs, diffed between experiments, and
executed repeatedly with identical results. The
:class:`~repro.faults.engine.ChaosEngine` turns a plan into scheduled
callbacks.

Every event kind models one failure class from the FOCUS deployment story:

* :class:`CrashNode` — fail-stop crash of one process, with optional
  restart (durable recovery) or restart-after-wipe (state loss);
* :class:`PartitionRegions` — a WAN partition between region sets, with an
  optional scheduled heal;
* :class:`DegradeLink` — a flaky/congested link: latency multiplier and/or
  packet-loss override on one address pair;
* :class:`ChurnBurst` — a batch of node joins/leaves through the workload
  layer (flash crowd / correlated departure);
* :class:`PauseProcess` — a GC stall or frozen VM: the process stays
  registered but goes dark until the scheduled resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something bad happens at simulation time ``at``."""

    at: float

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.at:g}"


@dataclass(frozen=True)
class CrashNode(FaultEvent):
    """Fail-stop crash of the process registered at ``target``.

    ``restart_after`` (seconds after the crash) brings it back via the
    process's ``restart()`` hook; ``lose_state=True`` additionally calls the
    target's ``wipe()`` (if it has one) so recovery must come from peers.
    """

    target: str = ""
    restart_after: Optional[float] = None
    lose_state: bool = False

    def describe(self) -> str:
        tail = ""
        if self.restart_after is not None:
            tail = f" restart+{self.restart_after:g}"
            if self.lose_state:
                tail += " wiped"
        return f"crash {self.target}@{self.at:g}{tail}"


@dataclass(frozen=True)
class PartitionRegions(FaultEvent):
    """WAN partition: every region in ``side_a`` loses every one in ``side_b``."""

    side_a: Tuple[str, ...] = ()
    side_b: Tuple[str, ...] = ()
    heal_after: Optional[float] = None

    def describe(self) -> str:
        tail = f" heal+{self.heal_after:g}" if self.heal_after is not None else ""
        return (
            f"partition {','.join(self.side_a)}|{','.join(self.side_b)}"
            f"@{self.at:g}{tail}"
        )


@dataclass(frozen=True)
class DegradeLink(FaultEvent):
    """Per-link degradation between two addresses (both directions)."""

    src: str = ""
    dst: str = ""
    latency_multiplier: float = 1.0
    loss_rate: float = 0.0
    clear_after: Optional[float] = None

    def describe(self) -> str:
        tail = f" clear+{self.clear_after:g}" if self.clear_after is not None else ""
        return (
            f"degrade {self.src}~{self.dst}@{self.at:g} "
            f"x{self.latency_multiplier:g} loss={self.loss_rate:g}{tail}"
        )


@dataclass(frozen=True)
class ChurnBurst(FaultEvent):
    """A burst of ``joins`` node arrivals and ``leaves`` departures.

    Individual events are spread ``spacing`` seconds apart (0 = all at
    once). Delegated to the engine's churn handler — typically a
    :class:`~repro.workloads.churn.ChurnController` — because only the
    workload layer knows how to build and register new nodes.
    """

    joins: int = 0
    leaves: int = 0
    spacing: float = 0.0

    def describe(self) -> str:
        return f"churn +{self.joins}/-{self.leaves}@{self.at:g}"


@dataclass(frozen=True)
class PauseProcess(FaultEvent):
    """Freeze ``target`` (GC stall); resume ``resume_after`` seconds later."""

    target: str = ""
    resume_after: float = 1.0

    def describe(self) -> str:
        return f"pause {self.target}@{self.at:g} resume+{self.resume_after:g}"


@dataclass
class FaultPlan:
    """An ordered, validated schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append an event (chainable); rejects negative times up front."""
        if event.at < 0:
            raise ValueError(f"fault scheduled before t=0: {event!r}")
        if isinstance(event, PauseProcess) and event.resume_after <= 0:
            raise ValueError(f"pause must resume after a positive delay: {event!r}")
        self.events.append(event)
        return self

    def extend(self, events) -> "FaultPlan":
        for event in events:
            self.add(event)
        return self

    @property
    def empty(self) -> bool:
        return not self.events

    def sorted_events(self) -> List[FaultEvent]:
        """Events by time; ties keep insertion order (stable sort)."""
        return sorted(self.events, key=lambda e: e.at)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.sorted_events())

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> List[str]:
        """Human/report-friendly one-liners, in schedule order."""
        return [event.describe() for event in self.sorted_events()]


def crash_storm(
    targets: List[str],
    *,
    start: float,
    spacing: float = 0.0,
    restart_after: Optional[float] = None,
    lose_state: bool = False,
) -> FaultPlan:
    """Convenience builder: crash each target in sequence."""
    plan = FaultPlan()
    for i, target in enumerate(targets):
        plan.add(
            CrashNode(
                at=start + i * spacing,
                target=target,
                restart_after=restart_after,
                lose_state=lose_state,
            )
        )
    return plan

