"""Serf-equivalent gossip fabric.

Implements SWIM (Das et al., DSN 2002) — the membership protocol underneath
HashiCorp Serf, which the paper uses as its p2p fabric (§VIII) — plus
Serf-style user events and queries disseminated over the gossip channel.

Defaults match the paper's node-agent configuration (§VIII-B): gossip fanout
4 and gossip interval 100 ms, which lets a 400-node group converge in about
0.6 s (footnote 2).
"""

from repro.gossip.agent import SerfAgent, SerfConfig
from repro.gossip.broadcast import Broadcast, BroadcastQueue
from repro.gossip.coalesce import EventCoalescer
from repro.gossip.member import Member, MemberList, MemberState
from repro.gossip.membership import MembershipTable, NodeDirectory
from repro.gossip.probe import RegionProbeBatcher
from repro.gossip.swim import SwimAgent, SwimConfig

__all__ = [
    "Broadcast",
    "BroadcastQueue",
    "EventCoalescer",
    "Member",
    "MemberList",
    "MemberState",
    "MembershipTable",
    "NodeDirectory",
    "RegionProbeBatcher",
    "SerfAgent",
    "SerfConfig",
    "SwimAgent",
    "SwimConfig",
]
