"""Serf-style agent: user events and queries over the SWIM gossip channel.

The paper's node agents run one Serf client per attribute group (§VIII-B).
Two Serf features matter for FOCUS:

* **user events** — fire-and-forget broadcasts disseminated epidemically;
* **queries** — a member gossips a question to the whole group and every
  member sends its answer *directly* to the originating member (§VII,
  "Load-balanced Query Routing"), which aggregates and can finish early once
  every member in its local view has answered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.loop import Simulator
from repro.sim.network import Message, Network
from repro.gossip.membership import NodeDirectory
from repro.gossip.probe import RegionProbeBatcher
from repro.gossip.swim import SwimAgent, SwimConfig

QUERY_RESPONSE = "serf.query-resp"

#: Number of distinct event/query ids remembered for deduplication.
SEEN_BUFFER = 4096


@dataclass
class SerfConfig(SwimConfig):
    """SWIM knobs plus Serf query timing."""

    query_timeout: float = 1.0


class QueryCollector:
    """Aggregates direct responses for one in-flight group query."""

    __slots__ = (
        "query_id",
        "expected",
        "missing",
        "responses",
        "on_complete",
        "finished",
        "started_at",
    )

    def __init__(
        self,
        query_id: str,
        expected: List[str],
        on_complete: Callable[[Dict[str, object]], None],
        started_at: float,
    ) -> None:
        self.query_id = query_id
        self.expected = set(expected)
        self.missing = set(self.expected)
        self.responses: Dict[str, object] = {}
        self.on_complete = on_complete
        self.finished = False
        self.started_at = started_at

    def add(self, member_name: str, payload: object) -> None:
        self.responses[member_name] = payload
        self.missing.discard(member_name)

    @property
    def complete(self) -> bool:
        # Tracked incrementally: a subset check per response would make a
        # full-group query O(n^2) in the group size.
        return not self.missing

    def finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.on_complete(dict(self.responses))


class SerfAgent(SwimAgent):
    """A SWIM member that can originate and answer group events/queries."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        address: str,
        region: str,
        config: Optional[SerfConfig] = None,
        *,
        membership: str = "table",
        directory: Optional[NodeDirectory] = None,
        probe_batcher: Optional[RegionProbeBatcher] = None,
    ) -> None:
        super().__init__(
            sim,
            network,
            name,
            address,
            region,
            config or SerfConfig(),
            membership=membership,
            directory=directory,
            probe_batcher=probe_batcher,
        )
        self.event_handlers: Dict[str, Callable[[object, str], None]] = {}
        self.query_handlers: Dict[str, Callable[[object, str], object]] = {}
        self._event_seq = 0
        self._seen: set = set()
        self._seen_order: deque = deque()
        self._collectors: Dict[str, QueryCollector] = {}
        self.on(QUERY_RESPONSE, self._on_query_response)

    # --------------------------------------------------------------- handlers
    def on_event(self, name: str, handler: Callable[[object, str], None]) -> None:
        """Register a handler for user events named ``name``.

        ``handler(payload, origin_member_name)`` is called once per event.
        """
        self.event_handlers[name] = handler

    def on_query(self, name: str, handler: Callable[[object, str], object]) -> None:
        """Register a handler for group queries named ``name``.

        ``handler(payload, origin_member_name)`` must return the response
        payload to send back to the originator, or ``None`` to stay silent.
        """
        self.query_handlers[name] = handler

    # ------------------------------------------------------------ user events
    def user_event(self, name: str, payload: object) -> str:
        """Originate a user event; returns its id."""
        self._event_seq += 1
        event_id = f"{self.name}:e{self._event_seq}"
        wire = {"t": "e", "id": event_id, "en": name, "ep": payload, "o": self.name}
        self._remember(event_id)
        self._deliver_event(wire)
        self.broadcast_payload("event", event_id, wire)
        return event_id

    # ---------------------------------------------------------------- queries
    def query(
        self,
        name: str,
        payload: object,
        on_complete: Callable[[Dict[str, object]], None],
        *,
        timeout: Optional[float] = None,
    ) -> str:
        """Originate a group query from this member.

        Every member (including this one) runs its query handler and sends
        the answer directly back here. ``on_complete`` fires exactly once,
        with a dict of ``member name -> response payload``, either when all
        members in the local alive view have answered or at the timeout.
        """
        self._event_seq += 1
        query_id = f"{self.name}:q{self._event_seq}"
        wire = {
            "t": "q",
            "id": query_id,
            "qn": name,
            "qp": payload,
            "o": self.name,
            "ra": self.address,
        }
        expected = self.members.alive_names()
        collector = QueryCollector(query_id, expected, on_complete, self.sim.now)
        self._collectors[query_id] = collector
        self._remember(query_id)
        # Answer locally first (we are a member too).
        self._answer_query(wire)
        self.broadcast_payload("query", query_id, wire)
        query_timeout = timeout if timeout is not None else self.config.query_timeout  # type: ignore[attr-defined]
        self.after(query_timeout, self._query_deadline, query_id)
        return query_id

    def _query_deadline(self, query_id: str) -> None:
        collector = self._collectors.pop(query_id, None)
        if collector is not None:
            collector.finish()

    def _on_query_response(self, message: Message) -> None:
        payload = message.payload
        collector = self._collectors.get(payload["id"])
        if collector is None or collector.finished:
            return
        collector.add(payload["from"], payload["r"])
        if collector.complete:
            del self._collectors[payload["id"]]
            collector.finish()

    # ------------------------------------------------------------ gossip hook
    def handle_custom_update(self, wire: Dict[str, object]) -> None:
        # Only reachable for wires whose "t" routed them here, and every
        # event/query wire carries an "id" — plain subscripts, this runs once
        # per piggybacked update on every gossip delivery.
        kind = wire["t"]
        event_id = wire["id"]
        if event_id in self._seen:
            return
        self._remember(event_id)
        if kind == "e":
            self._deliver_event(wire)
            self.broadcast_payload("event", str(event_id), dict(wire))
        elif kind == "q":
            self._answer_query(wire)
            self.broadcast_payload("query", str(event_id), dict(wire))

    def _deliver_event(self, wire: Dict[str, object]) -> None:
        handler = self.event_handlers.get(str(wire["en"]))
        if handler is not None:
            handler(wire["ep"], str(wire["o"]))

    def _answer_query(self, wire: Dict[str, object]) -> None:
        handler = self.query_handlers.get(str(wire["qn"]))
        if handler is None:
            return
        response = handler(wire["qp"], str(wire["o"]))
        if response is None:
            return
        reply = {"id": wire["id"], "from": self.name, "r": response}
        if str(wire["ra"]) == self.address:
            # Local shortcut: we are the originator.
            collector = self._collectors.get(str(wire["id"]))
            if collector is not None:
                collector.add(self.name, response)
                if collector.complete:
                    del self._collectors[str(wire["id"])]
                    collector.finish()
            return
        self.send(str(wire["ra"]), QUERY_RESPONSE, reply)

    def _remember(self, event_id: object) -> None:
        self._seen.add(event_id)
        self._seen_order.append(event_id)
        while len(self._seen_order) > SEEN_BUFFER:
            self._seen.discard(self._seen_order.popleft())
