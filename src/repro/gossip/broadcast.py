"""Piggyback broadcast queue.

SWIM disseminates membership updates (and, in Serf, user events) by
piggybacking them on gossip and probe messages. Each broadcast is retransmitted
a bounded number of times — ``retransmit_mult * ceil(log2(n + 1))`` — which
gives epidemic dissemination with high probability while bounding bandwidth.

Broadcasts carry a ``key``: queueing a new broadcast with the same key
invalidates the old one (e.g. a newer state for the same member replaces the
older state still awaiting retransmission).
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Dict, List, Optional, Tuple

from repro.sim.network import SizedPayload, approx_size


class Broadcast:
    """One item awaiting epidemic retransmission.

    ``size`` is the estimated wire size of the payload, computed once at
    enqueue time so the gossip hot path never re-measures payloads.
    """

    __slots__ = ("key", "payload", "transmits_left", "size")

    def __init__(
        self,
        key: Tuple[str, str],
        payload: Dict[str, object],
        transmits_left: int,
        size: int,
    ) -> None:
        self.key = key
        self.payload = payload
        self.transmits_left = transmits_left
        self.size = size


def retransmit_limit(retransmit_mult: int, group_size: int) -> int:
    """Number of times each broadcast is retransmitted."""
    return retransmit_mult * int(math.ceil(math.log2(max(group_size, 1) + 1)))


class BroadcastQueue:
    """Bounded-retransmission broadcast queue.

    ``take(k)`` returns up to ``k`` payloads, preferring the least-transmitted
    broadcasts (so new information spreads fastest), and decrements their
    remaining transmit budget.
    """

    def __init__(self, retransmit_mult: int = 4) -> None:
        self.retransmit_mult = retransmit_mult
        self._queue: Dict[Tuple[str, str], Broadcast] = {}

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(
        self,
        key: Tuple[str, str],
        payload: Dict[str, object],
        group_size: int,
        *,
        transmits: Optional[int] = None,
        size: Optional[int] = None,
    ) -> None:
        limit = (
            transmits
            if transmits is not None
            else retransmit_limit(self.retransmit_mult, group_size)
        )
        if isinstance(payload, SizedPayload):
            # A caller that already sized the payload (e.g. for a direct
            # send) shares that measurement with the retransmission queue.
            if size is None:
                size = payload.size
            payload = payload.payload
        if size is None:
            size = approx_size(payload)
        self._queue[key] = Broadcast(key, payload, max(limit, 1), size)

    def invalidate(self, key: Tuple[str, str]) -> None:
        self._queue.pop(key, None)

    def take(self, max_items: int) -> List[Dict[str, object]]:
        """Pop up to ``max_items`` payloads for one outgoing message."""
        payloads, _ = self.take_with_size(max_items)
        return payloads

    def take_with_size(self, max_items: int) -> Tuple[List[Dict[str, object]], int]:
        """Like :meth:`take` but also returns the summed payload size."""
        if not self._queue or max_items <= 0:
            return [], 0
        # Least-transmitted first, so fresh information spreads fastest.
        if len(self._queue) <= max_items:
            selected = list(self._queue.values())
        else:
            selected = heapq.nlargest(
                max_items,
                self._queue.values(),
                key=operator.attrgetter("transmits_left"),
            )
        payloads = []
        total_size = 0
        for broadcast in selected:
            payloads.append(broadcast.payload)
            total_size += broadcast.size
            broadcast.transmits_left -= 1
            if broadcast.transmits_left <= 0:
                del self._queue[broadcast.key]
        return payloads, total_size

    def peek_keys(self) -> List[Tuple[str, str]]:
        return list(self._queue.keys())

    def clear(self) -> None:
        self._queue.clear()
