"""Event coalescing, as in Serf.

Serf coalesces bursts of user events: when many events of the same name
arrive within a short window (e.g. a wave of "member-updated" notifications
during churn), handlers see only the latest one per coalescing key instead
of every intermediate value. This keeps event consumers cheap during storms
while preserving the final state.

Usage::

    coalescer = EventCoalescer(sim, window=0.5, quiescence=0.1)
    agent.on_event("state-change", coalescer.wrap(handler, key=lambda p, o: o))

The ``key`` function buckets events; within a window only the newest payload
per bucket is delivered, when the window closes. ``quiescence`` mirrors
Serf's ``quiescentPeriod``: when the burst dies down — no new event for that
long — the window flushes early instead of holding the final state back for
the rest of the (much longer) coalescing period.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.sim.loop import Simulator


class EventCoalescer:
    """Coalesces handler invocations over a fixed window."""

    def __init__(
        self,
        sim: Simulator,
        *,
        window: float = 0.5,
        quiescence: Optional[float] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("coalescing window must be positive")
        if quiescence is not None and not 0 < quiescence < window:
            raise ValueError("quiescence must fall inside the window")
        self.sim = sim
        self.window = window
        self.quiescence = quiescence
        #: Buckets currently holding back events: key -> (payload, origin).
        self._pending: Dict[Hashable, Tuple[object, str]] = {}
        self._flush_scheduled = False
        #: Bumped on every flush so stale fire-and-forget callbacks (the
        #: hard deadline after an early quiescent flush, or superseded
        #: quiescence checks) recognise themselves and do nothing.
        self._epoch = 0
        self._last_event_at = 0.0
        self._handler: Optional[Callable[[object, str], None]] = None
        self._key: Optional[Callable[[object, str], Hashable]] = None
        self.delivered = 0
        self.coalesced = 0

    def wrap(
        self,
        handler: Callable[[object, str], None],
        *,
        key: Optional[Callable[[object, str], Hashable]] = None,
    ) -> Callable[[object, str], None]:
        """Wrap an event handler; returns the coalescing version.

        ``key`` buckets events (default: the event's origin member) — only
        the newest payload per bucket survives a window.
        """
        if self._handler is not None:
            raise RuntimeError("an EventCoalescer wraps exactly one handler")
        self._handler = handler
        self._key = key if key is not None else (lambda payload, origin: origin)

        def on_event(payload: object, origin: str) -> None:
            bucket = self._key(payload, origin)  # type: ignore[misc]
            if bucket in self._pending:
                self.coalesced += 1
            self._pending[bucket] = (payload, origin)
            self._last_event_at = self.sim.now
            if not self._flush_scheduled:
                self._flush_scheduled = True
                # Fire-and-forget: flushes are never cancelled, just
                # ignored when their epoch has already been flushed.
                self.sim.post(self.window, self._flush_deadline, self._epoch)
            if self.quiescence is not None:
                self.sim.post(self.quiescence, self._flush_if_quiet, self._epoch)

        return on_event

    def _flush_deadline(self, epoch: int) -> None:
        if epoch == self._epoch:
            self._flush()

    def _flush_if_quiet(self, epoch: int) -> None:
        """Early flush when the burst has gone quiet (Serf's quiescentPeriod).

        Each event schedules one of these; all but the last arrive to find a
        newer event inside their quiescence span and stand down.
        """
        if epoch != self._epoch:
            return
        if self.sim.now - self._last_event_at >= self.quiescence:  # type: ignore[operator]
            self._flush()

    def _flush(self) -> None:
        self._flush_scheduled = False
        self._epoch += 1
        pending, self._pending = self._pending, {}
        for payload, origin in pending.values():
            self.delivered += 1
            self._handler(payload, origin)  # type: ignore[misc]

    def flush_now(self) -> None:
        """Deliver anything held back immediately (for shutdown paths)."""
        if self._pending:
            self._flush()
