"""Event coalescing, as in Serf.

Serf coalesces bursts of user events: when many events of the same name
arrive within a short window (e.g. a wave of "member-updated" notifications
during churn), handlers see only the latest one per coalescing key instead
of every intermediate value. This keeps event consumers cheap during storms
while preserving the final state.

Usage::

    coalescer = EventCoalescer(sim, window=0.5)
    agent.on_event("state-change", coalescer.wrap(handler, key=lambda p, o: o))

The ``key`` function buckets events; within a window only the newest payload
per bucket is delivered, when the window closes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.sim.loop import Simulator


class EventCoalescer:
    """Coalesces handler invocations over a fixed window."""

    def __init__(self, sim: Simulator, *, window: float = 0.5) -> None:
        if window <= 0:
            raise ValueError("coalescing window must be positive")
        self.sim = sim
        self.window = window
        #: Buckets currently holding back events: key -> (payload, origin).
        self._pending: Dict[Hashable, Tuple[object, str]] = {}
        self._flush_scheduled = False
        self._handler: Optional[Callable[[object, str], None]] = None
        self._key: Optional[Callable[[object, str], Hashable]] = None
        self.delivered = 0
        self.coalesced = 0

    def wrap(
        self,
        handler: Callable[[object, str], None],
        *,
        key: Optional[Callable[[object, str], Hashable]] = None,
    ) -> Callable[[object, str], None]:
        """Wrap an event handler; returns the coalescing version.

        ``key`` buckets events (default: the event's origin member) — only
        the newest payload per bucket survives a window.
        """
        if self._handler is not None:
            raise RuntimeError("an EventCoalescer wraps exactly one handler")
        self._handler = handler
        self._key = key if key is not None else (lambda payload, origin: origin)

        def on_event(payload: object, origin: str) -> None:
            bucket = self._key(payload, origin)  # type: ignore[misc]
            if bucket in self._pending:
                self.coalesced += 1
            self._pending[bucket] = (payload, origin)
            if not self._flush_scheduled:
                self._flush_scheduled = True
                # Fire-and-forget: flushes are never cancelled.
                self.sim.post(self.window, self._flush)

        return on_event

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending, self._pending = self._pending, {}
        for payload, origin in pending.values():
            self.delivered += 1
            self._handler(payload, origin)  # type: ignore[misc]

    def flush_now(self) -> None:
        """Deliver anything held back immediately (for shutdown paths)."""
        if self._pending:
            self._flush()
