"""Membership records and the SWIM update-ordering rules.

The ordering rules (which update supersedes which) follow SWIM/memberlist:
incarnation numbers dominate; at equal incarnation, ``dead``/``left``
supersedes ``suspect`` supersedes ``alive``. A node refutes suspicion about
itself by bumping its incarnation and re-broadcasting ``alive``.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class MemberState(str, enum.Enum):
    """SWIM member lifecycle states; LEFT is the graceful variant of DEAD."""
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"
    LEFT = "left"


_STATE_RANK = {
    MemberState.ALIVE: 0,
    MemberState.SUSPECT: 1,
    MemberState.LEFT: 2,
    MemberState.DEAD: 2,
}

#: Fast lookups used on the gossip hot path (avoids Enum.__call__).
STATE_BY_VALUE = {state.value: state for state in MemberState}
RANK_BY_VALUE = {state.value: rank for state, rank in _STATE_RANK.items()}


def supersedes(
    new_state: MemberState,
    new_incarnation: int,
    old_state: MemberState,
    old_incarnation: int,
) -> bool:
    """True if an update ``(new_state, new_incarnation)`` should be applied."""
    if new_incarnation != old_incarnation:
        return new_incarnation > old_incarnation
    return _STATE_RANK[new_state] > _STATE_RANK[old_state]


class Member:
    """One member as seen by one agent (views may differ transiently)."""

    __slots__ = ("name", "address", "region", "incarnation", "state", "state_time")

    def __init__(
        self,
        name: str,
        address: str,
        region: str,
        incarnation: int = 0,
        state: MemberState = MemberState.ALIVE,
        state_time: float = 0.0,
    ) -> None:
        self.name = name
        self.address = address
        self.region = region
        self.incarnation = incarnation
        self.state = state
        self.state_time = state_time

    def to_wire(self) -> Dict[str, object]:
        """Compact dict for piggybacking on gossip messages."""
        return {
            "n": self.name,
            "a": self.address,
            "r": self.region,
            "i": self.incarnation,
            "s": self.state.value,
        }

    def wire_size(self) -> int:
        """Estimated JSON size of :meth:`to_wire`, cheap enough for hot paths."""
        return 48 + len(self.name) + len(self.address) + len(self.region)

    @classmethod
    def from_wire(cls, data: Dict[str, object], time: float) -> "Member":
        return cls(
            name=data["n"],  # type: ignore[arg-type]
            address=data["a"],  # type: ignore[arg-type]
            region=data["r"],  # type: ignore[arg-type]
            incarnation=data["i"],  # type: ignore[arg-type]
            state=STATE_BY_VALUE[data["s"]],  # type: ignore[index]
            state_time=time,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Member {self.name} {self.state.value} inc={self.incarnation}>"


class GossipDrawBlock:
    """Amortized k-of-n index draws for the v2 profile's gossip sampling.

    ``Generator.integers`` pays a few microseconds of pure-Python argument
    handling before the C draw, which at one call per gossip tick undid its
    win over ``rng.sample``. Indices are therefore drawn a block at a time
    and consumed from a plain list; the block is discarded whenever the
    candidate count changes so every index stays uniform over the current
    population. The (bound, draw) consumption sequence is a pure function
    of the generator state and the alive-count history — identical in both
    membership backends — so v2 runs stay byte-identical across backends.

    The block is sized for the per-agent consumption rate (a handful of
    draws per gossip tick): large blocks made the *first* refill of every
    agent in a big sweep generate three orders of magnitude more draws
    than the run consumed.
    """

    __slots__ = ("_block", "_pos", "_bound")

    SIZE = 64

    def __init__(self) -> None:
        self._block: List[int] = []
        self._pos = 0
        self._bound = -1

    def draw(self, np_rng, count: int, k: int) -> List[int]:
        """``k`` distinct uniform indices in ``[0, count)`` via rejection.

        ``k`` is the gossip fanout (tiny) while ``count`` is the alive
        population, so collisions are rare and the expected cost is ``k``
        list reads.
        """
        if self._bound != count:
            self._block = []
            self._pos = 0
            self._bound = count
        block = self._block
        pos = self._pos
        picked: List[int] = []
        while len(picked) < k:
            if pos >= len(block):
                block = np_rng.integers(0, count, size=self.SIZE).tolist()
                self._block = block
                pos = 0
            d = block[pos]
            pos += 1
            if d not in picked:
                picked.append(d)
        self._pos = pos
        return picked


class MemberList:
    """An agent's local view of the group."""

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        self._members: Dict[str, Member] = {}
        self._alive_cache: Optional[List[Member]] = None
        self._alive_count = 0
        self._suspicion_deadlines: Dict[str, float] = {}
        self._gossip_draws = GossipDrawBlock()

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Member]:
        return iter(self._members.values())

    def get(self, name: str) -> Optional[Member]:
        return self._members.get(name)

    def _count_delta(self, old: Optional[Member], new: Optional[Member]) -> None:
        if old is not None and old.state == MemberState.ALIVE:
            self._alive_count -= 1
        if new is not None and new.state == MemberState.ALIVE:
            self._alive_count += 1

    def upsert(self, member: Member) -> None:
        """Insert or unconditionally replace a member record."""
        self._count_delta(self._members.get(member.name), member)
        self._members[member.name] = member
        self._alive_cache = None

    def remove(self, name: str) -> None:
        old = self._members.pop(name, None)
        self._count_delta(old, None)
        self._suspicion_deadlines.pop(name, None)
        self._alive_cache = None

    def apply(self, update: Member) -> bool:
        """Apply an update if it supersedes the current record.

        Returns True if the view changed (the caller should re-broadcast).
        """
        current = self._members.get(update.name)
        if current is None:
            self._count_delta(None, update)
            self._members[update.name] = update
            self._alive_cache = None
            return True
        if supersedes(update.state, update.incarnation, current.state, current.incarnation):
            self._count_delta(current, update)
            self._members[update.name] = update
            self._alive_cache = None
            return True
        return False

    @property
    def alive_count(self) -> int:
        """Number of alive members, maintained incrementally (O(1))."""
        return self._alive_count

    def prewarm(self) -> None:
        """Backend-API twin of ``MembershipTable.prewarm``: build the lazy
        alive view at agent start instead of inside a measured region.
        Pure caching — runs are byte-identical with or without it."""
        self.alive()

    def alive(self, *, exclude_self: bool = False) -> List[Member]:
        if self._alive_cache is None:
            self._alive_cache = [
                m for m in self._members.values() if m.state == MemberState.ALIVE
            ]
        if exclude_self:
            return [m for m in self._alive_cache if m.name != self.self_name]
        return list(self._alive_cache)

    def alive_names(self, *, exclude_self: bool = False) -> List[str]:
        return [m.name for m in self.alive(exclude_self=exclude_self)]

    def permuted_alive_names(
        self, np_rng, *, exclude_self: bool = False
    ) -> List[str]:
        """Alive names permuted by a numpy ``Generator`` (v2 profile).

        Matches ``MembershipTable.permuted_alive_names`` draw-for-draw: both
        permute the same insertion-ordered alive view with one
        ``Generator.permutation(n)`` call, so the two backends stay
        bit-identical under v2 just as they are under v1.
        """
        names = self.alive_names(exclude_self=exclude_self)
        if len(names) < 2:
            return names
        return [names[i] for i in np_rng.permutation(len(names))]

    def suspects(self) -> List[Member]:
        return [m for m in self._members.values() if m.state == MemberState.SUSPECT]

    def snapshot_wire(self) -> List[Dict[str, object]]:
        """Full state for push-pull anti-entropy sync."""
        return [m.to_wire() for m in self._members.values()]

    def snapshot_size(self) -> int:
        """Estimated wire size of :meth:`snapshot_wire`."""
        return 2 + sum(m.wire_size() + 1 for m in self._members.values())

    # ----------------------------------------------------- selection helpers
    # Shared backend API with repro.gossip.membership.MembershipTable: the
    # SWIM agent only ever selects peers through these, so swapping the
    # backend cannot perturb the RNG draw sequence. Each helper makes at
    # most one rng draw, over the insertion-ordered alive view.
    def peek(self, name: str) -> Optional[Tuple[int, str]]:
        """``(incarnation, state value)`` or None, without a Member copy."""
        member = self._members.get(name)
        if member is None:
            return None
        return member.incarnation, member.state.value

    def gossip_targets(self, rng: random.Random, max_fanout: int) -> List[str]:
        """Addresses of up to ``max_fanout`` random alive peers."""
        peers = self.alive(exclude_self=True)
        if not peers:
            return []
        sampled = rng.sample(peers, min(max_fanout, len(peers)))
        return [member.address for member in sampled]

    def gossip_targets_v2(self, np_rng, max_fanout: int) -> List[str]:
        """v2-profile twin of :meth:`gossip_targets`; identical algorithm to
        ``MembershipTable.gossip_targets_v2`` over the same insertion-ordered
        alive view, so the two backends consume the generator identically."""
        peers = self.alive(exclude_self=True)
        count = len(peers)
        if not count:
            return []
        if max_fanout >= count:
            if count == 1:
                return [peers[0].address]
            perm = np_rng.permutation(count)
            return [peers[i].address for i in perm.tolist()]
        picked = self._gossip_draws.draw(np_rng, count, max_fanout)
        return [peers[d].address for d in picked]

    def sync_peer(self, rng: random.Random) -> Optional[str]:
        """Address of one random alive peer for push-pull anti-entropy."""
        peers = self.alive(exclude_self=True)
        if not peers:
            return None
        return rng.choice(peers).address

    def relay_sample(
        self, rng: random.Random, count: int, exclude_name: str
    ) -> List[str]:
        """Addresses of up to ``count`` relays for an indirect probe."""
        relays = [
            member
            for member in self.alive(exclude_self=True)
            if member.name != exclude_name
        ]
        if not relays:
            return []
        sampled = rng.sample(relays, min(count, len(relays)))
        return [member.address for member in sampled]

    def filter_superseding(
        self, updates: Sequence[Dict[str, object]]
    ) -> Sequence[Dict[str, object]]:
        """Reference backend: no prefilter, the apply loop drops stale ones."""
        return updates

    def expire_dead(self, cutoff: float) -> int:
        """Reclaim dead/left records older than ``cutoff``; returns count."""
        stale = [
            member.name
            for member in self._members.values()
            if member.state in (MemberState.DEAD, MemberState.LEFT)
            and member.state_time < cutoff
        ]
        for name in stale:
            self.remove(name)
        return len(stale)

    def set_suspicion_deadline(self, name: str, deadline: float) -> None:
        self._suspicion_deadlines[name] = deadline

    def due_suspects(self, now: float) -> List[str]:
        """Names of suspects whose suspicion deadline has passed."""
        deadlines = self._suspicion_deadlines
        return [
            member.name
            for member in self._members.values()
            if member.state == MemberState.SUSPECT
            and deadlines.get(member.name, float("inf")) <= now
        ]
