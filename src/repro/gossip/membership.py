"""Vectorized SWIM membership bookkeeping.

:class:`MembershipTable` is a drop-in replacement for
:class:`~repro.gossip.member.MemberList` that keeps the per-member protocol
state — alive/suspect/faulty status, incarnation numbers, suspicion
deadlines — in numpy arrays keyed by a **stable node index** instead of a
dict of :class:`~repro.gossip.member.Member` objects. Status filtering,
suspicion expiry, dead-member reclamation and stale-update rejection become
array operations; the selection views the protocol hot paths hit every tick
(alive peers, probe-target names, gossip/sync addresses, anti-entropy
snapshots) are cached and invalidated only when membership actually changes,
so a converged group pays O(1) per tick where the dict walk paid O(n).

Node identity is interned once in a :class:`NodeDirectory` — the stable
index allocator. Agents simulated in the same process can share one
directory, which shares the name/address/region strings, the per-node wire
sizes and the piggyback wire dicts across all views of the same node; a
table constructed without a directory makes a private one.

Semantics are pinned to ``MemberList`` two ways: Hypothesis property tests
drive both through random join/suspect/refute/fault sequences
(``tests/test_gossip_membership.py``), and a seeded full-protocol SWIM run
must be bit-identical — same event order, same RNG draws, same metrics —
under either backend (``tests/test_gossip_swim.py``).
"""

from __future__ import annotations

import random
from array import array
from collections.abc import Sequence as SequenceABC
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.gossip.member import (
    GossipDrawBlock,
    Member,
    MemberState,
    supersedes,
)

#: Dense state codes used in the numpy arrays.
CODE_ALIVE, CODE_SUSPECT, CODE_DEAD, CODE_LEFT = 0, 1, 2, 3

CODE_BY_VALUE = {"alive": 0, "suspect": 1, "dead": 2, "left": 3}
VALUE_BY_CODE = ("alive", "suspect", "dead", "left")
STATE_BY_CODE = (
    MemberState.ALIVE,
    MemberState.SUSPECT,
    MemberState.DEAD,
    MemberState.LEFT,
)
#: Update-ordering ranks per code; dead and left tie (see member.py).
_RANK_BY_CODE = np.array([0, 1, 2, 2], dtype=np.int8)
#: Keyed by enum member identity: Enum.value is a descriptor hop, this isn't.
CODE_BY_STATE = {state: CODE_BY_VALUE[state.value] for state in MemberState}

_NEVER = np.inf


class _SlotAddresses(SequenceABC):
    """Virtual sequence: addresses of the slots in an index array.

    Duck-types as the address list ``MemberList`` hands to ``rng.sample`` /
    ``rng.choice`` without materializing a per-agent list — the RNG draw
    sequence depends only on ``len()``, which matches by construction, and
    ``sample``/``choice`` touch only the few selected indices.
    """

    __slots__ = ("_arr", "_addresses")

    def __init__(self, arr: np.ndarray, addresses: List[str]) -> None:
        self._arr = arr
        self._addresses = addresses

    def __len__(self) -> int:
        return len(self._arr)

    def __getitem__(self, index: int) -> str:
        return self._addresses[self._arr[index]]


class NodeDirectory:
    """Global node universe: one stable index (*slot*) per node name.

    The directory interns everything about a node that is identical across
    every agent's view of it — name, address, region, estimated wire size,
    and the piggyback wire dicts for each ``(incarnation, state)`` the node
    has been seen in — so a 6400-agent simulation stores each of these once
    instead of once per agent.
    """

    def __init__(self) -> None:
        self._slot_of: Dict[str, int] = {}
        self.names: List[str] = []
        self.addresses: List[str] = []
        self.regions: List[str] = []
        self.region_ids: List[int] = []
        self._region_id_of: Dict[str, int] = {}
        self.region_names: List[str] = []
        self._wire_sizes: List[int] = []
        #: Per-slot interned wire dicts keyed by (incarnation, state code).
        self._wires: List[Dict[Tuple[int, int], Dict[str, object]]] = []
        # Object-array mirrors of names/addresses for vectorized view
        # rebuilds (fancy-index + tolist beats a Python listcomp ~10x at
        # 6400 slots). Built lazily, dropped whenever identity changes.
        self._names_np: Optional[np.ndarray] = None
        self._addrs_np: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.names)

    def slot_of(self, name: str) -> Optional[int]:
        return self._slot_of.get(name)

    def region_id(self, region: str) -> int:
        rid = self._region_id_of.get(region)
        if rid is None:
            rid = len(self.region_names)
            self._region_id_of[region] = rid
            self.region_names.append(region)
        return rid

    def intern(self, name: str, address: str, region: str) -> int:
        """Return ``name``'s stable slot, allocating one on first sight."""
        slot = self._slot_of.get(name)
        if slot is None:
            slot = len(self.names)
            self._slot_of[name] = slot
            self.names.append(name)
            self.addresses.append(address)
            self.regions.append(region)
            self.region_ids.append(self.region_id(region))
            self._wire_sizes.append(48 + len(name) + len(address) + len(region))
            self._wires.append({})
            self._names_np = None
            self._addrs_np = None
            return slot
        if self.addresses[slot] != address or self.regions[slot] != region:
            # A node re-registered under a new address/region: refresh the
            # interned identity and drop the now-stale wire dicts.
            self.addresses[slot] = address
            self.regions[slot] = region
            self.region_ids[slot] = self.region_id(region)
            self._wire_sizes[slot] = 48 + len(name) + len(address) + len(region)
            self._wires[slot] = {}
            self._names_np = None
            self._addrs_np = None
        return slot

    def name_array(self) -> np.ndarray:
        """Object-array view of :attr:`names` (lazily mirrored)."""
        if self._names_np is None or len(self._names_np) != len(self.names):
            self._names_np = np.array(self.names, dtype=object)
        return self._names_np

    def address_array(self) -> np.ndarray:
        """Object-array view of :attr:`addresses` (lazily mirrored)."""
        if self._addrs_np is None or len(self._addrs_np) != len(self.addresses):
            self._addrs_np = np.array(self.addresses, dtype=object)
        return self._addrs_np

    def wire_size(self, slot: int) -> int:
        return self._wire_sizes[slot]

    def wire_for(self, slot: int, incarnation: int, code: int) -> Dict[str, object]:
        """Interned piggyback dict for one ``(node, incarnation, state)``.

        Shared across every agent gossiping about that node state, and —
        because a changed state allocates a *new* dict rather than mutating
        the old one — safe to reference from in-flight messages.
        """
        cache = self._wires[slot]
        wire = cache.get((incarnation, code))
        if wire is None:
            wire = {
                "n": self.names[slot],
                "a": self.addresses[slot],
                "r": self.regions[slot],
                "i": incarnation,
                "s": VALUE_BY_CODE[code],
            }
            cache[(incarnation, code)] = wire
        return wire


class MembershipTable:
    """One agent's membership view, vectorized.

    API-compatible with :class:`~repro.gossip.member.MemberList` (``get`` /
    ``apply`` / ``upsert`` / ``alive`` / snapshots / the selection helpers),
    with the record state held in numpy arrays indexed by the shared
    :class:`NodeDirectory` slot. :class:`Member` objects are materialized
    on demand as *views* — nothing retains them, so an N-agent full-mesh
    simulation holds N arrays instead of N^2 member objects.

    Ordering contract (load-bearing for seeded-run equivalence): every list
    this table returns — alive members, probe-target names, gossip/sync/relay
    addresses, snapshots — is in *insertion order*, exactly like iterating
    ``MemberList``'s underlying dict. Removal followed by re-insertion moves
    a node to the end, like a dict re-insert.
    """

    def __init__(
        self, self_name: str, directory: Optional[NodeDirectory] = None
    ) -> None:
        self.self_name = self_name
        self.directory = directory if directory is not None else NodeDirectory()
        capacity = max(64, len(self.directory))
        self._known = np.zeros(capacity, dtype=bool)
        self._state = np.zeros(capacity, dtype=np.int8)
        self._inc = np.zeros(capacity, dtype=np.int64)
        self._state_time = np.zeros(capacity, dtype=np.float64)
        self._deadline = np.full(capacity, _NEVER, dtype=np.float64)
        #: pos[slot] == index of the slot's live entry in _order, else -1.
        self._pos = np.full(capacity, -1, dtype=np.int64)
        # Insertion order as a C int64 buffer, not a Python list: a list of
        # N distinct ints per table is N heap objects plus N GC-tracked refs,
        # which at 6400 nodes is ~41M of each across the population — the
        # cyclic collector then rescans all of it on every gen2 pass. The
        # array is opaque to the GC and mirrors into numpy via one memcpy.
        self._order = array("q")
        self._order_arr: Optional[np.ndarray] = None  # numpy mirror of _order
        self._count = 0
        self._alive_count = 0
        self._self_slot = -1
        # Deadlines set for names with no live record yet; MemberList keeps
        # these in a name-keyed dict, so they must survive until insertion.
        self._pending_deadline: Dict[str, float] = {}
        # Lazily rebuilt views; None means dirty. The base view is the
        # int64 array of alive slots; the name/address lists derive from it
        # independently so a path that never asks for one never builds it.
        self._alive_cache: Optional[np.ndarray] = None  # alive slots, in order
        self._alive_excl: Optional[np.ndarray] = None  # ... minus self
        self._snapshot: Optional[List[Dict[str, object]]] = None
        self._snapshot_size: Optional[int] = None
        self._gossip_draws = GossipDrawBlock()

    # ------------------------------------------------------------- invariants
    def _grow(self, slot: int) -> None:
        capacity = len(self._known)
        if slot < capacity:
            return
        new = max(capacity * 2, slot + 1)
        for attr, fill in (
            ("_known", False),
            ("_state", 0),
            ("_inc", 0),
            ("_state_time", 0.0),
            ("_deadline", _NEVER),
            ("_pos", -1),
        ):
            old = getattr(self, attr)
            grown = np.full(new, fill, dtype=old.dtype)
            grown[:capacity] = old
            setattr(self, attr, grown)

    def _invalidate(self, *, alive_changed: bool) -> None:
        if self._snapshot is not None or self._snapshot_size is not None:
            self._snapshot = None
            self._snapshot_size = None
        if alive_changed and self._alive_cache is not None:
            self._alive_cache = None
            self._alive_excl = None

    def _order_np(self, order: "array") -> np.ndarray:
        """Numpy mirror of ``_order``; rebuilt only when the buffer grew.

        ``tobytes`` + ``frombuffer`` is one memcpy (vs. an O(n) Python-level
        ``fromiter`` loop). A zero-copy ``frombuffer(order)`` view would be
        cheaper still, but a live buffer export makes ``array.append`` raise
        ``BufferError``, so the mirror must own its bytes.
        """
        mirror = self._order_arr
        if mirror is None or len(mirror) != len(order):
            mirror = np.frombuffer(order.tobytes(), dtype=np.int64)
            self._order_arr = mirror
        return mirror

    def _live_arr(self) -> np.ndarray:
        """Known slots in insertion order (compacts ``_order`` when stale)."""
        order = self._order
        arr = self._order_np(order)
        if len(order) == self._count:
            return arr
        live = self._pos[arr] == np.arange(len(order))
        kept = arr[live]
        if len(order) > 2 * self._count + 64:
            compacted = array("q")
            compacted.frombytes(kept.tobytes())
            self._order = compacted
            self._order_arr = kept
            self._pos[kept] = np.arange(len(kept))
        return kept

    def _live_slots(self) -> Sequence[int]:
        """Iterable twin of :meth:`_live_arr` for the Member-view paths."""
        if len(self._order) == self._count:
            return self._order
        return self._live_arr().tolist()

    _VECTOR_MIN = 64

    def prewarm(self) -> None:
        """Materialize the lazy numpy views (order mirror, alive caches).

        Agents call this at start so the first in-run probe or gossip tick
        doesn't pay the one-time O(population) view construction inside a
        measured region. Pure caching — the run is byte-identical with or
        without it.
        """
        self._alive_excl_arr()

    def _alive_arr(self) -> np.ndarray:
        """Alive slots in insertion order (int64; the base cached view)."""
        if self._alive_cache is None:
            arr = self._live_arr()
            if len(arr):
                arr = arr[self._state[arr] == CODE_ALIVE]
            self._alive_cache = arr
        return self._alive_cache

    def _alive_excl_arr(self) -> np.ndarray:
        if self._alive_excl is None:
            arr = self._alive_arr()
            self._alive_excl = arr[arr != self._self_slot] if len(arr) else arr
        return self._alive_excl

    def _take_names(self, arr: np.ndarray) -> List[str]:
        if len(arr) >= self._VECTOR_MIN:
            return self.directory.name_array()[arr].tolist()
        names = self.directory.names
        return [names[s] for s in arr.tolist()]

    # ------------------------------------------------------------- dict-like
    def __contains__(self, name: str) -> bool:
        slot = self.directory.slot_of(name)
        return slot is not None and bool(self._known[slot])

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Member]:
        return iter([self._view(slot) for slot in self._live_slots()])

    def _view(self, slot: int) -> Member:
        directory = self.directory
        return Member(
            directory.names[slot],
            directory.addresses[slot],
            directory.regions[slot],
            incarnation=int(self._inc[slot]),
            state=STATE_BY_CODE[self._state[slot]],
            state_time=float(self._state_time[slot]),
        )

    def get(self, name: str) -> Optional[Member]:
        slot = self.directory.slot_of(name)
        if slot is None or slot >= len(self._known) or not self._known[slot]:
            return None
        return self._view(slot)

    def peek(self, name: str) -> Optional[Tuple[int, str]]:
        """O(1) ``(incarnation, state value)`` without building a Member."""
        slot = self.directory.slot_of(name)
        if slot is None or slot >= len(self._known) or not self._known[slot]:
            return None
        return int(self._inc[slot]), VALUE_BY_CODE[self._state[slot]]

    # ---------------------------------------------------------------- writes
    def _write(self, slot: int, code: int, inc: int, state_time: float) -> None:
        was_known = self._known[slot]
        was_alive = was_known and self._state[slot] == CODE_ALIVE
        is_alive = code == CODE_ALIVE
        if not was_known:
            self._known[slot] = True
            self._count += 1
            self._pos[slot] = len(self._order)
            self._order.append(slot)
        self._state[slot] = code
        self._inc[slot] = inc
        self._state_time[slot] = state_time
        if was_alive != is_alive:
            self._alive_count += 1 if is_alive else -1
        self._invalidate(alive_changed=(was_alive != is_alive) or not was_known)

    def upsert(self, member: Member) -> None:
        """Insert or unconditionally replace a member record."""
        slot = self.directory.intern(member.name, member.address, member.region)
        if slot >= len(self._known):
            self._grow(slot)
        if member.name == self.self_name:
            self._self_slot = slot
        self._write(
            slot,
            CODE_BY_STATE[member.state],
            member.incarnation,
            member.state_time,
        )
        self._absorb_pending_deadline(member.name, slot)

    def _absorb_pending_deadline(self, name: str, slot: int) -> None:
        if self._pending_deadline:
            deadline = self._pending_deadline.pop(name, None)
            if deadline is not None:
                self._deadline[slot] = deadline

    def remove(self, name: str) -> None:
        if self._pending_deadline:
            self._pending_deadline.pop(name, None)
        slot = self.directory.slot_of(name)
        if slot is None or slot >= len(self._known) or not self._known[slot]:
            return
        self._known[slot] = False
        self._pos[slot] = -1
        self._deadline[slot] = _NEVER
        self._count -= 1
        if self._state[slot] == CODE_ALIVE:
            self._alive_count -= 1
        self._invalidate(alive_changed=True)

    def apply(self, update: Member) -> bool:
        """Apply ``update`` if it supersedes the current record.

        Returns True if the view changed (the caller should re-broadcast).
        Same ordering rules as :meth:`MemberList.apply`.
        """
        directory = self.directory
        slot = directory.slot_of(update.name)
        known = (
            slot is not None and slot < len(self._known) and self._known[slot]
        )
        if known and not supersedes(
            update.state,
            update.incarnation,
            STATE_BY_CODE[self._state[slot]],
            int(self._inc[slot]),
        ):
            # Stale: reject *before* interning, so a stale update carrying a
            # different address/region cannot refresh the shared identity.
            return False
        slot = directory.intern(update.name, update.address, update.region)
        if slot >= len(self._known):
            self._grow(slot)
        if update.name == self.self_name:
            self._self_slot = slot
        self._write(slot, CODE_BY_STATE[update.state], update.incarnation, update.state_time)
        self._absorb_pending_deadline(update.name, slot)
        return True

    # -------------------------------------------------------------- views
    @property
    def alive_count(self) -> int:
        """Number of alive members, maintained incrementally (O(1))."""
        return self._alive_count

    def alive(self, *, exclude_self: bool = False) -> List[Member]:
        arr = self._alive_excl_arr() if exclude_self else self._alive_arr()
        return [self._view(s) for s in arr.tolist()]

    def alive_names(self, *, exclude_self: bool = False) -> List[str]:
        # Always a fresh list the caller may own: holding materialized name
        # lists per agent is what the GC then has to scan every gen2 pass.
        arr = self._alive_excl_arr() if exclude_self else self._alive_arr()
        return self._take_names(arr)

    def permuted_alive_names(
        self, np_rng, *, exclude_self: bool = False
    ) -> List[str]:
        """Alive names in a random order drawn from a numpy ``Generator``.

        The v2-profile twin of ``alive_names`` + Fisher–Yates: one
        ``Generator.permutation`` over the slot array replaces the
        per-element Python shuffle loop, turning the probe-order reshuffle
        from O(n) interpreter iterations into one vectorized draw. The
        resulting order is a different (but still seed-deterministic) stream
        than the v1 shuffle — which is exactly what the v2 checksum admits.
        """
        arr = self._alive_excl_arr() if exclude_self else self._alive_arr()
        if len(arr) < 2:
            return self._take_names(arr)
        return self._take_names(arr[np_rng.permutation(len(arr))])

    def permuted_alive_slots(
        self, np_rng, *, exclude_self: bool = False
    ) -> np.ndarray:
        """Slot-array twin of :meth:`permuted_alive_names` (same RNG draws).

        Returning slots instead of materialized name lists keeps the
        per-agent probe order in an untracked numpy buffer: at 6400 nodes
        the name-list version put ~41M GC-tracked pointers back on the heap
        (one 6399-entry list per agent, built *after* the v2 warmup freeze),
        which every gen2 pass then rescanned. Names are resolved lazily, one
        probe target at a time, via :meth:`next_alive_in_order`.
        """
        arr = self._alive_excl_arr() if exclude_self else self._alive_arr()
        if len(arr) < 2:
            return arr
        return arr[np_rng.permutation(len(arr))]

    def next_alive_in_order(
        self, order: np.ndarray, start: int
    ) -> Tuple[int, Optional[str]]:
        """Walk ``order`` (a slot array) from ``start`` to the next alive
        member; returns ``(next_index, name-or-None)``.

        The skip condition (``known`` and currently alive) is exactly the
        ``peek(name)``-based filter of the name-list walk, so the sequence of
        probed names is identical to walking the materialized list.
        """
        state = self._state
        known = self._known
        names = self.directory.names
        idx = start
        n = len(order)
        while idx < n:
            slot = int(order[idx])
            idx += 1
            if known[slot] and state[slot] == CODE_ALIVE:
                return idx, names[slot]
        return idx, None

    def suspects(self) -> List[Member]:
        arr = self._live_arr()
        if not len(arr):
            return []
        return [self._view(s) for s in arr[self._state[arr] == CODE_SUSPECT].tolist()]

    # --------------------------------------------------- selection hot paths
    def gossip_targets(self, rng: random.Random, max_fanout: int) -> List[str]:
        """Addresses of up to ``max_fanout`` random alive peers.

        Exactly one ``rng.sample`` draw over the insertion-ordered alive
        view, matching ``MemberList.gossip_targets`` draw for draw.
        """
        arr = self._alive_excl_arr()
        count = len(arr)
        if not count:
            return []
        peers = _SlotAddresses(arr, self.directory.addresses)
        return rng.sample(peers, min(max_fanout, count))

    def gossip_targets_v2(self, np_rng, max_fanout: int) -> List[str]:
        """v2-profile twin of :meth:`gossip_targets` on a numpy ``Generator``.

        ``rng.sample`` was the single hottest per-tick RNG cost left at 6400
        nodes (one Mersenne draw per candidate, through a virtual-sequence
        ``__getitem__`` per hit). Here the k-of-n without-replacement draw is
        rejection-sampled from a :class:`~repro.gossip.member.GossipDrawBlock`
        of batched ``Generator.integers`` draws, amortizing the generator
        call over ~1k ticks. The draw sequence is a pure function of the
        generator state and the alive-count history, so the result stays
        deterministic and backend-independent (the MemberList twin runs the
        identical algorithm over the same insertion order).
        """
        arr = self._alive_excl_arr()
        count = len(arr)
        if not count:
            return []
        addresses = self.directory.addresses
        if max_fanout >= count:
            if count == 1:
                return [addresses[int(arr[0])]]
            perm = np_rng.permutation(count)
            return [addresses[s] for s in arr[perm].tolist()]
        picked = self._gossip_draws.draw(np_rng, count, max_fanout)
        return [addresses[int(arr[d])] for d in picked]

    def sync_peer(self, rng: random.Random) -> Optional[str]:
        """Address of one random alive peer for push-pull anti-entropy."""
        arr = self._alive_excl_arr()
        if not len(arr):
            return None
        return rng.choice(_SlotAddresses(arr, self.directory.addresses))

    def relay_sample(
        self, rng: random.Random, count: int, exclude_name: str
    ) -> List[str]:
        """Addresses of up to ``count`` relays for an indirect probe."""
        arr = self._alive_excl_arr()
        if len(arr):
            excluded = self.directory.slot_of(exclude_name)
            if excluded is not None:
                arr = arr[arr != excluded]
        if not len(arr):
            return []
        relays = _SlotAddresses(arr, self.directory.addresses)
        return rng.sample(relays, min(count, len(arr)))

    # -------------------------------------------------------------- batches
    def filter_superseding(
        self, updates: Sequence[Dict[str, object]]
    ) -> Sequence[Dict[str, object]]:
        """Drop updates that cannot change this view, in one array pass.

        Exactly the stale-update fast path of ``SwimAgent._apply_updates``
        (incarnation dominates; at equal incarnation dead/left > suspect >
        alive; updates about *self* and about unknown-but-living members are
        always kept), evaluated with numpy over the whole batch. Falls back
        to returning the batch untouched when it is small, contains
        non-membership payloads, or mentions the same member twice (the
        sequential loop must then see intermediate states).
        """
        n = len(updates)
        if n < 16:
            return updates
        try:
            names = [w["n"] for w in updates]
            incs = np.fromiter((w["i"] for w in updates), np.int64, count=n)
            codes = np.fromiter(
                (CODE_BY_VALUE[w["s"]] for w in updates), np.int8, count=n
            )
        except (KeyError, TypeError):
            return updates  # custom (non-membership) payloads in the batch
        if len(set(names)) != n:
            return updates
        slot_of = self.directory._slot_of
        slots = np.fromiter(
            (slot_of.get(name, -1) for name in names), np.int64, count=n
        )
        bounded = np.clip(slots, 0, len(self._known) - 1)
        known = (slots >= 0) & self._known[bounded]
        prev_inc = self._inc[bounded]
        prev_rank = _RANK_BY_CODE[self._state[bounded]]
        rank = _RANK_BY_CODE[codes]
        stale_known = known & (
            (incs < prev_inc) | ((incs == prev_inc) & (rank <= prev_rank))
        )
        dead_unknown = ~known & (codes >= CODE_DEAD)
        keep = ~(stale_known | dead_unknown)
        if self._self_slot >= 0:
            keep |= slots == self._self_slot
        if keep.all():
            return updates
        return [w for w, k in zip(updates, keep.tolist()) if k]

    def expire_dead(self, cutoff: float) -> int:
        """Reclaim dead/left records older than ``cutoff``; returns count."""
        arr = self._live_arr()
        if not len(arr):
            return 0
        stale = arr[
            (self._state[arr] >= CODE_DEAD) & (self._state_time[arr] < cutoff)
        ].tolist()
        names = self.directory.names
        for slot in stale:
            self.remove(names[slot])
        return len(stale)

    # ------------------------------------------------------------- suspicion
    def set_suspicion_deadline(self, name: str, deadline: float) -> None:
        slot = self.directory.slot_of(name)
        if slot is not None and slot < len(self._known) and self._known[slot]:
            self._deadline[slot] = deadline
        else:
            self._pending_deadline[name] = deadline

    def due_suspects(self, now: float) -> List[str]:
        """Names of suspects whose suspicion deadline has passed."""
        arr = self._live_arr()
        if not len(arr):
            return []
        due = arr[
            (self._state[arr] == CODE_SUSPECT) & (self._deadline[arr] <= now)
        ].tolist()
        names = self.directory.names
        return [names[s] for s in due]

    # ---------------------------------------------------------------- regions
    def region_mask(self, region: str) -> np.ndarray:
        """Known-member bitmap for one region (indexed by directory slot)."""
        rid = self.directory._region_id_of.get(region)
        mask = self._known.copy()
        if rid is None:
            mask[:] = False
            return mask
        ids = np.fromiter(
            self.directory.region_ids, dtype=np.int64, count=len(self.directory)
        )
        mask[: len(ids)] &= ids == rid
        mask[len(ids):] = False
        return mask

    def region_alive_counts(self) -> Dict[str, int]:
        """Alive members per region, one vectorized pass."""
        arr = self._alive_arr()
        region_ids = self.directory.region_ids
        counts: Dict[str, int] = {}
        if len(arr):
            ids = np.fromiter(region_ids, dtype=np.int64, count=len(region_ids))
            got = np.bincount(ids[arr], minlength=len(self.directory.region_names))
            for rid, count in enumerate(got.tolist()):
                if count:
                    counts[self.directory.region_names[rid]] = count
        return counts

    # --------------------------------------------------------------- snapshot
    def snapshot_wire(self) -> List[Dict[str, object]]:
        """Full state for push-pull sync; cached until membership changes."""
        if self._snapshot is None:
            directory = self.directory
            inc = self._inc
            state = self._state
            self._snapshot = [
                directory.wire_for(slot, int(inc[slot]), state[slot])
                for slot in self._live_slots()
            ]
        return self._snapshot

    def snapshot_size(self) -> int:
        """Estimated wire size of :meth:`snapshot_wire`; cached likewise."""
        if self._snapshot_size is None:
            arr = self._live_arr()
            sizes = np.fromiter(
                self.directory._wire_sizes,
                dtype=np.int64,
                count=len(self.directory),
            )
            self._snapshot_size = int(2 + (sizes[arr] + 1).sum()) if len(arr) else 2
        return self._snapshot_size
