"""Per-region batched SWIM probe scheduling.

A :class:`RegionProbeBatcher` coalesces every agent's probe timer in a
region into **one** recycled sentinel event per region, with the per-agent
next-fire deadlines and sequence numbers held in numpy arrays instead of one
heap entry (plus one queue entry, without the wheel) per agent. Each sentinel
firing services the due probe in a single array pass: ``argmin`` over the
region's deadline vector picks the head, the member is re-armed in place
(jitter drawn from its own RNG, sequence number from the queue's shared
counter, at exactly the moments per-timer scheduling would draw them), and
the sentinel is re-aimed at the new head's exact ``(time, seq)`` key.

Because the sentinel always adopts the head member's exact key and seq
allocation order is preserved, interleaving across regions — and with every
other event in the simulation — is *bit-identical* to per-agent
``RepeatingTimer`` scheduling (through the :class:`~repro.sim.loop.TimerWheel`
or not): same event order, same RNG draws, same ``events_processed``. This is
asserted by the seeded equivalence tests in ``tests/test_gossip_swim.py`` and
exercised at scale by ``bench_kernel.py swim_full``.

The paper's probe parameters (fanout 4, 100 ms gossip, 1 s probe period,
§VIII-B) are untouched: batching changes *bookkeeping*, not protocol timing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.events import Event
from repro.sim.loop import Simulator

_NEVER = np.inf


class BatchedProbeTimer:
    """Handle for one agent's probe slot; quacks like a RepeatingTimer."""

    __slots__ = ("_batcher", "_cls", "_index", "_callback", "_jitter", "_rng", "_stopped")

    def __init__(
        self,
        batcher: "RegionProbeBatcher",
        cls: "_RegionClass",
        index: int,
        callback: Callable[[], None],
        jitter: float,
        rng: random.Random,
    ) -> None:
        self._batcher = batcher
        self._cls = cls
        self._index = index
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._stopped = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def interval(self) -> float:
        return self._cls.interval

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._batcher._deactivate(self._cls, self._index)


class _RegionClass:
    """One region's probe round: deadline/seq vectors + the shared sentinel."""

    __slots__ = (
        "region",
        "interval",
        "due",
        "seq",
        "timers",
        "event",
        "target",
        "target_index",
        "scheduled",
        "active",
    )

    def __init__(self, region: str, interval: float) -> None:
        self.region = region
        self.interval = interval
        self.due = np.full(64, _NEVER, dtype=np.float64)
        self.seq = np.zeros(64, dtype=np.int64)
        self.timers: List[BatchedProbeTimer] = []
        self.event: Optional[Event] = None
        self.target: Optional[Tuple[float, int]] = None
        self.target_index = -1
        self.scheduled = False
        self.active = 0

    def head(self) -> int:
        """Index of the next due member, or -1; ties break on lowest seq."""
        count = len(self.timers)
        due = self.due[:count]
        if not count:
            return -1
        i = int(np.argmin(due))
        time = due[i]
        if time == _NEVER:
            return -1
        ties = np.flatnonzero(due == time)
        if len(ties) > 1:
            seq = self.seq[:count]
            i = int(ties[np.argmin(seq[ties])])
        return i


class RegionProbeBatcher:
    """Coalesces a region's probe timers into one vectorized timer class."""

    def __init__(self, sim: Simulator, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._queue = sim._queue
        self._alloc = sim._queue._seq.__next__
        self.interval = interval
        self._classes: Dict[str, _RegionClass] = {}

    def region_count(self) -> int:
        return len(self._classes)

    def pending_counts(self) -> Dict[str, int]:
        """Active probe slots per region (test/debug helper)."""
        return {region: cls.active for region, cls in self._classes.items()}

    def register(
        self,
        region: str,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> BatchedProbeTimer:
        """Add one agent's probe slot; first firing after interval + jitter.

        The jitter draw happens before the seq allocation, exactly like
        ``RepeatingTimer.start`` → ``TimerWheel.add``, so registration
        perturbs the RNG/seq streams identically to per-agent timers.
        """
        rng = rng if rng is not None else self._sim.rng
        interval = self.interval
        delay = interval + rng.uniform(0.0, jitter) if jitter > 0.0 else interval
        fire_time = self._sim.now + delay
        seq = self._queue.alloc_seq()
        cls = self._classes.get(region)
        if cls is None:
            cls = _RegionClass(region, interval)
            self._classes[region] = cls
        index = len(cls.timers)
        if index >= len(cls.due):
            grown_due = np.full(len(cls.due) * 2, _NEVER, dtype=np.float64)
            grown_due[:index] = cls.due
            cls.due = grown_due
            grown_seq = np.zeros(len(cls.seq) * 2, dtype=np.int64)
            grown_seq[:index] = cls.seq
            cls.seq = grown_seq
        timer = BatchedProbeTimer(self, cls, index, callback, jitter, rng)
        cls.timers.append(timer)
        cls.due[index] = fire_time
        cls.seq[index] = seq
        cls.active += 1
        key = (fire_time, seq)
        if not cls.scheduled or key < cls.target:
            self._retarget(cls)
        return timer

    def _deactivate(self, cls: _RegionClass, index: int) -> None:
        cls.due[index] = _NEVER
        cls.active -= 1
        if cls.scheduled and cls.target_index == index:
            self._retarget(cls)

    def _retarget(self, cls: _RegionClass) -> None:
        """Aim the region sentinel at the head member's exact ``(time, seq)``."""
        index = cls.head()
        queue = self._queue
        if index < 0:
            if cls.scheduled:
                cls.event.cancelled = True
                queue.note_cancelled()
                cls.event = None
                cls.scheduled = False
            cls.target = None
            cls.target_index = -1
            return
        key = (float(cls.due[index]), int(cls.seq[index]))
        if cls.scheduled:
            if cls.target == key:
                cls.target_index = index
                return
            # The queued sentinel entry is stale; tombstone it and use a
            # fresh Event (the old object stays behind as the tombstone).
            cls.event.cancelled = True
            queue.note_cancelled()
            cls.event = None
        event = cls.event
        if event is None:
            event = Event(key[0], key[1], self._fire_class, (cls,))
            cls.event = event
        else:
            event.time = key[0]
            event.seq = key[1]
        queue.push_entry(event)
        cls.scheduled = True
        cls.target = key
        cls.target_index = index

    def _fire_class(self, cls: _RegionClass) -> None:
        """Sentinel callback: fire the due member, re-arm, re-aim, in one pass.

        The sentinel fired *at* the target member's key (stops re-aim it
        eagerly), so the member is live and its deadline is the clock now.
        """
        index = cls.target_index
        timer = cls.timers[index]
        time = cls.due[index]
        # Re-arm before the callback, exactly like RepeatingTimer._fire: the
        # jitter draw and seq allocation happen at the same moments they
        # would under per-timer scheduling.
        jitter = timer._jitter
        if jitter > 0.0:
            next_time = time + cls.interval + timer._rng.uniform(0.0, jitter)
        else:
            next_time = time + cls.interval
        cls.due[index] = next_time
        cls.seq[index] = self._alloc()
        # Re-aim the sentinel at the new head; the just-fired sentinel event
        # is out of the queue and free to recycle.
        head = cls.head()
        event = cls.event
        event.time = float(cls.due[head])
        event.seq = int(cls.seq[head])
        cls.target = (event.time, event.seq)
        cls.target_index = head
        self._queue.push_entry(event)  # cls.scheduled stays True
        timer._callback()
