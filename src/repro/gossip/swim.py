"""SWIM membership agent.

Implements the protocol from "SWIM: Scalable Weakly-consistent Infection-style
Process Group Membership Protocol" (Das et al., DSN 2002) as deployed by
HashiCorp memberlist/Serf, which the paper uses as its p2p fabric:

* round-robin randomised probing with direct ping, indirect ping-req relays,
  and a suspicion period before declaring a member dead;
* incarnation numbers with self-refutation of suspicion;
* piggyback dissemination of membership updates over probe and gossip
  messages with bounded retransmissions;
* push-pull anti-entropy state sync on join and periodically thereafter.

One deliberate fidelity-preserving optimisation: like memberlist, the
dedicated gossip tick only *sends* when there are pending broadcasts, so an
idle group's background traffic is the probe traffic — which is what Fig. 8b
of the paper measures as "normal operation" (<2 KB/s even for 400-member
groups).

Membership bookkeeping is pluggable (``membership=`` constructor knob):
``"table"`` (default) stores the view in the vectorized
:class:`~repro.gossip.membership.MembershipTable`; ``"dict"`` keeps the
original :class:`~repro.gossip.member.MemberList`, retained as the reference
for equivalence tests and A/B benchmarks. The agent only touches membership
through the backend-neutral selection API (``gossip_targets`` /
``sync_peer`` / ``relay_sample`` / ``peek`` / snapshots), so both backends
produce bit-identical runs for the same seed. Probe scheduling can likewise
be handed to a shared :class:`~repro.gossip.probe.RegionProbeBatcher` via
``probe_batcher=``, which coalesces a whole region's probe round into one
recycled sentinel event without perturbing event order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.loop import Simulator
from repro.sim.network import Message, Network, SizedPayload
from repro.sim.process import Process
from repro.gossip.broadcast import BroadcastQueue
from repro.gossip.member import (
    RANK_BY_VALUE,
    STATE_BY_VALUE,
    Member,
    MemberList,
    MemberState,
)
from repro.gossip.membership import MembershipTable, NodeDirectory
from repro.gossip.probe import RegionProbeBatcher

PING = "swim.ping"
ACK = "swim.ack"
PING_REQ = "swim.ping-req"
GOSSIP = "swim.gossip"
SYNC_REQ = "swim.sync-req"
SYNC_RESP = "swim.sync-resp"


@dataclass
class SwimConfig:
    """Protocol timing knobs.

    ``gossip_interval`` and ``gossip_fanout`` default to the paper's node
    agent settings (§VIII-B): 100 ms and 4.
    """

    probe_interval: float = 1.0
    probe_timeout: float = 0.3
    indirect_probes: int = 3
    suspicion_mult: float = 4.0
    gossip_interval: float = 0.1
    gossip_fanout: int = 4
    piggyback_max: int = 8
    retransmit_mult: int = 4
    sync_interval: float = 30.0
    dead_reclaim_time: float = 60.0

    def suspicion_timeout(self, group_size: int) -> float:
        """memberlist-style suspicion window, scales with log of group size."""
        scale = math.log10(max(group_size, 1) + 1)
        return self.suspicion_mult * scale * self.probe_interval


def _shuffle_exact(x: List[str], getrandbits) -> None:
    """``random.shuffle`` inlined against raw ``getrandbits``.

    Draws the exact same bit sequence as ``random.shuffle`` (Fisher-Yates with
    rejection-sampled ``_randbelow``), so seeded runs are bit-identical, but
    skips the per-draw Python ``_randbelow`` call — ~1.85x faster on the large
    probe-order lists this module shuffles. (Bulk-pulling the underlying MT
    words via ``getrandbits(32 * j)`` was measured 2x *slower*: the cost is
    the per-element Python loop, not the ``getrandbits`` C calls.)
    """
    i = len(x) - 1
    if i < 1:
        return
    m = i + 1
    k = m.bit_length()
    threshold = 1 << (k - 1)
    while i > 0:
        if m < threshold:
            k -= 1
            threshold >>= 1
        r = getrandbits(k)
        while r >= m:
            r = getrandbits(k)
        x[i], x[r] = x[r], x[i]
        i -= 1
        m -= 1


@dataclass
class _PendingProbe:
    seq: int
    target: str  # member name
    indirect_sent: bool = False
    done: bool = False


@dataclass
class _RelayedPing:
    origin_addr: str
    origin_seq: int


class SwimAgent(Process):
    """One SWIM group member.

    Subclassed by :class:`~repro.gossip.agent.SerfAgent`, which adds
    Serf-style user events and queries on the same gossip channel.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        address: str,
        region: str,
        config: Optional[SwimConfig] = None,
        *,
        membership: str = "table",
        directory: Optional[NodeDirectory] = None,
        probe_batcher: Optional[RegionProbeBatcher] = None,
    ) -> None:
        super().__init__(sim, network, address, region)
        self.name = name
        self.config = config or SwimConfig()
        if membership == "table":
            self.members = MembershipTable(name, directory)
        elif membership == "dict":
            self.members = MemberList(name)
        else:
            raise ValueError(
                f"unknown membership backend {membership!r} "
                "(expected 'table' or 'dict')"
            )
        self.incarnation = 0
        self.broadcasts = BroadcastQueue(self.config.retransmit_mult)
        self.on_member_alive: List[Callable[[Member], None]] = []
        self.on_member_dead: List[Callable[[Member], None]] = []
        self._rng = sim.derive_rng(f"swim/{address}")
        # v2 profile: probe-order reshuffles come from a per-agent numpy
        # Generator (one vectorized permutation instead of an O(n) Python
        # Fisher-Yates); every other draw stays on ``_rng`` in both profiles.
        if getattr(sim, "profile", "v1") == "v2":
            self._np_rng = sim.derive_np_rng(f"swim/{address}")
        else:
            self._np_rng = None
        self._seq = 0
        self._pending_probes: Dict[int, _PendingProbe] = {}
        self._relayed: Dict[int, _RelayedPing] = {}
        self._probe_order: List[str] = []
        # v2 + MembershipTable: the probe order is a numpy slot array (no
        # GC-tracked name list); names resolve lazily per probe target.
        self._probe_order_slots = None
        self._probe_index = 0
        self._gossip_scheduled = False
        self._probe_batcher = probe_batcher
        self._self_wire_cache: Optional[Dict[str, object]] = None
        self._self_wire_size = 48 + len(name) + len(address) + len(region)
        self.members.upsert(self._self_member())

        self.on(PING, self._on_ping)
        self.on(ACK, self._on_ack)
        self.on(PING_REQ, self._on_ping_req)
        self.on(GOSSIP, self._on_gossip)
        self.on(SYNC_REQ, self._on_sync_req)
        self.on(SYNC_RESP, self._on_sync_resp)

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        batcher = self._probe_batcher
        if batcher is not None and batcher.interval != self.config.probe_interval:
            raise ValueError(
                f"probe batcher interval {batcher.interval} != "
                f"probe_interval {self.config.probe_interval}"
            )
        if batcher is not None:
            # Same RNG stream derivation as Process.every would use for this
            # timer slot, so batched and per-agent probe scheduling draw
            # identical jitter sequences.
            rng = self.sim.derive_rng(f"{self.address}/timer/{len(self._timers)}")
            handle = batcher.register(
                self.region,
                self._probe_tick,
                jitter=self.config.probe_interval * 0.1,
                rng=rng,
            )
            self._timers.append(handle)
        else:
            self.every(
                self.config.probe_interval,
                self._probe_tick,
                jitter=self.config.probe_interval * 0.1,
            )
        self.every(
            self.config.sync_interval,
            self._sync_tick,
            jitter=self.config.sync_interval * 0.2,
        )
        # A node that starts with a pre-seeded view (the converged steady
        # state every sweep begins from) materializes its membership caches
        # now, not lazily on the first in-run tick.
        self.members.prewarm()
        np_rng = self._np_rng
        if np_rng is not None:
            # v2: draw the first probe-order permutation now as well — it is
            # the single largest per-agent draw (O(population)) and would
            # otherwise land inside the measured region on the first probe
            # tick. Both membership backends pre-draw through the same
            # methods the first wrap would use, so the generator consumption
            # stays twinned across backends.
            members = self.members
            if hasattr(members, "permuted_alive_slots"):
                order = members.permuted_alive_slots(np_rng, exclude_self=True)
                if len(order):
                    self._probe_order_slots = order
                    self._probe_index = 0
            else:
                names = members.permuted_alive_names(np_rng, exclude_self=True)
                if names:
                    self._probe_order = names
                    self._probe_index = 0

    def join(self, entry_points: List[str]) -> None:
        """Join via push-pull sync with the given entry addresses."""
        self._broadcast_member(self._self_member())
        for entry in entry_points:
            if entry != self.address:
                self.send(
                    entry,
                    SYNC_REQ,
                    {"state": self.members.snapshot_wire()},
                    size=10 + self.members.snapshot_size(),
                )

    def leave(self) -> None:
        """Gracefully announce departure, flush gossip, then stop."""
        me = self._self_member()
        me.state = MemberState.LEFT
        self.members.upsert(me)
        self._broadcast_member(me)
        # Give the leave broadcast a few gossip rounds to flush, then crash.
        self.after(self.config.gossip_interval * 5, self.stop)

    # -------------------------------------------------------------- self info
    def _self_member(self) -> Member:
        return Member(
            self.name,
            self.address,
            self.region,
            incarnation=self.incarnation,
            state=MemberState.ALIVE,
            state_time=self.sim.now,
        )

    def _self_wire(self) -> Dict[str, object]:
        """``_self_member().to_wire()``, cached per incarnation.

        Probe traffic always advertises *alive* (a probing node is alive by
        definition), so the dict only changes on refutation. Receivers never
        mutate payloads, making the shared dict safe to put on the wire.
        """
        wire = self._self_wire_cache
        if wire is None or wire["i"] != self.incarnation:
            wire = {
                "n": self.name,
                "a": self.address,
                "r": self.region,
                "i": self.incarnation,
                "s": MemberState.ALIVE.value,
            }
            self._self_wire_cache = wire
        return wire

    def alive_members(self, *, exclude_self: bool = False) -> List[Member]:
        return self.members.alive(exclude_self=exclude_self)

    def group_size(self) -> int:
        return self.members.alive_count

    # ------------------------------------------------------------- broadcast
    def _broadcast_member(self, member: Member) -> None:
        payload = {"t": "m", **member.to_wire()}
        self.broadcasts.enqueue(
            ("member", member.name),
            payload,
            self.group_size(),
            size=member.wire_size() + 8,
        )
        self._ensure_gossip_scheduled()

    def broadcast_payload(self, key_kind: str, key_id: str, payload: Dict[str, object]) -> None:
        """Queue an arbitrary payload for epidemic dissemination (used by Serf)."""
        self.broadcasts.enqueue((key_kind, key_id), payload, self.group_size())
        self._ensure_gossip_scheduled()

    def _ensure_gossip_scheduled(self) -> None:
        if self._gossip_scheduled or not self.running:
            return
        self._gossip_scheduled = True
        self.post(self.config.gossip_interval, self._gossip_tick)

    def _gossip_tick(self) -> None:
        self._gossip_scheduled = False
        if self.broadcasts.empty:
            return
        if self._np_rng is not None:
            # v2: batched Generator.integers rejection sampling instead of
            # one Mersenne draw per candidate through rng.sample.
            targets = self.members.gossip_targets_v2(
                self._np_rng, self.config.gossip_fanout
            )
        else:
            targets = self.members.gossip_targets(
                self._rng, self.config.gossip_fanout
            )
        if targets:
            # One take() per tick: every selected peer receives the same
            # payload batch, matching memberlist's gossip behaviour. Sizing
            # happens once for the batch, not once per recipient.
            updates, size = self.broadcasts.take_with_size(self.config.piggyback_max)
            if updates:
                packet = SizedPayload({"u": updates}, size + 8)
                self.send_fanout(targets, GOSSIP, packet)
        if not self.broadcasts.empty:
            self._ensure_gossip_scheduled()

    def _piggyback(self, count: int = 3):
        """Updates to attach to a probe message, with their summed size."""
        return self.broadcasts.take_with_size(count)

    # ---------------------------------------------------------------- probing
    def _probe_tick(self) -> None:
        if self.paused:
            # Region-batched probe firings bypass Process.every's pause
            # guard; a frozen agent must not record probes it never sent.
            return
        target_name = self._next_probe_target()
        if target_name is None:
            return
        target = self.members.get(target_name)
        if target is None or target.state != MemberState.ALIVE:
            return
        self._seq += 1
        seq = self._seq
        self._pending_probes[seq] = _PendingProbe(seq=seq, target=target_name)
        updates, usize = self._piggyback()
        self.send(
            target.address,
            PING,
            {"seq": seq, "from": self._self_wire(), "u": updates},
            size=24 + self._self_wire_size + usize,
        )
        self.post(self.config.probe_timeout, self._direct_probe_timeout, seq)
        self.post(self.config.probe_timeout * 3, self._final_probe_timeout, seq)

    def _next_probe_target(self) -> Optional[str]:
        np_rng = self._np_rng
        if np_rng is not None and hasattr(self.members, "permuted_alive_slots"):
            return self._next_probe_target_slots(np_rng)
        # The alive view is only materialized on wrap — a probe tick that is
        # mid-round walks the existing shuffled order without touching it.
        if self._probe_index >= len(self._probe_order):
            if np_rng is not None:
                # v2: one vectorized permutation draw replaces the
                # per-element shuffle loop (the dominant cost of a wrap at
                # thousands of members).
                order = self.members.permuted_alive_names(
                    np_rng, exclude_self=True
                )
                if not order:
                    return None
                self._probe_order = order
            else:
                # alive_names returns a fresh list on both implementations,
                # so we can shuffle it in place without copying.
                alive = self.members.alive_names(exclude_self=True)
                if not alive:
                    return None
                self._probe_order = alive
                _shuffle_exact(self._probe_order, self._rng.getrandbits)
            self._probe_index = 0
        alive_value = MemberState.ALIVE.value
        while self._probe_index < len(self._probe_order):
            name = self._probe_order[self._probe_index]
            self._probe_index += 1
            peeked = self.members.peek(name)
            if peeked is not None and peeked[1] == alive_value:
                return name
        return self._next_probe_target()

    def _next_probe_target_slots(self, np_rng) -> Optional[str]:
        """v2 probe-order walk over a slot array instead of a name list.

        Draw-for-draw identical to the name-list path (one ``permutation``
        per wrap, the same known-and-alive skip filter), but the order lives
        in an untracked numpy buffer and names materialize one target at a
        time — see ``MembershipTable.permuted_alive_slots``.
        """
        members = self.members
        order = self._probe_order_slots
        if order is None or self._probe_index >= len(order):
            order = members.permuted_alive_slots(np_rng, exclude_self=True)
            if not len(order):
                return None
            self._probe_order_slots = order
            self._probe_index = 0
        self._probe_index, name = members.next_alive_in_order(
            order, self._probe_index
        )
        if name is not None:
            return name
        return self._next_probe_target_slots(np_rng)

    def _direct_probe_timeout(self, seq: int) -> None:
        probe = self._pending_probes.get(seq)
        if probe is None or probe.done or probe.indirect_sent:
            return
        probe.indirect_sent = True
        target = self.members.get(probe.target)
        if target is None:
            return
        relays = self.members.relay_sample(
            self._rng, self.config.indirect_probes, probe.target
        )
        if not relays:
            return
        target_wire = target.to_wire()
        me_wire = self._self_wire()
        wire_size = 24 + target.wire_size() + self._self_wire_size
        for relay_address in relays:
            self.send(
                relay_address,
                PING_REQ,
                {"seq": seq, "target": target_wire, "from": me_wire},
                size=wire_size,
            )

    def _final_probe_timeout(self, seq: int) -> None:
        probe = self._pending_probes.pop(seq, None)
        if probe is None or probe.done:
            return
        member = self.members.get(probe.target)
        if member is not None and member.state == MemberState.ALIVE:
            self._suspect(member)

    def _on_ping(self, message: Message) -> None:
        payload = message.payload
        self._apply_updates(payload.get("u", ()))
        self._apply_updates([payload["from"]])
        updates, usize = self._piggyback()
        self.send(
            message.src,
            ACK,
            {"seq": payload["seq"], "from": self._self_wire(), "u": updates},
            size=24 + self._self_wire_size + usize,
        )

    def _on_ack(self, message: Message) -> None:
        payload = message.payload
        self._apply_updates(payload.get("u", ()))
        self._apply_updates([payload["from"]])
        seq = payload["seq"]
        relay = self._relayed.pop(seq, None)
        if relay is not None:
            # We pinged on someone's behalf; forward the good news.
            self.send(
                relay.origin_addr,
                ACK,
                {"seq": relay.origin_seq, "from": payload["from"], "u": []},
                size=90,
            )
            return
        probe = self._pending_probes.pop(seq, None)
        if probe is not None:
            probe.done = True

    def _on_ping_req(self, message: Message) -> None:
        payload = message.payload
        self._apply_updates([payload["from"]])
        target = Member.from_wire(payload["target"], self.sim.now)
        self._seq += 1
        relay_seq = self._seq
        self._relayed[relay_seq] = _RelayedPing(message.src, payload["seq"])
        updates, usize = self._piggyback()
        self.send(
            target.address,
            PING,
            {"seq": relay_seq, "from": self._self_wire(), "u": updates},
            size=24 + self._self_wire_size + usize,
        )
        # Forget the relay if no ack arrives in time.
        self.post(self.config.probe_timeout * 2, self._relayed.pop, relay_seq, None)

    # -------------------------------------------------------------- suspicion
    def _suspect(self, member: Member) -> None:
        suspect = Member(
            member.name,
            member.address,
            member.region,
            incarnation=member.incarnation,
            state=MemberState.SUSPECT,
            state_time=self.sim.now,
        )
        if self.members.apply(suspect):
            self._broadcast_member(suspect)
            self._schedule_suspicion_timeout(suspect)

    def _schedule_suspicion_timeout(self, member: Member) -> None:
        deadline = self.sim.now + self.config.suspicion_timeout(self.group_size())
        self.members.set_suspicion_deadline(member.name, deadline)
        self.post(
            deadline - self.sim.now,
            self._suspicion_expired,
            member.name,
            member.incarnation,
        )

    def _suspicion_expired(self, name: str, incarnation: int) -> None:
        member = self.members.get(name)
        if (
            member is None
            or member.state != MemberState.SUSPECT
            or member.incarnation != incarnation
        ):
            return
        dead = Member(
            member.name,
            member.address,
            member.region,
            incarnation=member.incarnation,
            state=MemberState.DEAD,
            state_time=self.sim.now,
        )
        if self.members.apply(dead):
            self._broadcast_member(dead)
            self._notify_dead(dead)

    # ---------------------------------------------------------------- updates
    def _apply_updates(self, updates) -> None:
        for wire in updates:
            if wire.get("t", "m") != "m":
                self.handle_custom_update(wire)
                continue
            name = wire["n"]
            previous = self.members.peek(name)
            if previous is None and wire["s"] in (
                MemberState.DEAD.value,
                MemberState.LEFT.value,
            ):
                # A death notice for a node we never knew is pure garbage;
                # applying it would resurrect reclaimed tombstones forever
                # via anti-entropy merges.
                continue
            if previous is not None and name != self.name:
                # Fast path: drop stale updates without building objects.
                # Most gossip traffic is re-delivery of already-known state.
                inc = wire["i"]
                if inc < previous[0]:
                    continue
                if inc == previous[0] and (
                    RANK_BY_VALUE[wire["s"]] <= RANK_BY_VALUE[previous[1]]
                ):
                    continue
            update = Member.from_wire(wire, self.sim.now)
            if update.name == self.name:
                self._handle_update_about_self(update)
                continue
            previous_state = STATE_BY_VALUE[previous[1]] if previous is not None else None
            if self.members.apply(update):
                # Re-broadcast: epidemic dissemination requires forwarding
                # any update that changed our view.
                self._broadcast_member(update)
                if update.state == MemberState.SUSPECT:
                    self._schedule_suspicion_timeout(update)
                if update.state == MemberState.ALIVE and previous_state != MemberState.ALIVE:
                    self._notify_alive(update)
                if (
                    update.state in (MemberState.DEAD, MemberState.LEFT)
                    and previous_state not in (MemberState.DEAD, MemberState.LEFT)
                ):
                    self._notify_dead(update)

    def handle_custom_update(self, wire: Dict[str, object]) -> None:
        """Hook for subclasses (Serf user events); default ignores."""

    def _handle_update_about_self(self, update: Member) -> None:
        if update.state == MemberState.ALIVE:
            return
        if update.incarnation >= self.incarnation:
            # Refute: I am alive. Bump incarnation past the accusation.
            self.incarnation = update.incarnation + 1
            me = self._self_member()
            self.members.upsert(me)
            self._broadcast_member(me)

    def _notify_alive(self, member: Member) -> None:
        for callback in self.on_member_alive:
            callback(member)

    def _notify_dead(self, member: Member) -> None:
        for callback in self.on_member_dead:
            callback(member)

    # -------------------------------------------------------------- anti-entropy
    def _sync_tick(self) -> None:
        self._reclaim_dead()
        peer_address = self.members.sync_peer(self._rng)
        if peer_address is None:
            return
        self.send(
            peer_address,
            SYNC_REQ,
            {"state": self.members.snapshot_wire()},
            size=10 + self.members.snapshot_size(),
        )

    def _reclaim_dead(self) -> None:
        self.members.expire_dead(self.sim.now - self.config.dead_reclaim_time)

    def _on_sync_req(self, message: Message) -> None:
        self.send(
            message.src,
            SYNC_RESP,
            {"state": self.members.snapshot_wire()},
            size=10 + self.members.snapshot_size(),
        )
        self._merge_state(message.payload["state"])

    def _on_sync_resp(self, message: Message) -> None:
        self._merge_state(message.payload["state"])

    def _merge_state(self, state) -> None:
        # Anti-entropy snapshots are mostly re-delivery of known state; the
        # table backend drops the stale bulk in one vectorized pass (the
        # dict backend's filter is the identity and the loop does the work).
        self._apply_updates(self.members.filter_superseding(state))

    def _on_gossip(self, message: Message) -> None:
        self._apply_updates(message.payload.get("u", ()))
