"""Experiment harness: scenario builders, runners and result formatting.

Everything the benchmarks and examples share lives here, so each benchmark
file only describes its sweep and its expected shape.
"""

from repro.harness.runner import drain, run_queries, run_query
from repro.harness.scenarios import FocusScenario, build_focus_cluster

from repro.harness.report import format_table, print_table

__all__ = [
    "FocusScenario",
    "build_focus_cluster",
    "drain",
    "format_table",
    "print_table",
    "run_queries",
    "run_query",
]
