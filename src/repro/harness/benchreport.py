"""Turn a pytest-benchmark JSON file into a markdown results report.

Every benchmark stores its printed tables in ``extra_info`` (see
``benchmarks/conftest.py``); this module extracts them so results can be
published without re-parsing stdout::

    pytest benchmarks/ --benchmark-only --benchmark-json=results.json
    python -m repro.harness.benchreport results.json > RESULTS.md
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List


def extract_tables(benchmark_json: Dict) -> List[Dict]:
    """All result tables from a pytest-benchmark JSON document."""
    tables = []
    for bench in benchmark_json.get("benchmarks", ()):
        info = bench.get("extra_info") or {}
        for table in info.get("tables", ()):
            tables.append(
                {
                    "benchmark": bench.get("name", "?"),
                    "group": bench.get("group"),
                    "wall_seconds": (bench.get("stats") or {}).get("mean"),
                    "title": table["title"],
                    "headers": table["headers"],
                    "rows": table["rows"],
                }
            )
    return tables


def to_markdown(tables: List[Dict]) -> str:
    """Render extracted tables as a markdown report."""
    lines = ["# Benchmark results", ""]
    for table in tables:
        lines.append(f"## {table['title']}")
        wall = table.get("wall_seconds")
        meta = f"from `{table['benchmark']}`"
        if wall is not None:
            meta += f", {wall:.1f} s wall"
        lines.append(f"*({meta})*")
        lines.append("")
        lines.append("| " + " | ".join(table["headers"]) + " |")
        lines.append("|" + "---|" * len(table["headers"]))
        for row in table["rows"]:
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    """Read a benchmark JSON path from argv, print markdown to stdout."""
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.harness.benchreport <benchmark.json>",
              file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        document = json.load(handle)
    tables = extract_tables(document)
    if not tables:
        print("no result tables found (run benchmarks with extra_info tables)",
              file=sys.stderr)
        return 1
    print(to_markdown(tables))
    return 0


if __name__ == "__main__":
    sys.exit(main())
