"""System-comparison helpers shared by the benchmarks and the CLI.

Builds any of the six node-finding systems over an identical population and
measures central-site bandwidth under a fixed query stream — the Fig. 7a
methodology as a reusable function.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.config import FocusConfig
from repro.sim import Network, Simulator
from repro.workloads import node_spec_factory

#: Seed shared by comparison runs so populations are identical across systems.
DEFAULT_SEED = 1234


def build_finder(system: str, num_nodes: int, *, seed: int = DEFAULT_SEED,
                 config: Optional[FocusConfig] = None):
    """Build one node-finding system over the standard population."""
    from repro.baselines import (
        FocusFinder,
        HierarchyFinder,
        NaivePullFinder,
        NaivePushFinder,
        RabbitPubFinder,
        RabbitSubFinder,
    )
    from repro.harness.scenarios import build_focus_cluster

    factory = node_spec_factory(seed=seed)
    if system == "focus":
        scenario = build_focus_cluster(
            num_nodes,
            seed=seed,
            config=config,
            warm_start=True,
            with_store=False,
            record_bandwidth_events=False,
            node_factory=factory,
        )
        return FocusFinder(scenario)
    sim = Simulator(seed=seed)
    network = Network(sim, record_bandwidth_events=False)
    builders: Dict[str, Callable] = {
        "naive-push": lambda: NaivePushFinder(
            sim, network, num_nodes=num_nodes, node_factory=factory),
        "naive-pull": lambda: NaivePullFinder(
            sim, network, num_nodes=num_nodes, node_factory=factory),
        "hierarchy": lambda: HierarchyFinder(
            sim, network, num_nodes=num_nodes, node_factory=factory),
        "rabbitmq-pub": lambda: RabbitPubFinder(
            sim, network, num_nodes=num_nodes, node_factory=factory),
        "rabbitmq-sub": lambda: RabbitSubFinder(
            sim, network, num_nodes=num_nodes, node_factory=factory),
    }
    try:
        return builders[system]()
    except KeyError:
        raise ValueError(f"unknown system {system!r}") from None


def measure_bandwidth(
    finder,
    queries,
    *,
    warmup: float = 5.0,
    query_interval: float = 1.0,
    settle: float = 5.0,
) -> Dict[str, float]:
    """Drive queries at a fixed rate; return server bandwidth and responses."""
    sim = finder.sim
    sim.run_until(sim.now + warmup)
    finder.reset_server_bandwidth()
    start = sim.now
    responses: List[dict] = []
    for index, query in enumerate(queries):
        sim.schedule_at(start + index * query_interval, finder.query, query,
                        responses.append)
    end = start + len(queries) * query_interval + settle
    sim.run_until(end)
    window = end - start
    return {
        "bandwidth_kbps": finder.server_bandwidth_bytes() / window / 1024.0,
        "responses": len(responses),
        "matches": sum(len(r.get("matches", ())) for r in responses),
    }


def comparison_queries(count: int, *, seed: int = 2, limit=None):
    """The standard grouped placement query mix used for comparisons."""
    from repro.workloads.querygen import grouped_placement_query

    rng = random.Random(seed)
    return [grouped_placement_query(rng, limit=limit) for _ in range(count)]
