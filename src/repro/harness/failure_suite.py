"""Seeded failure scenarios with a quantitative resilience report.

Each scenario builds a warm-started FOCUS deployment, schedules faults
through the :class:`~repro.faults.engine.ChaosEngine`, and measures the
system's behaviour with a 1 Hz *probe*: a match-all live query (freshness 0)
whose ground truth — the set of agents actually running when the probe was
issued — is known exactly inside the simulator. From the probe stream we
derive the three numbers the paper's failure story (§VIII) cares about:

* **detection latency** — fault time until the first answer that reflects
  the fault (a crashed node missing, or the server timing out);
* **false-negative / stale-answer rates** inside the fault window — live
  nodes missing from answers, dead nodes still present;
* **re-convergence time** — heal/restart time until the last incorrect
  answer.

Everything is driven by the sim clock and seeded RNG streams, so the same
seed produces a byte-identical report — ``checksum`` at the top level is a
sha256 over the canonical JSON, and the chaos smoke check holds it stable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.core.admission import CircuitBreaker, OverloadConfig
from repro.core.config import FocusConfig
from repro.core.query import Query, QueryTerm
from repro.faults import (
    ChaosEngine,
    ChurnBurst,
    CrashNode,
    FaultPlan,
    PartitionRegions,
)
from repro.harness.runner import drain
from repro.harness.scenarios import FocusScenario, build_focus_cluster
from repro.workloads.churn import ChurnController
from repro.workloads.querygen import (
    LoadPhase,
    OpenLoopLoad,
    QueryWorkload,
    flash_crowd_phases,
    thundering_herd_offsets,
)

#: Probe cadence; 1 Hz gives ±0.5 s resolution on latency numbers.
PROBE_INTERVAL = 1.0

#: Per-probe query timeout. Longer than the server's own fanout timeout
#: (``query_timeout`` = 3 s), so a *partial* answer from a degraded server
#: reaches the probe and shows up as false negatives; only a dead or
#: unreachable server turns probes into timeouts.
PROBE_TIMEOUT = 6.0


class ResilienceProbe:
    """Issues the match-all probe on a fixed schedule and keeps the ledger."""

    def __init__(self, scenario: FocusScenario) -> None:
        self.scenario = scenario
        self.query = Query(
            [QueryTerm.at_least("ram_mb", 0.0)], limit=None, freshness_ms=0.0
        )
        #: ``(issued_at, expected, observed, timed_out)``; ``expected`` is
        #: captured at issue time — the simulator's exact ground truth.
        self.samples: List[Tuple[float, frozenset, frozenset, bool]] = []

    def schedule(self, start: float, end: float) -> None:
        t = start
        i = 0
        while t <= end:
            self.scenario.sim.schedule_at(t, self._issue)
            i += 1
            t = start + i * PROBE_INTERVAL

    def _issue(self) -> None:
        issued_at = self.scenario.sim.now
        expected = frozenset(
            agent.node_id for agent in self.scenario.agents if agent.running
        )

        def record(response) -> None:
            self.samples.append(
                (
                    issued_at,
                    expected,
                    frozenset(response.node_ids),
                    response.timed_out,
                )
            )

        self.scenario.app.client.query(self.query, record, timeout=PROBE_TIMEOUT)

    # ------------------------------------------------------------- analysis
    def detection_latency(
        self, fault_time: float, victims: frozenset
    ) -> Optional[float]:
        """Fault time -> first answer missing every victim (or timing out)."""
        for issued_at, _expected, observed, timed_out in sorted(self.samples):
            if issued_at < fault_time:
                continue
            if timed_out or not (victims & observed):
                return issued_at - fault_time
        return None

    def timeout_detection_latency(self, fault_time: float) -> Optional[float]:
        for issued_at, _expected, _observed, timed_out in sorted(self.samples):
            if issued_at >= fault_time and timed_out:
                return issued_at - fault_time
        return None

    def window_rates(self, start: float, end: float) -> Dict[str, float]:
        """False-negative and stale-answer rates over probes in [start, end)."""
        expected_total = 0
        missing_total = 0
        observed_total = 0
        stale_total = 0
        timeouts = 0
        polls = 0
        for issued_at, expected, observed, timed_out in self.samples:
            if not start <= issued_at < end:
                continue
            polls += 1
            if timed_out:
                timeouts += 1
                continue
            expected_total += len(expected)
            missing_total += len(expected - observed)
            observed_total += len(observed)
            stale_total += len(observed - expected)
        return {
            "polls": polls,
            "timeouts": timeouts,
            "false_negative_rate": (
                missing_total / expected_total if expected_total else 0.0
            ),
            "stale_answer_rate": (
                stale_total / observed_total if observed_total else 0.0
            ),
        }

    def reconvergence(self, heal_time: float) -> float:
        """Heal time -> last incorrect answer after it (0 = instantly clean)."""
        worst = heal_time
        for issued_at, expected, observed, timed_out in self.samples:
            if issued_at < heal_time:
                continue
            if timed_out or expected != observed:
                worst = max(worst, issued_at)
        return worst - heal_time


def _build(
    seed: int,
    num_nodes: int,
    shards: int = 1,
    config: Optional[FocusConfig] = None,
) -> Tuple[FocusScenario, ChaosEngine]:
    if config is None:
        config = FocusConfig(shards=shards) if shards > 1 else None
    scenario = build_focus_cluster(
        num_nodes,
        seed=seed,
        config=config,
        warm_start=True,
        with_store=True,
        record_bandwidth_events=False,
    )
    targets = {service.address: service for service in scenario.services}
    if scenario.plane is not None and scenario.plane.router is not None:
        targets[scenario.plane.router.address] = scenario.plane.router
    engine = ChaosEngine(
        scenario.sim,
        scenario.network,
        targets=targets,
        churn=ChurnController(scenario),
    )
    for agent in scenario.agents:
        engine.track(agent.node_id, agent)
    drain(scenario, 3.0)
    return scenario, engine


def _finish(
    name: str,
    seed: int,
    scenario: FocusScenario,
    engine: ChaosEngine,
    probe: ResilienceProbe,
    *,
    fault_time: float,
    heal_time: float,
    detection: Optional[float],
) -> Dict[str, object]:
    counters = {
        counter_name: scenario.network.metrics.counter(counter_name).value
        for counter_name in scenario.network.metrics.names()["counters"]
    }
    report: Dict[str, object] = {
        "scenario": name,
        "seed": seed,
        "num_nodes": len(scenario.agents),
        "fault_log": engine.fault_log(),
        "skipped_faults": [
            {"t": t, "reason": reason} for t, reason in engine.skipped
        ],
        "fault_window": probe.window_rates(fault_time, heal_time),
        "detection_latency_s": detection,
        "reconvergence_s": probe.reconvergence(heal_time),
        "counters": counters,
    }
    return report


def run_single_node_crash(seed: int = 0, num_nodes: int = 24) -> Dict[str, object]:
    """Crash one agent; restart it (durable state) 12 s later."""
    scenario, engine = _build(seed, num_nodes)
    t0 = scenario.sim.now
    victim = scenario.agents[num_nodes // 2].node_id
    fault_at, restart_after = t0 + 5.0, 12.0
    engine.execute(
        FaultPlan().add(
            CrashNode(at=fault_at, target=victim, restart_after=restart_after)
        )
    )
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 45.0)
    return _finish(
        "single-node-crash", seed, scenario, engine, probe,
        fault_time=fault_at,
        heal_time=fault_at + restart_after,
        detection=probe.detection_latency(fault_at, frozenset({victim})),
    )


def run_region_partition(seed: int = 0, num_nodes: int = 24) -> Dict[str, object]:
    """Partition the server's region from one peer region; heal after 15 s."""
    scenario, engine = _build(seed, num_nodes)
    regions = [r.name for r in scenario.network.topology.regions]
    t0 = scenario.sim.now
    fault_at, heal_after = t0 + 5.0, 15.0
    engine.execute(
        FaultPlan().add(
            PartitionRegions(
                at=fault_at,
                side_a=(regions[0],),
                side_b=(regions[1],),
                heal_after=heal_after,
            )
        )
    )
    far_side = frozenset(
        agent.node_id for agent in scenario.agents if agent.region == regions[1]
    )
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 45.0)
    return _finish(
        "region-partition", seed, scenario, engine, probe,
        fault_time=fault_at,
        heal_time=fault_at + heal_after,
        detection=probe.detection_latency(fault_at, far_side),
    )


def run_churn_storm(seed: int = 0, num_nodes: int = 30) -> Dict[str, object]:
    """10% of the fleet leaves while an equal cohort joins, 4 Hz spacing."""
    scenario, engine = _build(seed, num_nodes)
    t0 = scenario.sim.now
    cohort = max(1, num_nodes // 10)
    fault_at, spacing = t0 + 5.0, 0.25
    engine.execute(
        FaultPlan().add(
            ChurnBurst(at=fault_at, joins=cohort, leaves=cohort, spacing=spacing)
        )
    )
    # The storm "heals" once its last action has fired and had a settling
    # period: joins must register and gossip their way into groups.
    heal_time = fault_at + 2 * cohort * spacing + 10.0
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 45.0)
    return _finish(
        "churn-storm", seed, scenario, engine, probe,
        fault_time=fault_at,
        heal_time=heal_time,
        detection=None,
    )


def run_server_failover(seed: int = 0, num_nodes: int = 24) -> Dict[str, object]:
    """Crash the FOCUS server; restart + store recovery 10 s later."""
    scenario, engine = _build(seed, num_nodes)
    t0 = scenario.sim.now
    fault_at, restart_after = t0 + 5.0, 10.0
    engine.execute(
        FaultPlan().add(
            CrashNode(
                at=fault_at,
                target=scenario.service.address,
                restart_after=restart_after,
            )
        )
    )
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 45.0)
    return _finish(
        "focus-server-failover", seed, scenario, engine, probe,
        fault_time=fault_at,
        heal_time=fault_at + restart_after,
        detection=probe.timeout_detection_latency(fault_at),
    )


def run_shard_failover(seed: int = 0, num_nodes: int = 24) -> Dict[str, object]:
    """Crash one shard of a 4-way plane; restart + store recovery 10 s later.

    The victim is the shard owning the probe's routed family (``ram_mb.0``),
    so every probe inside the fault window loses exactly that shard's
    partial answer: probes surface as partial/timed-out results (the router
    merges what the live shards returned), while the other shards keep
    serving their families — the isolation property the sharding buys.
    Recovery mirrors the single-server failover: registrations reload from
    the store, group tables rebuild from representative reports.
    """
    scenario, engine = _build(seed, num_nodes, shards=4)
    plane = scenario.plane
    assert plane is not None and plane.router is not None
    victim = plane.router.shard_map.owner("ram_mb.0")
    victim_service = next(s for s in plane.shards if s.address == victim)
    owned_families = len({
        g.name.split("#", 1)[0].partition("@")[0]
        for g in victim_service.dgm.groups.all_groups()
    })
    t0 = scenario.sim.now
    fault_at, restart_after = t0 + 5.0, 10.0
    engine.execute(
        FaultPlan().add(
            CrashNode(at=fault_at, target=victim, restart_after=restart_after)
        )
    )
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 45.0)
    report = _finish(
        "shard-failover", seed, scenario, engine, probe,
        fault_time=fault_at,
        heal_time=fault_at + restart_after,
        detection=probe.timeout_detection_latency(fault_at),
    )
    report["shards"] = len(plane.shards)
    report["victim_shard"] = victim
    report["victim_owned_families"] = owned_families
    return report


# --------------------------------------------------------------- overload
# The three overload scenarios drive the CPU service-time model
# (core/cpumodel.py) and the admission defenses (core/admission.py): a
# flash-crowd query storm, a thundering-herd re-registration burst after a
# partition heal, and hot-key attribute skew that saturates one shard.
# Each report carries an ``asserts`` dict of named booleans — the contract
# the tests (and CI's overload-smoke step) hold.


def _percentile(values: List[float], pct: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[index]


class _LoadDriver:
    """Issues an open-loop query schedule through the app client."""

    def __init__(self, scenario: FocusScenario, workload: QueryWorkload) -> None:
        self.scenario = scenario
        self.workload = workload
        #: ``(issued_at, elapsed, ok, source, staleness_ms)`` per completion.
        self.outcomes: List[Tuple[float, float, bool, str, float]] = []

    def schedule(self, start: float, load: OpenLoopLoad) -> None:
        for offset in load.arrival_times():
            self.scenario.sim.schedule_at(start + offset, self._issue)

    def _issue(self) -> None:
        issued_at = self.scenario.sim.now

        def record(response) -> None:
            ok = not response.timed_out and response.error is None
            self.outcomes.append((
                issued_at,
                self.scenario.sim.now - issued_at,
                ok,
                str(response.source),
                float(response.staleness_ms),
            ))

        self.scenario.app.client.query(
            self.workload.next_query(), record, timeout=10.0
        )

    # ------------------------------------------------------------- analysis
    def stats(self, start: float = 0.0, end: float = float("inf")) -> Dict[str, object]:
        window = [o for o in self.outcomes if start <= o[0] < end]
        ok_latencies = [elapsed for _, elapsed, ok, _, _ in window if ok]
        sources: Dict[str, int] = {}
        for _, _, _, source, _ in window:
            sources[source] = sources.get(source, 0) + 1
        return {
            "completed": len(window),
            "served_ok": len(ok_latencies),
            "goodput_fraction": (
                round(len(ok_latencies) / len(window), 4) if window else 0.0
            ),
            "p50_s": round(_percentile(ok_latencies, 50.0), 4),
            "p99_s": round(_percentile(ok_latencies, 99.0), 4),
            "max_s": round(max(ok_latencies), 4) if ok_latencies else 0.0,
            "sources": dict(sorted(sources.items())),
        }


def _storm_config(*, shards: int = 2, breaker: bool = True) -> FocusConfig:
    """A deliberately small serving plane so modest load crosses the knee.

    One core per shard at 20 ms of query CPU gives each shard a capacity
    near 37 q/s on the query bulkhead — a flash crowd in the low hundreds
    of q/s is deep past saturation, yet cheap to simulate.
    """
    overload = OverloadConfig(
        cpu_model_enabled=True,
        cores=1.0,
        per_query_cpu=0.02,
        per_registration_cpu=0.004,
        per_report_cpu=0.002,
        throttle_enabled=True,
        throttle_rate=80.0,
        throttle_burst=40.0,
        queue_enabled=True,
        queue_capacity=64,
        queue_discipline="fifo",
        queue_deadline=2.0,
        bulkhead_enabled=True,
        bulkhead_query_share=0.75,
        breaker_enabled=breaker,
        breaker_failure_threshold=0.5,
        breaker_min_volume=8,
        breaker_latency_threshold=2.5,
        breaker_window=32,
        breaker_cooldown=4.0,
        breaker_half_open_probes=2,
    )
    return FocusConfig(
        shards=shards, server_queue_enabled=True, overload=overload,
        query_timeout=6.0,
    )


def _breaker_states(scenario: FocusScenario) -> Dict[str, object]:
    router = scenario.plane.router if scenario.plane is not None else None
    if router is None or router.breakers is None:
        return {"states": {}, "opened": {}, "all_closed": True, "any_opened": False}
    states = {shard: b.state for shard, b in sorted(router.breakers.items())}
    opened = {shard: b.opened_count for shard, b in sorted(router.breakers.items())}
    return {
        "states": states,
        "opened": opened,
        "all_closed": all(s == CircuitBreaker.CLOSED for s in states.values()),
        "any_opened": any(count > 0 for count in opened.values()),
    }


def run_query_storm(seed: int = 0, num_nodes: int = 24) -> Dict[str, object]:
    """Flash-crowd query storm against a defended two-shard plane.

    Offered load ramps ~8 → 130 q/s against ~75 q/s of query-bulkhead
    capacity. The throttle sheds the excess at the door, the admission
    queue levels the rest, and the contract is: answered queries keep a
    bounded p99 (no Fig. 3 latency blow-up) and every breaker is closed
    again once the storm decays.
    """
    scenario, engine = _build(seed, num_nodes, config=_storm_config())
    t0 = scenario.sim.now
    driver = _LoadDriver(scenario, QueryWorkload(seed=seed + 1))
    phases = flash_crowd_phases(
        baseline_qps=8.0, peak_qps=130.0,
        baseline_s=8.0, ramp_s=8.0, hold_s=16.0, decay_s=12.0,
    )
    load = OpenLoopLoad(phases, seed=seed)
    peak_start, peak_end = t0 + 1.0 + 16.0, t0 + 1.0 + 32.0
    driver.schedule(t0 + 1.0, load)
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 1.0 + load.total_duration + 12.0)

    storm = driver.stats()
    peak = driver.stats(peak_start, peak_end)
    breakers = _breaker_states(scenario)
    shed = sum(s.queries_shed for s in scenario.services)
    throttled = sum(s.queries_throttled for s in scenario.services)
    report = _finish(
        "query-storm", seed, scenario, engine, probe,
        fault_time=peak_start, heal_time=peak_end, detection=None,
    )
    report["offered"] = load.offered
    report["storm"] = storm
    report["peak"] = peak
    report["queries_shed"] = shed
    report["queries_throttled"] = throttled
    report["breakers"] = breakers
    report["asserts"] = {
        # The defended plane never lets answered-query latency blow up.
        "p99_bounded": storm["p99_s"] <= 4.0,
        # Meaningful goodput survives the storm (throttle/shed refusals are
        # fast, explicit refusals — not timeouts).
        "goodput_kept": storm["served_ok"] >= 0.4 * load.offered,
        # Whatever the storm did to the breakers, they re-closed after it.
        "breaker_reclosed": breakers["all_closed"],
    }
    return report


def run_herd_reregistration(seed: int = 0, num_nodes: int = 36) -> Dict[str, object]:
    """Thundering-herd re-registration after a partition heal, bulkheaded.

    A region pair partitions for 8 s; at heal every agent re-registers
    within a 0.5 s window (~70 reg/s against ~60 reg/s of registration-lane
    capacity) while a steady 15 q/s query stream runs. The bulkhead contract:
    the registration path starves zero requests (every herd registration is
    served, none shed) and the query path's p99 stays bounded through the
    herd — neither lane can drown the other.
    """
    config = _storm_config(shards=1, breaker=False)
    scenario, engine = _build(seed, num_nodes, config=config)
    t0 = scenario.sim.now
    regions = [r.name for r in scenario.network.topology.regions]
    fault_at, heal_after = t0 + 5.0, 8.0
    heal_time = fault_at + heal_after
    engine.execute(
        FaultPlan().add(
            PartitionRegions(
                at=fault_at,
                side_a=(regions[0],),
                side_b=(regions[1],),
                heal_after=heal_after,
            )
        )
    )
    service = scenario.services[0]
    served_before = {"registrations": 0}

    def snapshot_lane() -> None:
        served_before["registrations"] = service.register_cpu.requests_served

    scenario.sim.schedule_at(heal_time, snapshot_lane)
    offsets = thundering_herd_offsets(num_nodes, 0.5, seed=seed)
    for agent, offset in zip(scenario.agents, offsets):
        scenario.sim.schedule_at(heal_time + offset, agent.register)

    driver = _LoadDriver(scenario, QueryWorkload(seed=seed + 1))
    load = OpenLoopLoad([LoadPhase(34.0, 15.0)], seed=seed)
    driver.schedule(t0 + 1.0, load)
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 45.0)

    herd_served = service.register_cpu.requests_served - served_before["registrations"]
    herd_window = driver.stats(heal_time, heal_time + 5.0)
    steady = driver.stats()
    registered = sum(1 for agent in scenario.agents if agent.registered)
    report = _finish(
        "herd-reregistration", seed, scenario, engine, probe,
        fault_time=fault_at, heal_time=heal_time, detection=None,
    )
    report["herd_size"] = num_nodes
    report["herd_registrations_served"] = herd_served
    report["registrations_shed"] = service.registrations_shed
    report["reports_shed"] = service.reports_shed
    report["herd_window_queries"] = herd_window
    report["steady_queries"] = steady
    report["agents_registered"] = registered
    report["asserts"] = {
        # Zero starved registration path: every herd re-registration (and
        # the reports sharing its lane) was served, none shed.
        "zero_starved_registrations": (
            herd_served >= num_nodes and service.registrations_shed == 0
        ),
        "all_agents_registered": registered == num_nodes,
        # The query bulkhead held: p99 through the herd stays bounded.
        "query_p99_bounded": herd_window["p99_s"] <= 4.0,
    }
    return report


def run_hot_key_overload(seed: int = 0, num_nodes: int = 24) -> Dict[str, object]:
    """Hot-key skew saturates one shard; its breaker opens, degrades, re-closes.

    90% of queries replay two hot placement keys whose families live on one
    (occasionally two) of four shards. 60 q/s of skewed load against ~37 q/s
    of per-shard capacity drives the owner's admission queue into deadline
    shedding; the router's breaker for that shard trips on the failure rate,
    matching queries degrade to stale cached answers stamped with their true
    ``staleness_ms``, and once the skew subsides the half-open probes
    re-close the breaker.
    """
    overload = OverloadConfig(
        cpu_model_enabled=True,
        cores=1.0,
        per_query_cpu=0.02,
        per_registration_cpu=0.004,
        per_report_cpu=0.002,
        queue_enabled=True,
        queue_capacity=32,
        queue_discipline="lifo",
        queue_deadline=1.5,
        bulkhead_enabled=True,
        bulkhead_query_share=0.75,
        breaker_enabled=True,
        breaker_failure_threshold=0.5,
        breaker_min_volume=8,
        breaker_latency_threshold=2.5,
        breaker_window=32,
        breaker_cooldown=4.0,
        breaker_half_open_probes=2,
    )
    config = FocusConfig(
        shards=4, server_queue_enabled=True, overload=overload, query_timeout=6.0,
    )
    scenario, engine = _build(seed, num_nodes, config=config)
    t0 = scenario.sim.now
    workload = QueryWorkload(seed=seed + 1, hot_key_fraction=0.9, hot_set_size=2)
    driver = _LoadDriver(scenario, workload)
    phases = [LoadPhase(6.0, 5.0), LoadPhase(20.0, 60.0), LoadPhase(14.0, 5.0)]
    load = OpenLoopLoad(phases, seed=seed)
    skew_start, skew_end = t0 + 1.0 + 6.0, t0 + 1.0 + 26.0
    driver.schedule(t0 + 1.0, load)
    probe = ResilienceProbe(scenario)
    probe.schedule(t0 + 1.0, t0 + 38.0)
    scenario.sim.run_until(t0 + 1.0 + load.total_duration + 10.0)

    stats = driver.stats()
    breakers = _breaker_states(scenario)
    stale_served = sum(
        1 for _, _, _, source, _ in driver.outcomes if source == "breaker-stale"
    )
    stale_stamped = all(
        staleness > 0.0
        for _, _, _, source, staleness in driver.outcomes
        if source == "breaker-stale"
    )
    report = _finish(
        "hot-key-overload", seed, scenario, engine, probe,
        fault_time=skew_start, heal_time=skew_end, detection=None,
    )
    report["offered"] = load.offered
    report["load"] = stats
    report["stale_served"] = stale_served
    report["breakers"] = breakers
    report["asserts"] = {
        # The hot shard's breaker actually tripped under the skew...
        "breaker_opened": breakers["any_opened"],
        # ...degraded matching queries to stale answers with honest stamps...
        "stale_fallback_served": stale_served > 0 and stale_stamped,
        # ...and re-closed once the skew subsided (never wedged).
        "breaker_reclosed": breakers["all_closed"],
        "p99_bounded": stats["p99_s"] <= 4.0,
    }
    return report


SCENARIOS = {
    "single-node-crash": run_single_node_crash,
    "region-partition": run_region_partition,
    "churn-storm": run_churn_storm,
    "focus-server-failover": run_server_failover,
    "shard-failover": run_shard_failover,
    "query-storm": run_query_storm,
    "herd-reregistration": run_herd_reregistration,
    "hot-key-overload": run_hot_key_overload,
}


def report_checksum(report: Dict[str, object]) -> str:
    """sha256 of the canonical JSON encoding (the byte-stability contract)."""
    blob = json.dumps(report, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def run_suite(
    seed: int = 0, scenarios: Optional[List[str]] = None
) -> Dict[str, object]:
    """Run the named scenarios (default: all) and wrap them in one report."""
    names = scenarios or list(SCENARIOS)
    results = {}
    for name in names:
        results[name] = SCENARIOS[name](seed=seed)
    report: Dict[str, object] = {"report_version": 1, "seed": seed,
                                 "scenarios": results}
    report["checksum"] = report_checksum(results)
    return report


def main(argv=None) -> int:
    """CLI: run the seeded failure suite, write the checksummed report.

    CI runs this on every matrix leg and uploads the JSON as an artifact, so
    a resilience regression shows up as a checksum diff between runs.
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenarios", nargs="*", default=None,
                        choices=sorted(SCENARIOS),
                        help="subset to run (default: every scenario)")
    parser.add_argument("--out", default="resilience_report.json")
    args = parser.parse_args(argv)

    report = run_suite(seed=args.seed, scenarios=args.scenarios)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, result in report["scenarios"].items():
        print(f"{name:22s} detection={result.get('detection_latency_s')}s "
              f"reconvergence={result.get('reconvergence_s')}s")
    print(f"checksum {report['checksum'][:16]}… -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
