"""Plain-text tables for benchmark output.

Every benchmark prints the same rows/series the paper's figure or table
reports, so EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    materialised: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a titled fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
