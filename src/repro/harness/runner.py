"""Run helpers: drive a scenario's simulator until query responses arrive."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.query import Query
from repro.core.rest import QueryResponse
from repro.errors import SimulationError
from repro.harness.scenarios import FocusScenario


def drain(scenario: FocusScenario, seconds: float) -> None:
    """Advance simulated time (convergence, warm-up, settling)."""
    scenario.sim.run_until(scenario.sim.now + seconds)


def run_query(
    scenario: FocusScenario,
    query: Query,
    *,
    max_wait: float = 20.0,
) -> QueryResponse:
    """Issue one query through the application and wait for its response."""
    box: List[QueryResponse] = []
    scenario.app.query(query, box.append)
    deadline = scenario.sim.now + max_wait
    while not box and scenario.sim.now < deadline:
        scenario.sim.run_until(min(scenario.sim.now + 0.05, deadline))
    if not box:
        raise SimulationError(f"no response to {query!r} within {max_wait}s")
    return box[0]


def run_queries(
    scenario: FocusScenario,
    queries: List[Query],
    *,
    rate: float,
    on_response: Optional[Callable[[QueryResponse], None]] = None,
    settle: float = 5.0,
) -> List[QueryResponse]:
    """Replay ``queries`` at ``rate`` per second; returns all responses.

    Arrivals are evenly spaced (the trace replay experiments control rate
    explicitly). After the last arrival the simulator runs ``settle`` more
    seconds so stragglers complete.
    """
    responses: List[QueryResponse] = []

    def record(response: QueryResponse) -> None:
        responses.append(response)
        if on_response is not None:
            on_response(response)

    interval = 1.0 / rate
    start = scenario.sim.now
    for index, query in enumerate(queries):
        scenario.sim.schedule_at(
            start + index * interval, scenario.app.query, query, record
        )
    scenario.sim.run_until(start + len(queries) * interval + settle)
    return responses
