"""Canned cluster builders.

:func:`build_focus_cluster` assembles the full FOCUS deployment the paper
evaluates (§X-A): a service (optionally backed by a replicated store), node
agents spread round-robin across the four EC2 regions, each reporting the
four evaluation attributes with randomised initial values (the paper's
"randomness factor"), and an application process for issuing queries.

Two bring-up modes:

* **protocol bring-up** (default) — agents register over the network and
  join groups via gossip sync; realistic, but a simultaneous-join storm is
  quadratic in group size, so registrations are staggered.
* **warm start** (``warm_start=True``) — registrations are applied directly
  and serf member lists are pre-seeded to the converged state, modelling a
  long-running deployment without paying the bring-up cost. Steady-state
  behaviour (probing, reports, queries, moves) is identical from t=0. Large
  benchmark sweeps use this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.agent import NodeAgent
from repro.core.config import FocusConfig
from repro.core.groups import serf_address
from repro.core.rest import Application
from repro.core.service import FocusService
from repro.core.shardplane import ShardPlane, build_shard_plane
from repro.gossip.member import Member, MemberState
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.topology import Topology
from repro.store.cluster import StoreCluster


@dataclass
class FocusScenario:
    """A fully wired FOCUS deployment inside one simulator."""

    sim: Simulator
    network: Network
    service: FocusService
    agents: List[NodeAgent]
    app: Application
    config: FocusConfig
    store: Optional[StoreCluster] = None
    #: The serving plane (``shards=1`` wraps the legacy single server).
    plane: Optional[ShardPlane] = None

    def agent(self, node_id: str) -> NodeAgent:
        for agent in self.agents:
            if agent.node_id == node_id:
                return agent
        raise KeyError(node_id)

    @property
    def services(self) -> List[FocusService]:
        """Every shard service (legacy deployments have exactly one)."""
        return self.plane.shards if self.plane is not None else [self.service]

    def _server_addresses(self) -> List[str]:
        if self.plane is not None:
            return self.plane.server_addresses()
        return [self.service.address]

    def server_bandwidth_bytes(self) -> int:
        """Bytes sent+received at the serving plane (the Fig. 7a metric);
        sums shards, router and replicas on a sharded deployment."""
        return sum(
            self.network.meter(address).total_bytes
            for address in self._server_addresses()
        )

    def reset_bandwidth(self) -> None:
        for agent in self.agents:
            for address in agent.endpoint_addresses():
                self.network.meter(address).reset()
        for address in self._server_addresses():
            self.network.meter(address).reset()
        self.network.meter(self.app.address).reset()


def default_static_attributes(index: int, site: str) -> Dict[str, object]:
    """Static attributes for node ``index`` (arch/cores/service/project)."""
    return {
        "arch": "x86" if index % 8 else "arm64",
        "cores": 8 if index % 3 else 16,
        "service_type": "compute" if index % 5 else "scheduler",
        "project_id": f"project-{index % 10}",
        "site": site,
    }


def random_dynamic_attributes(config: FocusConfig, rng) -> Dict[str, float]:
    """The paper's randomness factor: each agent reports values drawn from
    the attribute's full range so co-hosted agents differ (§X-A, fn. 3)."""
    values = {}
    for name, spec in config.schema.dynamic().items():
        high = spec.max_value if spec.max_value != float("inf") else 100.0
        value = rng.uniform(spec.min_value, high)
        if name == "vcpus":
            value = float(int(value))
        values[name] = value
    return values


def build_focus_cluster(
    num_nodes: int,
    *,
    seed: int = 0,
    config: Optional[FocusConfig] = None,
    with_store: bool = True,
    warm_start: bool = False,
    registration_window: float = 5.0,
    topology: Optional[Topology] = None,
    collector_factory: Optional[Callable[[NodeAgent], Callable[[], Dict[str, float]]]] = None,
    record_bandwidth_events: bool = True,
    node_factory: Optional[Callable[[int, str], Dict[str, object]]] = None,
    profile: str = "v1",
) -> FocusScenario:
    """Build the paper's evaluation deployment with ``num_nodes`` agents.

    Pass the same ``node_factory`` used for a baseline deployment to compare
    systems over an identical node population (Fig. 7a requires this).

    ``profile`` selects the simulator's determinism profile: ``"v1"``
    (default) is the bit-exact reference stream; ``"v2"`` is the fast
    profile (batched numpy RNG, arena message records) — seeded results
    stay reproducible but are a different byte stream than v1's.
    """
    config = config or FocusConfig()
    sim = Simulator(seed=seed, profile=profile)
    network = Network(
        sim,
        topology or Topology(),
        record_bandwidth_events=record_bandwidth_events,
    )
    regions = [r.name for r in network.topology.regions]
    store = StoreCluster(sim, network, num_replicas=3) if with_store else None
    plane = build_shard_plane(
        sim,
        network,
        region=regions[0],
        regions=regions,
        config=config,
        store_cluster=store,
    )
    plane.start()
    service = plane.primary
    app = Application(sim, network, "app", regions[0], focus_address=plane.entry_address)
    app.start()

    rng = sim.derive_rng("scenario")
    agents: List[NodeAgent] = []
    for index in range(num_nodes):
        region = regions[index % len(regions)]
        if node_factory is not None:
            spec = node_factory(index, region)
            node_id = str(spec["node_id"])
            static = dict(spec.get("static") or {})
            dynamic = dict(spec.get("dynamic") or {})
        else:
            node_id = f"node-{index:05d}"
            static = default_static_attributes(index, site=f"site-{region}")
            dynamic = random_dynamic_attributes(config, rng)
        agent = NodeAgent(
            sim,
            network,
            node_id,
            region,
            plane.entry_address,
            static=static,
            dynamic=dynamic,
            config=config,
        )
        if collector_factory is not None:
            agent.collector = collector_factory(agent)
        agents.append(agent)

    scenario = FocusScenario(
        sim=sim,
        network=network,
        service=service,
        agents=agents,
        app=app,
        config=config,
        store=store,
        plane=plane,
    )
    if warm_start:
        _warm_start(scenario)
    else:
        _protocol_bring_up(scenario, registration_window, rng)
    return scenario


def build_single_group_cluster(
    group_size: int,
    *,
    seed: int = 0,
    serf_config=None,
    record_bandwidth_events: bool = True,
) -> FocusScenario:
    """A deployment whose nodes all share ONE attribute group.

    Used by the microbenchmarks (Fig. 8b / 8c): a single dynamic attribute
    whose cutoff spans its whole value range puts every node in the same
    group, so the group size equals the fleet size.
    """
    from repro.core.attributes import AttributeKind, AttributeSchema, AttributeSpec

    schema = AttributeSchema()
    schema.add(
        AttributeSpec("load", AttributeKind.DYNAMIC, cutoff=100.0,
                      min_value=0.0, max_value=100.0)
    )
    config = FocusConfig(
        schema=schema,
        max_group_size=group_size + 1,  # never fork: we want one big group
    )
    if serf_config is not None:
        config.serf = serf_config

    def factory(index: int, region: str):
        import random as _random

        rng = _random.Random(f"{seed}/single/{index}")
        return {
            "node_id": f"node-{index:05d}",
            "static": {},
            "dynamic": {"load": rng.uniform(0.0, 100.0)},
        }

    return build_focus_cluster(
        group_size,
        seed=seed,
        config=config,
        with_store=False,
        warm_start=True,
        record_bandwidth_events=record_bandwidth_events,
        node_factory=factory,
    )


def _protocol_bring_up(scenario: FocusScenario, window: float, rng) -> None:
    """Start agents with registrations staggered over ``window`` seconds."""
    for agent in scenario.agents:
        delay = rng.uniform(0.0, window)
        scenario.sim.schedule(delay, agent.start)


def _warm_start(scenario: FocusScenario) -> None:
    """Bring the cluster up in its converged state (see module docstring).

    On a sharded plane the registration is applied to every shard (as the
    router would replicate it); each shard suggests only the group families
    it owns, so concatenating the per-shard suggestion lists reproduces the
    single server's suggestion set exactly.
    """
    sim = scenario.sim
    services = scenario.services
    for agent in scenario.agents:
        # Register directly (same code path as the RPC handler, minus the
        # network round trip).
        request = {
            "node_id": agent.node_id,
            "region": agent.region,
            "static": agent.static,
            "dynamic": agent.dynamic,
        }
        suggestions: List[Dict[str, object]] = []
        for service in services:
            suggestions.extend(service.registrar.register(request)["groups"])
        suggestions.sort(key=lambda s: str(s.get("attribute", "")))
        agent.start_without_registration()
        agent.registered = True
        for suggestion in suggestions:
            # Suppress join traffic: memberships are seeded below.
            suggestion = dict(suggestion)
            suggestion["entry_points"] = []
            agent._join_group(suggestion)
    # Seed every serf agent's member list with its full group and promote
    # the DGM's pending entries to confirmed members.
    for service in services:
        for group in service.dgm.groups.all_groups():
            node_ids = group.all_node_ids()
            regions = {}
            for agent in scenario.agents:
                if agent.node_id in group.pending or agent.node_id in group.members:
                    regions[agent.node_id] = agent.region
            for agent in scenario.agents:
                membership = next(
                    (m for m in agent.memberships.values() if m.group == group.name),
                    None,
                )
                if membership is None:
                    continue
                for node_id in node_ids:
                    if node_id == agent.node_id:
                        continue
                    membership.serf.members.upsert(
                        Member(
                            node_id,
                            serf_address(node_id, group.name),
                            regions.get(node_id, agent.region),
                            incarnation=0,
                            state=MemberState.ALIVE,
                            state_time=sim.now,
                        )
                    )
            group.record_report(node_ids, regions, sim.now)
        service.dgm.transitions.clear()
