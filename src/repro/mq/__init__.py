"""RabbitMQ-equivalent message broker.

The paper motivates FOCUS with a RabbitMQ scalability study (§III, Fig. 3):
a broker on a 4-vCPU VM saturates around 6k producers each pushing five 1 KB
messages per second, and crosses 50% CPU as early as 2k producers. This
package reproduces that broker as a simulated process with an explicit CPU
service-time model, plus the queue/exchange/consumer surface the baselines
need (publish/subscribe, direct and fanout exchanges, competing consumers).
"""

from repro.mq.broker import Broker, BrokerConfig
from repro.mq.client import Consumer, Producer

__all__ = ["Broker", "BrokerConfig", "Consumer", "Producer"]
