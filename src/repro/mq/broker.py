"""The broker process and its CPU model.

CPU model
---------
Message handling is modelled as a single logical server of capacity
``cores`` running at ``per_message_cpu`` core-seconds per message (covering
protocol parsing, routing and consumer dispatch), plus a standing
``per_connection_cpu`` core-seconds/second per open connection (heartbeats,
channel bookkeeping). A message arriving at time ``t`` starts service at
``max(t, cpu_free_at)`` and occupies the server for
``per_message_cpu / cores`` seconds — an M/D/c queue approximated by its
equivalent fast single server, which reproduces the observed RabbitMQ
behaviour: near-linear CPU growth, then queue (and latency) blow-up once
offered load crosses capacity.

Calibration to Fig. 3 (4 vCPUs, five 1KB msgs/s per producer):

* 2k producers → 10k msgs/s → ~50% CPU (paper: "crossed 50% as early as 2k")
* ~6k producers → 30k msgs/s → ≈ saturation (paper: "hits its limit ~6k")

which gives ``per_message_cpu ≈ 0.12 ms`` and
``per_connection_cpu ≈ 0.3 ms/s`` per connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cpumodel import ServerCpuModel
from repro.errors import BrokerError
from repro.sim.loop import Simulator
from repro.sim.network import Message, Network
from repro.sim.process import Process


@dataclass
class BrokerConfig:
    """Broker resource model; defaults calibrated to the paper's Fig. 3."""

    cores: float = 4.0
    per_message_cpu: float = 0.00012
    per_connection_cpu: float = 0.0003
    utilization_sample_interval: float = 1.0
    #: Messages queued beyond this are dropped (overload protection).
    max_backlog_seconds: float = 30.0


class _QueueState:
    __slots__ = ("name", "consumers", "next_consumer")

    def __init__(self, name: str) -> None:
        self.name = name
        self.consumers: List[str] = []
        self.next_consumer = 0


class Broker(Process):
    """A message broker with direct and fanout exchanges.

    Protocol (all messages carry JSON-able payloads):

    * ``mq.declare``   {queue}                      — create a queue
    * ``mq.bind``      {exchange, queue}            — bind queue to fanout exchange
    * ``mq.subscribe`` {queue}                      — sender becomes a consumer
    * ``mq.connect``   {}                           — open a connection (CPU accounting)
    * ``mq.publish``   {queue | exchange, body, size, sent_at} — route a message

    Deliveries are ``mq.deliver`` messages sent to consumer addresses after
    the modelled CPU service delay.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        config: Optional[BrokerConfig] = None,
    ) -> None:
        super().__init__(sim, network, address, region)
        self.config = config or BrokerConfig()
        self.queues: Dict[str, _QueueState] = {}
        self.exchanges: Dict[str, List[str]] = {}
        self.connections: set = set()
        self.cpu = ServerCpuModel(
            self.config.cores,
            per_request_cpu=self.config.per_message_cpu,
            per_connection_cpu=self.config.per_connection_cpu,
            max_backlog_seconds=self.config.max_backlog_seconds,
        )
        self.utilization_series: List[tuple] = []
        self.messages_routed = 0
        self.messages_dropped = 0
        self.on("mq.declare", self._on_declare)
        self.on("mq.bind", self._on_bind)
        self.on("mq.subscribe", self._on_subscribe)
        self.on("mq.connect", self._on_connect)
        self.on("mq.publish", self._on_publish)

    def on_start(self) -> None:
        self.every(self.config.utilization_sample_interval, self._sample_utilization)

    # ------------------------------------------------------------ management
    def declare_queue(self, name: str) -> _QueueState:
        if name not in self.queues:
            self.queues[name] = _QueueState(name)
        return self.queues[name]

    def bind(self, exchange: str, queue: str) -> None:
        self.declare_queue(queue)
        self.exchanges.setdefault(exchange, [])
        if queue not in self.exchanges[exchange]:
            self.exchanges[exchange].append(queue)

    def _on_declare(self, message: Message) -> None:
        self.declare_queue(message.payload["queue"])
        self.connections.add(message.src)

    def _on_bind(self, message: Message) -> None:
        self.bind(message.payload["exchange"], message.payload["queue"])
        self.connections.add(message.src)

    def _on_subscribe(self, message: Message) -> None:
        queue = self.declare_queue(message.payload["queue"])
        if message.src not in queue.consumers:
            queue.consumers.append(message.src)
        self.connections.add(message.src)

    def _on_connect(self, message: Message) -> None:
        self.connections.add(message.src)

    # --------------------------------------------------------------- routing
    def _message_cores(self) -> float:
        """Cores left for message work after connection upkeep.

        Heartbeats and channel bookkeeping scale with open connections and
        eat into routing capacity — this is what pulls the saturation knee
        down to ~6k producers in Fig. 3 even though raw routing capacity
        would be higher.
        """
        return self.cpu.effective_cores(len(self.connections))

    def _on_publish(self, message: Message) -> None:
        self.connections.add(message.src)
        payload = message.payload
        now = self.sim.now
        exchange = payload.get("exchange")
        if exchange is not None:
            queue_names = self.exchanges.get(exchange, ())
        else:
            queue_names = (payload["queue"],)
        targets = []
        for queue_name in queue_names:
            queue = self.queues.get(queue_name)
            if queue is None or not queue.consumers:
                continue
            consumer = queue.consumers[queue.next_consumer % len(queue.consumers)]
            queue.next_consumer += 1
            targets.append((queue_name, consumer))

        # CPU cost scales with the work actually done: one routing step plus
        # one dispatch per queue delivery (a fanout to 1600 queues is 1600
        # deliveries, not one message).
        service = (
            self.config.per_message_cpu / self._message_cores()
        ) * max(1, len(targets))
        delay = self.cpu.try_occupy(now, service)
        if delay is None:
            self.messages_dropped += 1
            return
        self.messages_routed += 1
        for queue_name, consumer in targets:
            self.sim.schedule(
                delay,
                self._deliver,
                consumer,
                queue_name,
                payload.get("body"),
                payload.get("size", 0),
                payload.get("sent_at", now),
            )

    def _deliver(self, consumer, queue_name, body, size, sent_at) -> None:
        if not self.running:
            return
        self.send(
            consumer,
            "mq.deliver",
            {"queue": queue_name, "body": body, "sent_at": sent_at},
            size=size + 40,
        )

    # ------------------------------------------------------------ utilization
    def _sample_utilization(self) -> None:
        window = self.config.utilization_sample_interval
        utilization = self.cpu.utilization(window, len(self.connections))
        self.utilization_series.append((self.sim.now, utilization))

    def utilization_over(self, start: float, end: float) -> float:
        samples = [u for t, u in self.utilization_series if start <= t <= end]
        if not samples:
            raise BrokerError(f"no utilization samples in [{start}, {end}]")
        return sum(samples) / len(samples)

    @property
    def backlog_seconds(self) -> float:
        """Current queueing delay a newly arrived message would see."""
        return self.cpu.backlog_seconds(self.sim.now)
