"""Producer and consumer processes for the broker.

These mirror the paper's §III experiment: simulated producers pushing fixed
size messages at a fixed rate, and consumers that record end-to-end latency.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.loop import Simulator
from repro.sim.metrics import Histogram
from repro.sim.network import Message, Network
from repro.sim.process import Process


class Producer(Process):
    """Publishes fixed-size messages to a queue at a fixed rate.

    Defaults mirror the paper's RabbitMQ study: five 1 KB messages/second.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        broker: str,
        queue: str,
        *,
        rate: float = 5.0,
        message_size: int = 1024,
    ) -> None:
        super().__init__(sim, network, address, region)
        self.broker = broker
        self.queue = queue
        self.rate = rate
        self.message_size = message_size
        self.published = 0

    def on_start(self) -> None:
        self.send(self.broker, "mq.connect", {})
        interval = 1.0 / self.rate
        self.every(interval, self.publish, jitter=interval * 0.2)

    def publish(self) -> None:
        self.published += 1
        self.send(
            self.broker,
            "mq.publish",
            {
                "queue": self.queue,
                "body": None,
                "size": self.message_size,
                "sent_at": self.sim.now,
            },
            size=self.message_size,
        )


class Consumer(Process):
    """Consumes from a queue and records end-to-end message latency."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        broker: str,
        queue: str,
        *,
        on_message: Optional[Callable[[Message], None]] = None,
    ) -> None:
        super().__init__(sim, network, address, region)
        self.broker = broker
        self.queue = queue
        # Streaming mode: consumers interleave an observe per delivery with
        # percentile reads over the whole run, the exact pattern where
        # re-sorting raw values is O(n log n) per read (~1% relative error).
        self.latency = Histogram(f"{address}.latency", streaming=True)
        self.consumed = 0
        self._on_message = on_message

    def on_start(self) -> None:
        self.send(self.broker, "mq.subscribe", {"queue": self.queue})
        self.on_subscribe()

    def on_subscribe(self) -> None:
        """Subclass hook called once the subscribe message is sent."""

    def handle_message(self, message: Message) -> None:
        if message.kind == "mq.deliver":
            self.consumed += 1
            self.latency.observe(self.sim.now - message.payload["sent_at"])
            if self._on_message is not None:
                self._on_message(message)
            return
        super().handle_message(message)
