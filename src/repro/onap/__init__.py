"""ONAP-style VNF homing over FOCUS (§II-B, §V-B, Fig. 4).

The vCPE homing problem: given a residential customer, find (a) a slice of an
existing vGMux instance carrying that customer's VPN, and (b) a provider-edge
cloud site to host a new vG — subject to the Fig. 4b policy set (provider-
owned sites, SR-IOV + minimum KVM version, distance bound, instantaneous
site/service capacity).

Sites and service instances are FOCUS *nodes* with their own attribute
schema; the homing service expresses each policy as a FOCUS query term (or a
client-side location filter) and gets candidates satisfying all constraints.
The legacy alternative — sequential lookups against a static inventory that
knows nothing about current capacity — is provided for comparison.
"""

from repro.onap.homing import HomingPlan, HomingService, VcpeCustomer
from repro.onap.inventory import StaticInventory
from repro.onap.models import CloudSite, VgMuxInstance, onap_schema

__all__ = [
    "CloudSite",
    "HomingPlan",
    "HomingService",
    "StaticInventory",
    "VcpeCustomer",
    "VgMuxInstance",
    "onap_schema",
]
