"""Deployment builder for the ONAP homing scenario.

Creates provider-edge sites spread around the paper's four regions, vGMux
instances carrying customer VPNs, registers everything as FOCUS nodes (with
the ONAP attribute schema), and wires up the homing service.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.agent import NodeAgent
from repro.core.config import FocusConfig
from repro.core.service import FocusService
from repro.onap.homing import HomingService
from repro.onap.inventory import StaticInventory
from repro.onap.models import CloudSite, VgMuxInstance, onap_schema
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.topology import Topology


@dataclass
class OnapDeployment:
    """A wired-up homing scenario."""

    sim: Simulator
    network: Network
    focus: FocusService
    homing: HomingService
    sites: List[CloudSite]
    muxes: List[VgMuxInstance]
    agents: Dict[str, NodeAgent]
    inventory: StaticInventory

    def agent_for(self, node_id: str) -> NodeAgent:
        return self.agents[node_id]

    def consume_site(self, site_id: str, vcpus: float, ram_mb: float) -> None:
        """Model a vG instantiation consuming site capacity."""
        agent = self.agents[f"site::{site_id}"]
        agent.set_attribute("site_vcpus", max(0.0, agent.dynamic["site_vcpus"] - vcpus))
        agent.set_attribute("site_ram_mb", max(0.0, agent.dynamic["site_ram_mb"] - ram_mb))

    def consume_mux(self, node_id: str, sessions: float) -> None:
        """Model a subscriber slice consuming mux capacity."""
        agent = self.agents[node_id]
        agent.set_attribute(
            "mux_capacity", max(0.0, agent.dynamic["mux_capacity"] - sessions)
        )


def build_onap_deployment(
    *,
    num_sites: int = 12,
    muxes_per_site: int = 2,
    hosts_per_site: int = 0,
    vpn_ids: Optional[List[str]] = None,
    seed: int = 0,
) -> OnapDeployment:
    """Build sites/muxes across the four paper regions and register them."""
    sim = Simulator(seed=seed)
    network = Network(sim, Topology())
    regions = network.topology.regions
    config = FocusConfig(schema=onap_schema(), max_group_size=64)
    focus = FocusService(sim, network, region=regions[0].name, config=config)
    focus.start()
    homing = HomingService(sim, network, "homing", regions[0].name)
    homing.start()

    rng = random.Random(f"onap/{seed}")
    vpn_ids = vpn_ids or [f"vpn-{i}" for i in range(8)]
    sites: List[CloudSite] = []
    muxes: List[VgMuxInstance] = []
    agents: Dict[str, NodeAgent] = {}

    for index in range(num_sites):
        region = regions[index % len(regions)]
        site = CloudSite(
            site_id=f"pe-{index:03d}",
            region=region.name,
            # Scatter sites within ~2 degrees of their region's centre.
            lat=region.latitude + rng.uniform(-2.0, 2.0),
            lon=region.longitude + rng.uniform(-2.0, 2.0),
            owner="sp" if index % 5 else "partner",
            sriov=bool(index % 7),
            kvm_version=22 if index % 3 else 20,
        )
        sites.append(site)
        agents[site.node_id] = NodeAgent(
            sim,
            network,
            site.node_id,
            region.name,
            focus.address,
            static=site.static_attributes(),
            dynamic=site.dynamic_attributes(),
            config=config,
        )
        for mux_index in range(muxes_per_site):
            carried = rng.sample(vpn_ids, k=min(3, len(vpn_ids)))
            mux = VgMuxInstance(
                instance_id=f"{site.site_id}-mux{mux_index}",
                site=site,
                vlan_tags={vpn: 100 + i for i, vpn in enumerate(carried)},
            )
            muxes.append(mux)
            agents[mux.node_id] = NodeAgent(
                sim,
                network,
                mux.node_id,
                region.name,
                focus.address,
                static=mux.static_attributes(),
                dynamic=mux.dynamic_attributes(),
                config=config,
            )

        for host_index in range(hosts_per_site):
            # Unified-homing hosts (§II-B): host-level capacity searched by
            # the same FOCUS instance that holds sites and services.
            host_id = f"host::{site.site_id}-{host_index}"
            agents[host_id] = NodeAgent(
                sim,
                network,
                host_id,
                region.name,
                focus.address,
                static={
                    "node_type": "host",
                    "site_id": site.site_id,
                    "lat": site.lat,
                    "lon": site.lon,
                },
                dynamic={
                    "host_ram_mb": rng.uniform(16384.0, 65536.0),
                    "host_vcpus": float(rng.randrange(8, 33)),
                },
                config=config,
            )

    for agent in agents.values():
        sim.schedule(rng.uniform(0.0, 3.0), agent.start)

    return OnapDeployment(
        sim=sim,
        network=network,
        focus=focus,
        homing=homing,
        sites=sites,
        muxes=muxes,
        agents=agents,
        inventory=StaticInventory(sites, muxes),
    )
