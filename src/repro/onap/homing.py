"""The homing service: vCPE placement via FOCUS queries (Fig. 4).

Policies from Fig. 4b, expressed against FOCUS:

1. *vGMux selection* — service instances of type vGMux with enough spare
   capacity (dynamic ``mux_capacity``), carrying the customer's VPN VLAN tag
   (static per-VPN attribute, filtered client-side), preferring the instance
   closest to the customer.
2. *vG site selection* — provider-owned sites with SR-IOV and a minimum KVM
   version (static), within a distance bound of the customer (location
   filter), with instantaneous capacity for the vG (dynamic site terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.query import Query, QueryTerm
from repro.core.rest import FocusClient, QueryResponse
from repro.onap.models import distance_miles
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


@dataclass
class VcpeCustomer:
    """A residential customer requesting vCPE service."""

    customer_id: str
    vpn_id: str
    lat: float
    lon: float
    #: sessions needed on the shared mux
    mux_sessions: float = 100.0
    #: resources for the dedicated vG
    vg_vcpus: float = 8.0
    vg_ram_mb: float = 16384.0
    max_site_distance_miles: float = 100.0
    min_kvm_version: int = 22


@dataclass
class HomingPlan:
    """Outcome of homing one customer."""

    customer_id: str
    ok: bool
    vgmux: Optional[str] = None
    vg_site: Optional[str] = None
    #: Only set by unified homing (§II-B): the physical host for the vG.
    vg_host: Optional[str] = None
    reason: Optional[str] = None

    @property
    def failed(self) -> bool:
        return not self.ok


class HomingService(Process, RpcMixin):
    """ONAP homing over FOCUS."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        focus_address: str = "focus",
    ) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.client = FocusClient(self, focus_address)
        self.plans: List[HomingPlan] = []

    # ------------------------------------------------------------ public API
    def home_vcpe(
        self,
        customer: VcpeCustomer,
        on_done: Callable[[HomingPlan], None],
    ) -> None:
        """Run the two-stage homing pipeline for one customer."""

        def finish(plan: HomingPlan) -> None:
            self.plans.append(plan)
            on_done(plan)

        def have_sites(mux_node: str, site_response: QueryResponse) -> None:
            site = self._pick_site(customer, site_response)
            if site is None:
                finish(HomingPlan(customer.customer_id, False, vgmux=mux_node,
                                  reason="no feasible vG site"))
                return
            finish(HomingPlan(customer.customer_id, True, vgmux=mux_node, vg_site=site))

        def have_muxes(mux_response: QueryResponse) -> None:
            mux_node = self._pick_vgmux(customer, mux_response)
            if mux_node is None:
                finish(HomingPlan(customer.customer_id, False,
                                  reason="no vGMux carries this VPN with capacity"))
                return
            self.client.query(
                self._site_query(customer),
                lambda site_response: have_sites(mux_node, site_response),
            )

        self.client.query(self._vgmux_query(customer), have_muxes)

    def home_vcpe_unified(
        self,
        customer: VcpeCustomer,
        on_done: Callable[[HomingPlan], None],
    ) -> None:
        """§II-B's re-architected flow: one homing service, one FOCUS,
        resolving site-level AND host-level constraints in a single pass
        (no hand-off to a per-site cloud manager)."""

        def finish(plan: HomingPlan) -> None:
            self.plans.append(plan)
            on_done(plan)

        def have_host(plan: HomingPlan, host_response: QueryResponse) -> None:
            if not host_response.matches:
                finish(HomingPlan(customer.customer_id, False,
                                  vgmux=plan.vgmux, vg_site=plan.vg_site,
                                  reason="no host with capacity in site"))
                return
            best = max(
                host_response.matches,
                key=lambda m: float(m["attrs"].get("host_ram_mb", 0.0)),
            )
            plan.vg_host = str(best["node"])
            finish(plan)

        def staged(plan: HomingPlan) -> None:
            if not plan.ok:
                finish(plan)
                return
            site_id = str(plan.vg_site).split("::", 1)[1]
            self.plans.remove(plan)  # replaced by the host-resolved plan
            self.client.query(
                Query(
                    [
                        QueryTerm.exact("node_type", "host"),
                        QueryTerm.exact("site_id", site_id),
                        QueryTerm.at_least("host_ram_mb", customer.vg_ram_mb),
                        QueryTerm.at_least("host_vcpus", customer.vg_vcpus),
                    ],
                    freshness_ms=0.0,
                ),
                lambda host_response: have_host(plan, host_response),
            )

        self.home_vcpe(customer, staged)

    # -------------------------------------------------------------- policies
    def _vgmux_query(self, customer: VcpeCustomer) -> Query:
        return Query(
            [
                QueryTerm.exact("service_type", "vGMux"),
                QueryTerm.at_least("mux_capacity", customer.mux_sessions),
            ],
            freshness_ms=0.0,
        )

    def _site_query(self, customer: VcpeCustomer) -> Query:
        return Query(
            [
                QueryTerm.exact("owner", "sp"),
                QueryTerm.exact("sriov", "yes"),
                QueryTerm.at_least("kvm_version", customer.min_kvm_version),
                QueryTerm.at_least("site_vcpus", customer.vg_vcpus),
                QueryTerm.at_least("site_ram_mb", customer.vg_ram_mb),
            ],
            freshness_ms=0.0,
        )

    def _pick_vgmux(self, customer: VcpeCustomer, response: QueryResponse) -> Optional[str]:
        """Closest mux that carries the customer's VPN VLAN tag."""
        best = None
        best_distance = None
        for match in response.matches:
            attrs = match["attrs"]
            if f"vpn::{customer.vpn_id}" not in attrs:
                continue
            distance = distance_miles(
                customer.lat, customer.lon,
                float(attrs.get("lat", 0.0)), float(attrs.get("lon", 0.0)),
            )
            if best_distance is None or distance < best_distance:
                best, best_distance = str(match["node"]), distance
        return best

    def _pick_site(self, customer: VcpeCustomer, response: QueryResponse) -> Optional[str]:
        """Closest feasible site within the distance bound."""
        best = None
        best_distance = None
        for match in response.matches:
            attrs = match["attrs"]
            distance = distance_miles(
                customer.lat, customer.lon,
                float(attrs.get("lat", 0.0)), float(attrs.get("lon", 0.0)),
            )
            if distance > customer.max_site_distance_miles:
                continue
            if best_distance is None or distance < best_distance:
                best, best_distance = str(match["node"]), distance
        return best

    # ------------------------------------------------------------ statistics
    def success_rate(self) -> float:
        if not self.plans:
            return 0.0
        return sum(1 for p in self.plans if p.ok) / len(self.plans)
