"""Legacy baseline: homing against a static central inventory (§II-B).

Today's homing service queries central inventories that hold only *static*
site/service attributes — no instantaneous capacity. The consequence, shown
in the examples: under load it happily homes customers onto exhausted muxes
and full sites, because it cannot see current capacity at all.
"""

from __future__ import annotations

from typing import List, Optional

from repro.onap.homing import HomingPlan, VcpeCustomer
from repro.onap.models import CloudSite, VgMuxInstance, distance_miles


class StaticInventory:
    """An inventory snapshot taken at deployment time."""

    def __init__(self, sites: List[CloudSite], muxes: List[VgMuxInstance]) -> None:
        self.sites = list(sites)
        self.muxes = list(muxes)
        self.plans: List[HomingPlan] = []

    def home_vcpe(self, customer: VcpeCustomer) -> HomingPlan:
        """Sequential static lookups; capacity constraints are invisible."""
        mux = self._pick_vgmux(customer)
        if mux is None:
            plan = HomingPlan(customer.customer_id, False,
                              reason="no vGMux carries this VPN")
            self.plans.append(plan)
            return plan
        site = self._pick_site(customer)
        if site is None:
            plan = HomingPlan(customer.customer_id, False, vgmux=mux.node_id,
                              reason="no site within distance bound")
            self.plans.append(plan)
            return plan
        plan = HomingPlan(customer.customer_id, True, vgmux=mux.node_id,
                          vg_site=site.node_id)
        self.plans.append(plan)
        return plan

    def _pick_vgmux(self, customer: VcpeCustomer) -> Optional[VgMuxInstance]:
        candidates = [m for m in self.muxes if customer.vpn_id in m.vlan_tags]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda m: distance_miles(customer.lat, customer.lon,
                                         m.site.lat, m.site.lon),
        )

    def _pick_site(self, customer: VcpeCustomer) -> Optional[CloudSite]:
        feasible = [
            s
            for s in self.sites
            if s.owner == "sp"
            and s.sriov
            and s.kvm_version >= customer.min_kvm_version
            and distance_miles(customer.lat, customer.lon, s.lat, s.lon)
            <= customer.max_site_distance_miles
        ]
        if not feasible:
            return None
        return min(
            feasible,
            key=lambda s: distance_miles(customer.lat, customer.lon, s.lat, s.lon),
        )
