"""Domain models for the ONAP homing scenario.

Each :class:`CloudSite` and :class:`VgMuxInstance` maps to one FOCUS node.
Static attributes carry identity and hardware capability (Table II "Site
attributes"); dynamic attributes carry instantaneous capacities (Table II
"Site capacity" / "Service capacity").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.core.attributes import AttributeKind, AttributeSchema, AttributeSpec

MILES_PER_KM = 0.621371


def onap_schema() -> AttributeSchema:
    """Attribute schema for the homing deployment.

    Dynamic cutoffs follow the same philosophy as the OpenStack schema:
    coarse enough that a family holds many nodes, fine enough that a group
    meaningfully narrows a capacity query.
    """
    schema = AttributeSchema()
    schema.add(AttributeSpec("site_vcpus", AttributeKind.DYNAMIC, cutoff=64.0,
                             min_value=0.0, max_value=512.0))
    schema.add(AttributeSpec("site_ram_mb", AttributeKind.DYNAMIC, cutoff=65536.0,
                             min_value=0.0, max_value=524288.0, unit="MB"))
    schema.add(AttributeSpec("upstream_mbps", AttributeKind.DYNAMIC, cutoff=5000.0,
                             min_value=0.0, max_value=40000.0, unit="Mbps"))
    schema.add(AttributeSpec("tenant_quota", AttributeKind.DYNAMIC, cutoff=25.0,
                             min_value=0.0, max_value=100.0))
    schema.add(AttributeSpec("mux_capacity", AttributeKind.DYNAMIC, cutoff=2500.0,
                             min_value=0.0, max_value=10000.0, unit="sessions"))
    # Host-level attributes for the unified-homing architecture (§II-B's
    # closing direction: one FOCUS searching hosts *and* sites).
    schema.add(AttributeSpec("host_ram_mb", AttributeKind.DYNAMIC, cutoff=8192.0,
                             min_value=0.0, max_value=65536.0, unit="MB"))
    schema.add(AttributeSpec("host_vcpus", AttributeKind.DYNAMIC, cutoff=8.0,
                             min_value=0.0, max_value=32.0))
    for name in ("node_type", "service_type", "site_id", "owner", "sriov",
                 "kvm_version", "lat", "lon"):
        schema.add(AttributeSpec(name, AttributeKind.STATIC))
    return schema


def distance_miles(lat_a: float, lon_a: float, lat_b: float, lon_b: float) -> float:
    """Great-circle distance in miles (Fig. 4b's "within 100 miles")."""
    lat1, lon1, lat2, lon2 = map(math.radians, (lat_a, lon_a, lat_b, lon_b))
    h = (
        math.sin((lat2 - lat1) / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2) ** 2
    )
    return 2 * 6371.0 * math.asin(math.sqrt(h)) * MILES_PER_KM


@dataclass
class CloudSite:
    """A provider-edge cloud site."""

    site_id: str
    region: str
    lat: float
    lon: float
    owner: str = "sp"  # service-provider owned
    sriov: bool = True
    kvm_version: int = 22
    site_vcpus: float = 256.0
    site_ram_mb: float = 262144.0
    upstream_mbps: float = 20000.0
    tenant_quota: float = 80.0

    @property
    def node_id(self) -> str:
        return f"site::{self.site_id}"

    def static_attributes(self) -> Dict[str, object]:
        return {
            "node_type": "site",
            "site_id": self.site_id,
            "owner": self.owner,
            "sriov": "yes" if self.sriov else "no",
            "kvm_version": self.kvm_version,
            "lat": self.lat,
            "lon": self.lon,
        }

    def dynamic_attributes(self) -> Dict[str, float]:
        return {
            "site_vcpus": self.site_vcpus,
            "site_ram_mb": self.site_ram_mb,
            "upstream_mbps": self.upstream_mbps,
            "tenant_quota": self.tenant_quota,
        }


@dataclass
class VgMuxInstance:
    """A shared vG multiplexer at a provider edge site."""

    instance_id: str
    site: CloudSite
    #: customer VPN id -> VLAN tag carried by this mux.
    vlan_tags: Dict[str, int] = field(default_factory=dict)
    mux_capacity: float = 5000.0

    @property
    def node_id(self) -> str:
        return f"vgmux::{self.instance_id}"

    def static_attributes(self) -> Dict[str, object]:
        attrs: Dict[str, object] = {
            "node_type": "service",
            "service_type": "vGMux",
            "site_id": self.site.site_id,
            "lat": self.site.lat,
            "lon": self.site.lon,
        }
        for vpn_id, vlan in self.vlan_tags.items():
            attrs[f"vpn::{vpn_id}"] = vlan
        return attrs

    def dynamic_attributes(self) -> Dict[str, float]:
        return {"mux_capacity": self.mux_capacity}
