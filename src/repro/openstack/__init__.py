"""Simulated OpenStack Nova placement flow and its FOCUS integration (§IX).

The paper replaces one seam inside the placement service::

    cands = rp_obj.AllocationCandidates.get_by_requests(requests, limit)

with::

    cands = fc_obj.query(requests, limit)

This package reproduces the surrounding system so that seam is exercised
end-to-end: compute hosts with a fake libvirt/QEMU resource view, the
message-queue-backed placement database (the stock path), the FOCUS-backed
path, and the scheduler's ``select_destinations`` entry point. Spawning a VM
allocates resources on the chosen host, which flows back into the host's
reported attributes — so placement decisions change future query results,
like a real cloud.
"""

from repro.openstack.compute import ComputeHost
from repro.openstack.libvirt import FakeLibvirt, VirtualMachine
from repro.openstack.placement import (
    DbAllocationCandidates,
    FocusAllocationCandidates,
    PlacementRequest,
)
from repro.openstack.scheduler import Scheduler

__all__ = [
    "ComputeHost",
    "DbAllocationCandidates",
    "FakeLibvirt",
    "FocusAllocationCandidates",
    "PlacementRequest",
    "Scheduler",
    "VirtualMachine",
]
