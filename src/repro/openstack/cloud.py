"""Cloud builder: a full simulated OpenStack deployment in one call.

Wires up compute hosts, the reporting path (FOCUS service or broker + DB),
and a scheduler with the matching allocation-candidates backend — the whole
Fig. 6 pipeline, ready for placement requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import FocusConfig
from repro.core.service import FocusService
from repro.mq.broker import Broker
from repro.openstack.compute import ComputeHost
from repro.openstack.libvirt import FakeLibvirt
from repro.openstack.placement import (
    DbAllocationCandidates,
    FocusAllocationCandidates,
)
from repro.openstack.scheduler import Scheduler
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.topology import Topology


@dataclass
class OpenStackCloud:
    """A wired-up simulated cloud."""

    sim: Simulator
    network: Network
    scheduler: Scheduler
    hosts: List[ComputeHost]
    mode: str
    focus: Optional[FocusService] = None
    broker: Optional[Broker] = None
    placement_db: Optional[DbAllocationCandidates] = None

    def host(self, host_id: str) -> ComputeHost:
        for host in self.hosts:
            if host.host_id == host_id:
                return host
        raise KeyError(host_id)

    def total_vms(self) -> int:
        return sum(len(h.hypervisor.domains) for h in self.hosts)


def build_openstack_cloud(
    num_hosts: int,
    *,
    mode: str = "focus",
    seed: int = 0,
    config: Optional[FocusConfig] = None,
    host_ram_mb: int = 16384,
    host_disk_gb: int = 100,
    host_vcpus: int = 8,
    push_interval: float = 1.0,
    record_bandwidth_events: bool = False,
) -> OpenStackCloud:
    """Build a cloud with ``num_hosts`` across the paper's four regions."""
    if mode not in ("focus", "mq"):
        raise ValueError(f"unknown mode {mode!r}")
    sim = Simulator(seed=seed)
    network = Network(sim, Topology(), record_bandwidth_events=record_bandwidth_events)
    regions = [r.name for r in network.topology.regions]
    config = config or FocusConfig()

    focus = broker = placement_db = None
    if mode == "focus":
        focus = FocusService(sim, network, region=regions[0], config=config)
        focus.start()
    else:
        broker = Broker(sim, network, "nova-broker", regions[0])
        broker.start()
        placement_db = DbAllocationCandidates(
            sim, network, "placement-db", regions[0], broker.address
        )
        placement_db.start()

    scheduler = Scheduler(sim, network, "scheduler", regions[0])
    scheduler.start()
    if mode == "focus":
        scheduler.attach_backend(FocusAllocationCandidates(scheduler))
    else:
        scheduler.attach_backend(placement_db)

    hosts = []
    for index in range(num_hosts):
        region = regions[index % len(regions)]
        host = ComputeHost(
            sim,
            network,
            f"host-{index:04d}",
            region,
            mode=mode,
            hypervisor=FakeLibvirt(
                total_ram_mb=host_ram_mb,
                total_disk_gb=host_disk_gb,
                total_vcpus=host_vcpus,
            ),
            focus_address="focus",
            broker_address=broker.address if broker is not None else None,
            config=config,
            static={"arch": "x86", "service_type": "compute"},
            push_interval=push_interval,
        )
        hosts.append(host)
        # Stagger start-up like a rolling deployment.
        sim.schedule(sim.rng.uniform(0.0, 3.0), host.start)

    return OpenStackCloud(
        sim=sim,
        network=network,
        scheduler=scheduler,
        hosts=hosts,
        mode=mode,
        focus=focus,
        broker=broker,
        placement_db=placement_db,
    )
