"""Compute hosts: Nova compute node + hypervisor + reporting agent.

A :class:`ComputeHost` owns a :class:`~repro.openstack.libvirt.FakeLibvirt`
hypervisor and reports its resource view in one of two modes:

* ``"focus"`` — a FOCUS :class:`~repro.core.agent.NodeAgent` collects free
  resources from the hypervisor (the paper's augmented agent, §IX);
* ``"mq"``    — the stock Nova path: state pushed through the message queue
  to the placement database every second (§III-A).

Either way the host serves ``compute.spawn`` / ``compute.destroy`` RPCs from
the scheduler; spawning changes the hypervisor's free resources, which the
reporting path picks up.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.agent import NodeAgent
from repro.core.config import FocusConfig
from repro.openstack.libvirt import FakeLibvirt, VirtualMachine
from repro.sim.loop import Simulator
from repro.sim.network import Network, approx_size
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin

NOVA_STATE_QUEUE = "nova-state"


class ComputeHost(Process, RpcMixin):
    """One physical host in the simulated cloud."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_id: str,
        region: str,
        *,
        mode: str = "focus",
        hypervisor: Optional[FakeLibvirt] = None,
        focus_address: str = "focus",
        broker_address: Optional[str] = None,
        config: Optional[FocusConfig] = None,
        static: Optional[Dict[str, object]] = None,
        push_interval: float = 1.0,
    ) -> None:
        Process.__init__(self, sim, network, f"{host_id}.compute", region)
        self.init_rpc()
        if mode not in ("focus", "mq"):
            raise ValueError(f"unknown compute mode {mode!r}")
        self.host_id = host_id
        self.mode = mode
        self.hypervisor = hypervisor or FakeLibvirt()
        self.push_interval = push_interval
        self.broker_address = broker_address
        self.agent: Optional[NodeAgent] = None
        if mode == "focus":
            self.agent = NodeAgent(
                sim,
                network,
                host_id,
                region,
                focus_address,
                static=static,
                dynamic=self.hypervisor.collect(),
                config=config or FocusConfig(),
                collector=self.hypervisor.collect,
            )
        elif broker_address is None:
            raise ValueError("mq mode requires a broker_address")
        self.serve("compute.spawn", self._rpc_spawn)
        self.serve("compute.destroy", self._rpc_destroy)

    # ------------------------------------------------------------- lifecycle
    def on_start(self) -> None:
        if self.agent is not None:
            self.agent.start()
        if self.mode == "mq":
            self.send(self.broker_address, "mq.connect", {})
            self.every(self.push_interval, self._push_state,
                       jitter=self.push_interval * 0.2)

    def on_stop(self) -> None:
        if self.agent is not None:
            self.agent.stop()

    # ---------------------------------------------------------------- pushes
    def _push_state(self) -> None:
        body = {"node": self.host_id, "attrs": self._attributes()}
        self.send(
            self.broker_address,
            "mq.publish",
            {
                "queue": NOVA_STATE_QUEUE,
                "body": body,
                "size": approx_size(body),
                "sent_at": self.sim.now,
            },
        )

    def _attributes(self) -> Dict[str, object]:
        attrs: Dict[str, object] = {"region": self.region}
        if self.agent is not None:
            attrs.update(self.agent.static)
        attrs.update(self.hypervisor.collect())
        return attrs

    def _refresh_agent(self) -> None:
        """Refresh the node's local attribute view after a spawn/destroy.

        In focus mode the agent's *local* values update immediately (they are
        what the node itself answers queries with — end nodes are the source
        of truth). In mq mode nothing happens here: the stock path only
        learns about the change at the next periodic push (§III-A), which is
        exactly the staleness the paper criticises.
        """
        if self.agent is not None:
            for name, value in self.hypervisor.collect().items():
                self.agent.set_attribute(name, value)

    # ------------------------------------------------------------------ RPCs
    def _rpc_spawn(self, params, respond, message):
        vm = VirtualMachine(
            name=str(params["name"]),
            ram_mb=int(params["ram_mb"]),
            disk_gb=int(params["disk_gb"]),
            vcpus=int(params["vcpus"]),
        )
        ok = self.hypervisor.spawn(vm)
        if ok:
            self._refresh_agent()
        return {"ok": ok, "host": self.host_id}

    def _rpc_destroy(self, params, respond, message):
        vm = self.hypervisor.destroy(str(params["name"]))
        if vm is not None:
            self._refresh_agent()
        return {"ok": vm is not None}
