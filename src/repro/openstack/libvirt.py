"""Fake libvirt/QEMU: the node agent's source of host resource information.

The paper augments its node agent with the libvirt virtualization library to
gather resource information from the QEMU hypervisor (§IX). This module is
the simulated equivalent: a per-host hypervisor holding total capacities and
running VMs, exposing the free-resource view the agent's collector reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class VirtualMachine:
    """A running domain, in libvirt terms."""

    name: str
    ram_mb: int
    disk_gb: int
    vcpus: int


class FakeLibvirt:
    """Hypervisor resource accounting for one host."""

    def __init__(
        self,
        *,
        total_ram_mb: int = 16384,
        total_disk_gb: int = 100,
        total_vcpus: int = 8,
        base_cpu_percent: float = 5.0,
    ) -> None:
        self.total_ram_mb = total_ram_mb
        self.total_disk_gb = total_disk_gb
        self.total_vcpus = total_vcpus
        self.base_cpu_percent = base_cpu_percent
        self.domains: Dict[str, VirtualMachine] = {}

    # ------------------------------------------------------------- inventory
    @property
    def used_ram_mb(self) -> int:
        return sum(vm.ram_mb for vm in self.domains.values())

    @property
    def used_disk_gb(self) -> int:
        return sum(vm.disk_gb for vm in self.domains.values())

    @property
    def used_vcpus(self) -> int:
        return sum(vm.vcpus for vm in self.domains.values())

    @property
    def free_ram_mb(self) -> int:
        return self.total_ram_mb - self.used_ram_mb

    @property
    def free_disk_gb(self) -> int:
        return self.total_disk_gb - self.used_disk_gb

    @property
    def free_vcpus(self) -> int:
        return self.total_vcpus - self.used_vcpus

    def cpu_percent(self) -> float:
        """Utilisation estimate: baseline plus load proportional to vCPU use."""
        if self.total_vcpus == 0:
            return self.base_cpu_percent
        load = 90.0 * self.used_vcpus / self.total_vcpus
        return min(100.0, self.base_cpu_percent + load)

    # ------------------------------------------------------------- lifecycle
    def can_fit(self, ram_mb: int, disk_gb: int, vcpus: int) -> bool:
        return (
            self.free_ram_mb >= ram_mb
            and self.free_disk_gb >= disk_gb
            and self.free_vcpus >= vcpus
        )

    def spawn(self, vm: VirtualMachine) -> bool:
        """Create a domain; False if the host lacks capacity."""
        if vm.name in self.domains:
            raise ValueError(f"domain {vm.name!r} already exists")
        if not self.can_fit(vm.ram_mb, vm.disk_gb, vm.vcpus):
            return False
        self.domains[vm.name] = vm
        return True

    def destroy(self, name: str) -> Optional[VirtualMachine]:
        return self.domains.pop(name, None)

    def list_domains(self) -> List[VirtualMachine]:
        return list(self.domains.values())

    # ------------------------------------------------------------- collector
    def collect(self) -> Dict[str, float]:
        """The attribute snapshot the node agent reports to FOCUS."""
        return {
            "ram_mb": float(self.free_ram_mb),
            "disk_gb": float(self.free_disk_gb),
            "vcpus": float(self.free_vcpus),
            "cpu_percent": self.cpu_percent(),
        }
