"""The placement service's allocation-candidates backends (§IX).

``PlacementRequest`` mirrors Nova's request object::

    struct{ int limit, dict resources }

with resources keyed the Nova way (``MEMORY_MB``, ``DISK_GB``, ``VCPU``).

Two interchangeable backends provide ``get_by_requests``:

* :class:`DbAllocationCandidates` — the stock path: compute hosts push state
  through the message queue into this consumer's database; candidates come
  from the (possibly stale) database.
* :class:`FocusAllocationCandidates` — the paper's replacement: one call to
  FOCUS (``fc_obj.query(requests, limit)``) performing a directed pull.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.query import Query, QueryTerm
from repro.core.rest import FocusClient
from repro.openstack.compute import NOVA_STATE_QUEUE
from repro.sim.loop import Simulator
from repro.sim.network import Message, Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin

#: Nova resource-class names -> FOCUS attribute names.
RESOURCE_ATTRIBUTES = {
    "MEMORY_MB": "ram_mb",
    "DISK_GB": "disk_gb",
    "VCPU": "vcpus",
}


@dataclass(frozen=True)
class PlacementRequest:
    """A VM placement request: minimum resources plus a candidate limit."""

    resources: Dict[str, int]
    limit: int = 10

    def __post_init__(self) -> None:
        unknown = set(self.resources) - set(RESOURCE_ATTRIBUTES)
        if unknown:
            raise ValueError(f"unknown resource classes: {sorted(unknown)}")
        if self.limit <= 0:
            raise ValueError("limit must be positive")

    def to_query(self, *, freshness_ms: float = 0.0) -> Query:
        terms = [
            QueryTerm.at_least(RESOURCE_ATTRIBUTES[name], float(amount))
            for name, amount in sorted(self.resources.items())
        ]
        return Query(terms, limit=self.limit, freshness_ms=freshness_ms)


@dataclass
class Candidate:
    """One allocation candidate returned to the scheduler."""

    host: str
    free: Dict[str, float] = field(default_factory=dict)
    region: str = ""


def _candidates_from_matches(matches: List[dict]) -> List[Candidate]:
    candidates = []
    for match in matches:
        attrs = match.get("attrs", {})
        candidates.append(
            Candidate(
                host=str(match["node"]),
                free={
                    "MEMORY_MB": float(attrs.get("ram_mb", 0.0)),
                    "DISK_GB": float(attrs.get("disk_gb", 0.0)),
                    "VCPU": float(attrs.get("vcpus", 0.0)),
                },
                region=str(match.get("region", "")),
            )
        )
    return candidates


class DbAllocationCandidates(Process, RpcMixin):
    """Stock backend: a DB fed by the nova-state queue."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        broker_address: str,
        *,
        processing_delay: float = 0.04,
    ) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.broker_address = broker_address
        self.processing_delay = processing_delay
        self.states: Dict[str, dict] = {}

    def on_start(self) -> None:
        self.send(self.broker_address, "mq.subscribe", {"queue": NOVA_STATE_QUEUE})

    def handle_message(self, message: Message) -> None:
        if message.kind == "mq.deliver":
            body = message.payload["body"]
            self.states[body["node"]] = body["attrs"]
            return
        super().handle_message(message)

    def get_by_requests(
        self,
        request: PlacementRequest,
        on_reply: Callable[[List[Candidate]], None],
    ) -> None:
        query = request.to_query()
        matches = []
        for node, attrs in self.states.items():
            if query.matches(attrs):
                matches.append({"node": node, "attrs": attrs,
                                "region": attrs.get("region", "")})
                if len(matches) >= request.limit:
                    break
        self.sim.schedule(self.processing_delay, on_reply,
                          _candidates_from_matches(matches))


class FocusAllocationCandidates:
    """The paper's replacement: ``cands = fc_obj.query(requests, limit)``.

    Bound to any RPC-capable host process (typically the scheduler itself).
    Supports placement queries out of the box; other query families are a
    matter of adding methods here (§IX).
    """

    def __init__(self, host, focus_address: str = "focus", *, freshness_ms: float = 0.0) -> None:
        self.client = FocusClient(host, focus_address)
        self.freshness_ms = freshness_ms

    def query(
        self,
        request: PlacementRequest,
        on_reply: Callable[[List[Candidate]], None],
    ) -> None:
        focus_query = request.to_query(freshness_ms=self.freshness_ms)
        self.client.query(
            focus_query,
            lambda response: on_reply(_candidates_from_matches(response.matches)),
        )

    def get_by_requests(
        self,
        request: PlacementRequest,
        on_reply: Callable[[List[Candidate]], None],
    ) -> None:
        """Same signature as the DB backend, so the scheduler can't tell."""
        self.query(request, on_reply)
