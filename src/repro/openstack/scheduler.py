"""The Nova scheduler: ``select_destinations`` and VM spawning (Fig. 6).

The flow reproduced end-to-end:

1. a scheduler client calls ``select_destinations(spec)``;
2. the scheduler asks the placement backend for allocation candidates;
3. it picks a candidate (most free RAM first) and asks that compute host to
   spawn the VM;
4. a stale candidate may refuse (insufficient capacity — the data was pushed
   before another VM landed); the scheduler retries down the candidate list,
   counting retries so experiments can compare staleness across backends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.openstack.placement import Candidate, PlacementRequest
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin


@dataclass
class ScheduleOutcome:
    """Result of one placement attempt."""

    ok: bool
    host: Optional[str] = None
    attempts: int = 0
    candidates: int = 0
    error: Optional[str] = None


class Scheduler(Process, RpcMixin):
    """Nova scheduler with a pluggable allocation-candidates backend."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        region: str,
        *,
        spawn_timeout: float = 3.0,
        host_subset_size: int = 3,
    ) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        self.backend = None  # set via attach_backend
        self.spawn_timeout = spawn_timeout
        #: Nova's anti-herd knob: pick randomly among the top-k candidates
        #: so concurrent schedulers don't all pile onto the same best host.
        self.host_subset_size = max(1, host_subset_size)
        self._vm_counter = itertools.count()
        self._rng = sim.derive_rng(f"scheduler/{address}")
        self.outcomes: List[ScheduleOutcome] = []

    def attach_backend(self, backend) -> None:
        """Attach a DbAllocationCandidates or FocusAllocationCandidates."""
        self.backend = backend

    def select_destinations(
        self,
        request: PlacementRequest,
        on_done: Callable[[ScheduleOutcome], None],
        *,
        vm_name: Optional[str] = None,
        reschedules: int = 1,
    ) -> None:
        """Find a host and spawn the VM there; retries stale candidates.

        If every candidate refuses (they all filled up since the data was
        fetched), the whole request is re-scheduled with a fresh candidate
        query up to ``reschedules`` times — Nova's re-scheduling behaviour.
        """
        if self.backend is None:
            raise RuntimeError("scheduler has no placement backend attached")
        name = vm_name or f"vm-{next(self._vm_counter)}"

        def complete(outcome: ScheduleOutcome) -> None:
            if not outcome.ok and outcome.candidates > 0 and reschedules > 0:
                def reschedule() -> None:
                    self.select_destinations(
                        request, on_done, vm_name=name,
                        reschedules=reschedules - 1,
                    )

                self.after(0.5, reschedule)
                return
            self.outcomes.append(outcome)
            on_done(outcome)

        def have_candidates(candidates: List[Candidate]) -> None:
            ordered = sorted(
                candidates, key=lambda c: c.free.get("MEMORY_MB", 0.0), reverse=True
            )
            # host_subset_size: shuffle the top-k so concurrent requests
            # spread instead of herding onto one best host.
            k = min(self.host_subset_size, len(ordered))
            if k > 1:
                head = ordered[:k]
                self._rng.shuffle(head)
                ordered[:k] = head
            self._try_spawn(request, name, ordered, 0, complete)

        self.backend.get_by_requests(request, have_candidates)

    def _try_spawn(
        self,
        request: PlacementRequest,
        name: str,
        candidates: List[Candidate],
        index: int,
        on_done: Callable[[ScheduleOutcome], None],
    ) -> None:
        if index >= len(candidates):
            on_done(
                ScheduleOutcome(
                    ok=False,
                    attempts=index,
                    candidates=len(candidates),
                    error="no valid host" if candidates else "no candidates",
                )
            )
            return
        target = candidates[index]

        def on_reply(result) -> None:
            if result.get("ok"):
                on_done(
                    ScheduleOutcome(
                        ok=True,
                        host=target.host,
                        attempts=index + 1,
                        candidates=len(candidates),
                    )
                )
            else:
                # Stale candidate: the host filled up since its last report.
                self._try_spawn(request, name, candidates, index + 1, on_done)

        self.call(
            f"{target.host}.compute",
            "compute.spawn",
            {
                "name": name,
                "ram_mb": request.resources.get("MEMORY_MB", 0),
                "disk_gb": request.resources.get("DISK_GB", 0),
                "vcpus": request.resources.get("VCPU", 0),
            },
            on_reply=on_reply,
            on_timeout=lambda: self._try_spawn(
                request, name, candidates, index + 1, on_done
            ),
            timeout=self.spawn_timeout,
        )

    # ---------------------------------------------------------------- migration
    def migrate(
        self,
        vm_name: str,
        source_host: str,
        resources: Dict[str, int],
        on_done: Callable[[ScheduleOutcome], None],
        *,
        limit: int = 10,
    ) -> None:
        """Live migration (Table I): placement that excludes the source host,
        then move the VM — spawn on the destination, destroy on the source.
        """
        request = PlacementRequest(resources, limit=limit)

        def have_candidates(candidates: List[Candidate]) -> None:
            ordered = sorted(
                (c for c in candidates if c.host != source_host),
                key=lambda c: c.free.get("MEMORY_MB", 0.0),
                reverse=True,
            )
            self._try_migrate(vm_name, source_host, request, ordered, 0, on_done)

        self.backend.get_by_requests(request, have_candidates)

    def _try_migrate(self, vm_name, source_host, request, candidates, index, on_done):
        if index >= len(candidates):
            outcome = ScheduleOutcome(
                ok=False, attempts=index, candidates=len(candidates),
                error="no valid migration target",
            )
            self.outcomes.append(outcome)
            on_done(outcome)
            return
        target = candidates[index]

        def destroyed(result) -> None:
            outcome = ScheduleOutcome(
                ok=True, host=target.host, attempts=index + 1,
                candidates=len(candidates),
            )
            self.outcomes.append(outcome)
            on_done(outcome)

        def spawned(result) -> None:
            if not result.get("ok"):
                self._try_migrate(
                    vm_name, source_host, request, candidates, index + 1, on_done
                )
                return
            # Destination is up; release the source (post-copy completes).
            self.call(
                f"{source_host}.compute",
                "compute.destroy",
                {"name": vm_name},
                on_reply=destroyed,
                on_timeout=lambda: destroyed({}),
                timeout=self.spawn_timeout,
            )

        self.call(
            f"{target.host}.compute",
            "compute.spawn",
            {
                "name": vm_name,
                "ram_mb": request.resources.get("MEMORY_MB", 0),
                "disk_gb": request.resources.get("DISK_GB", 0),
                "vcpus": request.resources.get("VCPU", 0),
            },
            on_reply=spawned,
            on_timeout=lambda: self._try_migrate(
                vm_name, source_host, request, candidates, index + 1, on_done
            ),
            timeout=self.spawn_timeout,
        )

    # ------------------------------------------------------------ statistics
    def retry_rate(self) -> float:
        """Average spawn attempts per successful placement (staleness cost)."""
        successes = [o for o in self.outcomes if o.ok]
        if not successes:
            return float("nan")
        return sum(o.attempts for o in successes) / len(successes)

    def failure_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if not o.ok) / len(self.outcomes)
