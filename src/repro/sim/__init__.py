"""Deterministic discrete-event simulation kernel.

The kernel substitutes for the paper's EC2 testbed: simulated time, a
geo-aware network with latency and bandwidth accounting, and metrics.
All higher layers (gossip, store, broker, FOCUS itself) run on top of it.
"""

from repro.sim.events import Event, EventQueue, HeapEventQueue, TimerHandle
from repro.sim.loop import Simulator
from repro.sim.metrics import (
    BandwidthMeter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    WindowTruncatedError,
)
from repro.sim.network import Endpoint, Message, Network, SizedPayload, approx_size
from repro.sim.process import PeriodicTask, Process
from repro.sim.rpc import DEFERRED, RpcMixin
from repro.sim.topology import (
    PAPER_REGIONS,
    Region,
    Site,
    Topology,
    geo_distance_km,
)

__all__ = [
    "BandwidthMeter",
    "Counter",
    "DEFERRED",
    "Endpoint",
    "Event",
    "EventQueue",
    "Gauge",
    "HeapEventQueue",
    "Histogram",
    "Message",
    "MetricsRegistry",
    "Network",
    "PAPER_REGIONS",
    "PeriodicTask",
    "Process",
    "Region",
    "RpcMixin",
    "Simulator",
    "Site",
    "SizedPayload",
    "TimeSeries",
    "TimerHandle",
    "Topology",
    "WindowTruncatedError",
    "approx_size",
    "geo_distance_km",
]
