"""Event queue primitives for the simulation kernel.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, so same-time events fire in scheduling order and runs
are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are created by the :class:`~repro.sim.loop.Simulator`; user code
    normally only sees the :class:`TimerHandle` wrapper.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = getattr(self.callback, "__name__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq} cb={name}{state}>"


class TimerHandle:
    """Cancellation handle returned by ``Simulator.schedule``."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        self._event.cancelled = True


class EventQueue:
    """A heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., Any], args: tuple) -> Event:
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        self._heap.clear()
