"""Event queue primitives for the simulation kernel.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, so same-time events fire in scheduling order and runs
are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are created by the :class:`~repro.sim.loop.Simulator`; user code
    normally only sees the :class:`TimerHandle` wrapper.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = getattr(self.callback, "__name__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq} cb={name}{state}>"


class TimerHandle:
    """Cancellation handle returned by ``Simulator.schedule``."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        self._event.cancelled = True


class EventQueue:
    """A heap of scheduled events with lazy cancellation.

    Heap entries are ``(time, seq, event)`` tuples rather than the events
    themselves: every sift comparison is then a C-level tuple comparison
    instead of a Python ``__lt__`` call that builds two tuples, which is a
    measurable win on the push/pop hot path. Ordering is identical —
    ``(time, seq)`` with ``seq`` a monotone tie-breaker.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., Any], args: tuple) -> Event:
        seq = next(self._seq)
        event = Event(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def pop_before(self, bound: float) -> Optional[Event]:
        """Pop the next live event with ``time <= bound``, else ``None``.

        One heap inspection plus at most one pop per live event, which lets
        :meth:`Simulator.run_until` avoid a separate peek-then-pop pair per
        event.
        """
        heap = self._heap
        while heap:
            if heap[0][0] > bound:
                return None
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def clear(self) -> None:
        self._heap.clear()
