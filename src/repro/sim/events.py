"""Event queue primitives for the simulation kernel.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, so same-time events fire in scheduling order and runs
are fully deterministic.

Two implementations share the same API:

* :class:`EventQueue` — a calendar-queue/heap hybrid. Near-term events live
  in fixed-width time buckets (plain-list appends on insert, one heapify when
  a bucket becomes the drain front), far-future events overflow to a binary
  heap and migrate into buckets as the window advances. Cancellation is O(1)
  tombstoning with periodic compaction. This is the default scheduler.
* :class:`HeapEventQueue` — the original single binary heap, kept as the
  reference implementation for the seeded equivalence tests and the
  before/after kernel benchmarks.

Both order strictly by ``(time, seq)``: the bucket index ``floor(time / width)``
is a monotone function of ``time`` and entries within a bucket are drained
through a heap of ``(time, seq, event)`` tuples, so the hybrid pops events in
exactly the order the plain heap would — verified bit-for-bit by
``tests/test_sim_scheduler.py``.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Instances are created by the :class:`~repro.sim.loop.Simulator`; user code
    normally only sees the :class:`TimerHandle` wrapper. ``time`` and ``seq``
    are mutable so the timer wheel can recycle one sentinel event across
    firings instead of allocating a new object per period.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "recyclable")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Fire-and-forget events (``Simulator.post`` under the v2 profile)
        #: return to the simulator's event pool after firing instead of being
        #: garbage; only ``post``-created events may be marked — anything
        #: reachable through a TimerHandle must never be reused.
        self.recyclable = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = getattr(self.callback, "__name__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq} cb={name}{state}>"


class TimerHandle:
    """Cancellation handle returned by ``Simulator.schedule``.

    When constructed with the owning queue, cancellation notifies it so the
    queue can count tombstones and compact once they dominate the live set.
    """

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: Optional["EventQueue"] = None) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if self._queue is not None:
                self._queue.note_cancelled()


_Entry = Tuple[float, int, Event]


class HeapEventQueue:
    """A single binary heap of scheduled events with lazy cancellation.

    Heap entries are ``(time, seq, event)`` tuples rather than the events
    themselves: every sift comparison is then a C-level tuple comparison
    instead of a Python ``__lt__`` call that builds two tuples. This was the
    only scheduler before the calendar hybrid landed; it is retained as the
    obviously-correct reference for equivalence tests and benchmarks.
    """

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        #: Total inserts ever; lets batch executors detect that no event was
        #: scheduled between two points and reuse a cached :meth:`peek_key`.
        self.pushes = 0

    def __len__(self) -> int:
        return len(self._heap)

    def alloc_seq(self) -> int:
        """Reserve the next ordering sequence number (for the timer wheel)."""
        return next(self._seq)

    def push(self, time: float, callback: Callable[..., Any], args: tuple) -> Event:
        seq = next(self._seq)
        event = Event(time, seq, callback, args)
        heappush(self._heap, (time, seq, event))
        self.pushes += 1
        return event

    def push_entry(self, event: Event) -> None:
        """Insert an event whose ``time``/``seq`` are already assigned."""
        heappush(self._heap, (event.time, event.seq, event))
        self.pushes += 1

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def pop_before(self, bound: float) -> Optional[Event]:
        """Pop the next live event with ``time <= bound``, else ``None``.

        The bound is **inclusive**: an event stamped exactly ``bound`` pops.
        Every backend (heap, calendar, auto) implements the same rule — it is
        the queue half of :meth:`Simulator.run_until`'s boundary contract.
        """
        heap = self._heap
        while heap:
            if heap[0][0] > bound:
                return None
            event = heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the next live event without popping it.

        The network's delivery batcher compares this against its own pending
        deliveries to decide how many it may flush back-to-back without
        violating global ``(time, seq)`` order.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        if heap:
            return (heap[0][0], heap[0][1])
        return None

    def note_cancelled(self) -> None:
        """Tombstone accounting hook; the plain heap only skips lazily."""

    def clear(self) -> None:
        self._heap.clear()


#: Default bucket width: 1/20 of the SWIM probe interval (1 s), so a
#: 1600-node probe storm spreads over ~20 buckets of ~80 timers each and a
#: 100 ms gossip tick typically lands one or two buckets ahead of the front.
DEFAULT_BUCKET_WIDTH = 0.05

#: Default wheel span in buckets; with the default width this covers a 25.6 s
#: near-term window (probe timeouts, suspicion deadlines, gossip ticks all
#: fit) while 30/60 s anti-entropy and reclaim timers overflow to the heap.
DEFAULT_WHEEL_SPAN = 512

#: Compaction trigger: once at least this many tombstones exist *and* they
#: outnumber live entries, cancelled events are swept out eagerly.
_COMPACT_MIN_TOMBSTONES = 512


class EventQueue:
    """Calendar-queue/heap hybrid scheduler.

    Layout:

    * ``_front`` — the bucket currently being drained, kept as a heap of
      ``(time, seq, event)`` tuples (heapified once when the bucket is
      promoted; insertions landing at or before the front bucket heappush
      directly so zero-delay and same-bucket scheduling stay exact);
    * ``_buckets`` — near-term buckets keyed by absolute bucket index
      ``floor(time / width)``; inserts are plain O(1) list appends, FIFO, and
      only sorted (heapified) when the bucket becomes the front;
    * ``_overflow`` — far-future events beyond the wheel horizon, in a binary
      heap; they migrate into buckets as the front advances.

    Cancellation tombstones events in place; :meth:`note_cancelled` counts
    them and triggers :meth:`compact` when they outnumber live entries.
    """

    def __init__(
        self,
        bucket_width: float = DEFAULT_BUCKET_WIDTH,
        wheel_span: int = DEFAULT_WHEEL_SPAN,
    ) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        if wheel_span < 1:
            raise ValueError(f"wheel_span must be >= 1, got {wheel_span}")
        self._width = float(bucket_width)
        self._inv_width = 1.0 / self._width
        self._span = int(wheel_span)
        self._seq = itertools.count()
        self._front: List[_Entry] = []
        self._front_index = -1
        self._horizon = self._span
        self._buckets: Dict[int, List[_Entry]] = {}
        self._nonempty: List[int] = []
        self._overflow: List[_Entry] = []
        self._size = 0
        self._tombstones = 0
        #: Total inserts ever; lets batch executors detect that no event was
        #: scheduled between two points and reuse a cached :meth:`peek_key`.
        #: Compaction and overflow migration move existing entries (they can
        #: never introduce an earlier head), so neither counts as a push.
        self.pushes = 0

    def __len__(self) -> int:
        return self._size

    @property
    def bucket_width(self) -> float:
        return self._width

    def alloc_seq(self) -> int:
        """Reserve the next ordering sequence number (for the timer wheel)."""
        return next(self._seq)

    # ---------------------------------------------------------------- insert
    def push(self, time: float, callback: Callable[..., Any], args: tuple) -> Event:
        seq = next(self._seq)
        event = Event(time, seq, callback, args)
        # Inline routing: this is the hottest insert path in the kernel.
        index = int(time * self._inv_width)
        if index <= self._front_index:
            heappush(self._front, (time, seq, event))
        elif index < self._horizon:
            bucket = self._buckets.get(index)
            if bucket is None:
                self._buckets[index] = [(time, seq, event)]
                heappush(self._nonempty, index)
            else:
                bucket.append((time, seq, event))
        else:
            heappush(self._overflow, (time, seq, event))
        self._size += 1
        self.pushes += 1
        return event

    def push_entry(self, event: Event) -> None:
        """Insert an event whose ``time``/``seq`` are already assigned.

        Used by the timer wheel to recycle its sentinel event: the sentinel
        adopts the exact ``(time, seq)`` of the member timer it proxies, so
        global ordering is identical to scheduling each timer individually.
        Routing is inlined — this runs once per coalesced timer firing.
        """
        time = event.time
        index = int(time * self._inv_width)
        entry = (time, event.seq, event)
        if index <= self._front_index:
            heappush(self._front, entry)
        elif index < self._horizon:
            bucket = self._buckets.get(index)
            if bucket is None:
                self._buckets[index] = [entry]
                heappush(self._nonempty, index)
            else:
                bucket.append(entry)
        else:
            heappush(self._overflow, entry)
        self._size += 1
        self.pushes += 1

    def _route(self, entry: _Entry) -> None:
        index = int(entry[0] * self._inv_width)
        if index <= self._front_index:
            heappush(self._front, entry)
        elif index < self._horizon:
            bucket = self._buckets.get(index)
            if bucket is None:
                self._buckets[index] = [entry]
                heappush(self._nonempty, index)
            else:
                bucket.append(entry)
        else:
            heappush(self._overflow, entry)

    # ----------------------------------------------------------------- drain
    def _advance(self) -> bool:
        """Promote the next non-empty bucket to the front; ``False`` if empty."""
        buckets = self._buckets
        nonempty = self._nonempty
        while True:
            if nonempty:
                index = heappop(nonempty)
                bucket = buckets.pop(index, None)
                if not bucket:
                    continue
                if len(bucket) > 1:
                    heapify(bucket)
                self._front = bucket
                self._front_index = index
                horizon = index + self._span
                if horizon > self._horizon:
                    self._horizon = horizon
                    self._migrate()
                return True
            if not self._overflow:
                return False
            # Whole wheel is empty: jump the window to the overflow head.
            index = int(self._overflow[0][0] * self._inv_width)
            self._front_index = index
            self._horizon = index + self._span
            self._migrate()
            if self._front:
                return True

    def _migrate(self) -> None:
        """Move overflow events now inside the wheel window into buckets."""
        overflow = self._overflow
        if not overflow:
            return
        horizon = self._horizon
        inv_width = self._inv_width
        while overflow and int(overflow[0][0] * inv_width) < horizon:
            self._route(heappop(overflow))

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while True:
            front = self._front
            if front:
                entry = heappop(front)
                self._size -= 1
                event = entry[2]
                if not event.cancelled:
                    return event
                continue
            if not self._advance():
                return None

    def pop_before(self, bound: float) -> Optional[Event]:
        """Pop the next live event with ``time <= bound``, else ``None``.

        The bound is **inclusive** (an event stamped exactly ``bound`` pops),
        matching :class:`HeapEventQueue` — the two backends must agree or
        ``scheduler="auto"``'s mid-run migration would move the boundary.

        One front-heap inspection plus at most one pop per live event, which
        lets :meth:`Simulator.run_until` avoid a separate peek-then-pop pair.
        """
        front = self._front
        while True:
            if front:
                if front[0][0] > bound:
                    return None
                entry = heappop(front)
                self._size -= 1
                event = entry[2]
                if not event.cancelled:
                    return event
                continue
            if not self._advance():
                return None
            front = self._front

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        key = self.peek_key()
        return None if key is None else key[0]

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the next live event without popping it.

        Like :meth:`peek_time` this sweeps tombstones off the front and may
        promote the next bucket; the first live entry is left in place.
        """
        while True:
            front = self._front
            while front:
                entry = front[0]
                if not entry[2].cancelled:
                    return (entry[0], entry[1])
                heappop(front)
                self._size -= 1
            if not self._advance():
                return None

    # ------------------------------------------------------------ tombstones
    def note_cancelled(self) -> None:
        """Record one cancellation; compact once tombstones dominate."""
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= self._size
        ):
            self.compact()

    def compact(self) -> None:
        """Drop every tombstoned entry, keeping live entries' exact order.

        The wheel window (``_front_index``/``_horizon``) is preserved and all
        live entries are re-routed through it, so ordering is untouched.
        """
        entries = [e for e in self._front if not e[2].cancelled]
        for bucket in self._buckets.values():
            entries.extend(e for e in bucket if not e[2].cancelled)
        entries.extend(e for e in self._overflow if not e[2].cancelled)
        self._front = []
        self._buckets = {}
        self._nonempty = []
        self._overflow = []
        self._tombstones = 0
        self._size = len(entries)
        for entry in entries:
            self._route(entry)

    def clear(self) -> None:
        self._front = []
        self._front_index = -1
        self._horizon = self._span
        self._buckets = {}
        self._nonempty = []
        self._overflow = []
        self._size = 0
        self._tombstones = 0


#: Live-queue width at which the ``"auto"`` scheduler backend migrates from
#: the plain binary heap to the calendar queue. Measured on the kernel
#: benchmark's timer-density workload (see benchmarks/README.md): below
#: ~1–2k pending events the heap's tighter constant factors win (a few
#: hundred one-shot deadlines sift in O(log n) with n tiny), while at SWIM
#: densities of 1600+ nodes the wheel's O(1) bucket appends pull ahead and
#: keep widening with population. 2048 sits in the flat middle of the
#: crossover band; the exact value is not sensitive within 2x either way.
AUTO_CALENDAR_THRESHOLD = 2048


class AutoEventQueue:
    """Width-adaptive scheduler: binary heap first, calendar queue at scale.

    Coalesced workloads (timer wheel + delivery batching keep one sentinel
    per class) hold the live queue narrow, where :class:`HeapEventQueue` is
    the faster backend; workloads with many distinct one-shot deadlines
    (per-message timeouts, uncoalesced deliveries) grow the live width, where
    the calendar queue's O(1) bucket inserts win. This facade starts on the
    heap and, the first time the live width crosses ``threshold``, migrates
    every pending entry into a fresh :class:`EventQueue` — preserving each
    event's already-assigned ``(time, seq)`` key and sharing one sequence
    counter across the switch, so the drain order (and therefore any seeded
    run) is bit-identical to either backend run alone. The upgrade is
    one-way: a width that shrinks back stays on the calendar queue, whose
    disadvantage at small widths is a constant factor, not a blowup.
    """

    def __init__(
        self,
        bucket_width: float = DEFAULT_BUCKET_WIDTH,
        wheel_span: int = DEFAULT_WHEEL_SPAN,
        threshold: int = AUTO_CALENDAR_THRESHOLD,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._backend: object = HeapEventQueue()
        self._bucket_width = bucket_width
        self._wheel_span = wheel_span
        self._threshold = threshold
        self._upgraded = False
        # The facade owns the shared sequence counter and insert counter;
        # batch executors bind `_seq.__next__` / read `pushes` off whatever
        # object `sim._queue` is, which is this facade for "auto" runs.
        self._seq = self._backend._seq
        self.pushes = 0

    def __len__(self) -> int:
        return len(self._backend)

    @property
    def backend_name(self) -> str:
        """``"heap"`` until the width crossover, ``"calendar"`` after."""
        return "calendar" if self._upgraded else "heap"

    def alloc_seq(self) -> int:
        """Reserve the next ordering sequence number (for the timer wheel)."""
        return next(self._seq)

    def _upgrade(self) -> None:
        """Migrate every live entry from the heap into a calendar queue.

        Entries keep their assigned ``(time, seq)`` keys and the calendar
        queue adopts the shared sequence counter, so ordering across the
        switch is exactly what either backend alone would produce.
        Tombstoned (cancelled) entries are dropped during the move.
        """
        heap_backend = self._backend
        calendar = EventQueue(
            bucket_width=self._bucket_width, wheel_span=self._wheel_span
        )
        calendar._seq = self._seq
        live = 0
        for entry in heap_backend._heap:
            if not entry[2].cancelled:
                calendar._route(entry)
                live += 1
        calendar._size = live
        heap_backend.clear()
        self._backend = calendar
        self._upgraded = True

    def push(self, time: float, callback: Callable[..., Any], args: tuple) -> Event:
        event = self._backend.push(time, callback, args)
        self.pushes += 1
        if not self._upgraded and len(self._backend) >= self._threshold:
            self._upgrade()
        return event

    def push_entry(self, event: Event) -> None:
        self._backend.push_entry(event)
        self.pushes += 1
        if not self._upgraded and len(self._backend) >= self._threshold:
            self._upgrade()

    def pop(self) -> Optional[Event]:
        return self._backend.pop()

    def pop_before(self, bound: float) -> Optional[Event]:
        # Inclusive bound, delegated: both backends implement the same rule,
        # so the auto migration never shifts which window an event lands in.
        return self._backend.pop_before(bound)

    def peek_time(self) -> Optional[float]:
        return self._backend.peek_time()

    def peek_key(self) -> Optional[Tuple[float, int]]:
        return self._backend.peek_key()

    def note_cancelled(self) -> None:
        self._backend.note_cancelled()

    def clear(self) -> None:
        self._backend.clear()
