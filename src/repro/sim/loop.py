"""The simulator event loop.

A :class:`Simulator` owns simulated time, the event queue and the root random
number generator. Everything in a run — gossip timers, network deliveries,
workload arrivals — is an event on this single loop, which makes runs
reproducible from a single seed.

Scheduling backends (``scheduler=`` constructor knob):

* ``"calendar"`` (default) — the calendar-queue/heap hybrid in
  :mod:`repro.sim.events`, plus a :class:`TimerWheel` that coalesces
  same-interval :class:`RepeatingTimer` storms (1600 nodes' probe ticks)
  into one recycled sentinel entry per interval class;
* ``"heap"`` — the original single binary heap with per-timer scheduling,
  kept so equivalence tests and benchmarks can A/B the two. Both backends
  produce bit-identical event order and RNG draws for the same seed.
* ``"auto"`` — starts on the heap (cheapest at small live-queue widths) and
  migrates every pending event into the calendar queue once the live width
  crosses :data:`~repro.sim.events.AUTO_CALENDAR_THRESHOLD`. Both backends
  drain in identical ``(time, seq)`` order, so the switch is invisible to
  seeded runs.

Determinism profiles (``profile=`` constructor knob):

* ``"v1"`` (default) — the bit-exact reference: every random draw comes from
  per-component ``random.Random`` streams, one Python-level draw at a time.
  The seeded kernel checksum is pinned in ``BENCH_kernel.json`` and must
  never move.
* ``"v2"`` — the fast profile: components may replace per-element draws with
  batched ``numpy.random.Generator`` draws (probe-order permutations, block
  jitter/loss sampling) and per-message Python objects with arena records.
  Runs are still fully deterministic — same seed, same byte stream — but the
  stream *differs* from v1, so v2 carries its own pinned checksum
  (``checksum_v2``) and is validated against v1 statistically (same
  convergence/detection distributions) rather than byte-for-byte.

Long-lived state (membership tables, the node directory, interning pools)
can be pinned out of the cyclic collector's reach after warmup via
:meth:`Simulator.freeze_hot_state`, with the collection thresholds tuned
through the ``gc_thresholds`` knob — see that method's docstring.
"""

from __future__ import annotations

import gc
import hashlib
import math
import random
from heapq import heappop, heappush, heapreplace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import (
    AutoEventQueue,
    Event,
    EventQueue,
    HeapEventQueue,
    TimerHandle,
)

#: Valid determinism profiles; see the module docstring.
PROFILES = ("v1", "v2")

#: Default GC thresholds applied by :meth:`Simulator.freeze_hot_state` under
#: profile v2 when the constructor got no explicit ``gc_thresholds``: a much
#: larger gen0 allocation budget (protocol traffic allocates heavily but
#: almost everything dies young) and gen1/gen2 promotion factors high enough
#: that full collections essentially never run inside a timed region.
V2_GC_THRESHOLDS = (50_000, 50, 50)


class Simulator:
    """Discrete-event simulator with deterministic ordering.

    Parameters
    ----------
    seed:
        Seed for the root RNG. Child components should derive their own
        streams via :meth:`derive_rng` so that adding a component does not
        perturb the randomness seen by unrelated components.
    scheduler:
        ``"calendar"`` (default) or ``"heap"``; see the module docstring.
    coalesce_timers:
        When ``True`` (default) repeating timers register with the shared
        :class:`TimerWheel` instead of re-scheduling themselves one event per
        firing. Ordering is bit-identical either way.
    bucket_width / wheel_span:
        Calendar-queue geometry, forwarded to :class:`EventQueue`.
    profile:
        Determinism profile, ``"v1"`` (default, bit-exact) or ``"v2"``
        (fast; batched numpy RNG + arena message records). Components read
        :attr:`profile` at construction to pick their draw strategy; see the
        module docstring.
    gc_thresholds:
        Optional ``(gen0, gen1, gen2)`` tuple applied (process-wide) by
        :meth:`freeze_hot_state` and restored by :meth:`unfreeze_hot_state`.
        Defaults to :data:`V2_GC_THRESHOLDS` under profile v2 and to
        "leave the interpreter's thresholds alone" under v1.
    workers:
        Declared parallelism for drivers that support the region-sharded
        kernel (:mod:`repro.sim.parallel`). ``1`` (default) is the serial
        loop; ``N > 1`` asks a parallel-aware driver to partition the
        topology's regions over ``N`` worker processes synchronized by
        conservative time windows. The value is advisory — this object is
        always a serial event loop; drivers that ignore it (every pre-existing
        harness) behave exactly as before, which is what keeps ``workers=1``
        byte-identical to the serial kernel.
    strict_rng_labels:
        When ``True``, :meth:`derive_rng` / :meth:`derive_np_rng` raise on a
        duplicate label instead of silently handing out the *same* stream
        twice (two components drawing from one sequence — the classic
        determinism leak). Off by default because crash/restart scenarios
        legitimately re-derive a restarted process's timer labels; collisions
        are always recorded and queryable via :meth:`rng_label_collisions`.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        scheduler: str = "calendar",
        coalesce_timers: bool = True,
        bucket_width: Optional[float] = None,
        wheel_span: Optional[int] = None,
        profile: str = "v1",
        gc_thresholds: Optional[Tuple[int, int, int]] = None,
        workers: int = 1,
        strict_rng_labels: bool = False,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        if not isinstance(workers, int) or workers < 1:
            raise SimulationError(
                f"workers must be a positive int, got {workers!r}"
            )
        self.workers = workers
        self.strict_rng_labels = strict_rng_labels
        #: (method, label) -> times derived; >1 entries are collisions.
        self._derived_labels: Dict[Tuple[str, str], int] = {}
        if profile not in PROFILES:
            raise SimulationError(
                f"unknown determinism profile {profile!r} "
                f"(expected one of {PROFILES})"
            )
        self.profile = profile
        if gc_thresholds is None and profile == "v2":
            gc_thresholds = V2_GC_THRESHOLDS
        if gc_thresholds is not None:
            gc_thresholds = tuple(int(t) for t in gc_thresholds)
            if len(gc_thresholds) != 3 or any(t <= 0 for t in gc_thresholds):
                raise SimulationError(
                    f"gc_thresholds must be three positive ints, "
                    f"got {gc_thresholds!r}"
                )
        self.gc_thresholds = gc_thresholds
        self._gc_frozen = False
        self._gc_prev_thresholds: Optional[Tuple[int, int, int]] = None
        if scheduler == "calendar" or scheduler == "auto":
            kwargs = {}
            if bucket_width is not None:
                kwargs["bucket_width"] = bucket_width
            if wheel_span is not None:
                kwargs["wheel_span"] = wheel_span
            if scheduler == "auto":
                self._queue = AutoEventQueue(**kwargs)
            else:
                self._queue = EventQueue(**kwargs)
        elif scheduler == "heap":
            self._queue = HeapEventQueue()
        else:
            raise SimulationError(
                f"unknown scheduler {scheduler!r} "
                "(expected 'calendar', 'heap' or 'auto')"
            )
        self.scheduler = scheduler
        #: v2: fired fire-and-forget events return here and are reused by the
        #: next ``post`` instead of being allocated fresh (slot storage for
        #: queued records — only ``post``-created events are pooled; anything
        #: a TimerHandle can still reach is never reused).
        self._event_pool: Optional[list] = [] if profile == "v2" else None
        self._wheel: Optional[TimerWheel] = (
            TimerWheel(self) if coalesce_timers else None
        )
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        #: Upper time bound of the innermost active :meth:`run_until`, or
        #: +inf outside one. Batch executors (the network's delivery classes)
        #: consult it so a flush never runs past the caller's stop time.
        self._run_bound = math.inf

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for performance tuning)."""
        return self._events_processed

    # ------------------------------------------------------------- scheduling
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        event = self._queue.push(self._now + delay, callback, args)
        return TimerHandle(event, self._queue)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} (now={self._now:.6f})"
            )
        event = self._queue.push(time, callback, args)
        return TimerHandle(event, self._queue)

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`TimerHandle`.

        For hot paths (network deliveries, protocol timeouts) that never
        cancel: it skips the handle allocation entirely. Ordering is
        identical to :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = self._now + delay
            event.seq = self._queue.alloc_seq()
            event.callback = callback
            event.args = args
            self._queue.push_entry(event)
        else:
            event = self._queue.push(self._now + delay, callback, args)
            if pool is not None:
                event.recyclable = True

    def call_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        start_delay: Optional[float] = None,
    ) -> "RepeatingTimer":
        """Run ``callback()`` every ``interval`` seconds until cancelled.

        ``jitter`` adds a uniform offset in ``[0, jitter)`` to each firing,
        which desynchronises periodic protocols the way real deployments are
        desynchronised by clock drift.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        timer = RepeatingTimer(self, interval, callback, jitter, rng or self.rng)
        timer.start(start_delay)
        return timer

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next event. Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run_until(self, time: float) -> None:
        """Run events until simulated time reaches ``time``.

        The clock is advanced to exactly ``time`` even if the queue drains
        early, so back-to-back ``run_until`` calls behave like a wall clock.

        **Boundary rule** (load-bearing for the parallel kernel's window
        barriers, identical across the heap, calendar and auto backends —
        see ``tests/test_run_until_boundary.py``): the bound is *inclusive*.
        An event stamped exactly ``time`` executes inside this call, in
        ``(time, seq)`` order with everything else at that instant. An event
        pushed *during* the call with a stamp equal to the bound (e.g. a
        zero-delay post from a callback running at ``t == time``) also
        executes in this call; only stamps strictly greater than ``time``
        carry over. After the call returns, ``now == time``, and an event
        then scheduled at exactly ``now`` (delay 0) runs in the *next* call
        — so a window barrier at ``t`` may inject messages stamped ``t`` for
        the following window without re-entering the closed one.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time:.6f} (now={self._now:.6f})"
            )
        # Hot loop: one bounded pop per event instead of peek + pop, with the
        # bound check done against the queue head inside the queue.
        pop_before = self._queue.pop_before
        pool = self._event_pool
        previous_bound = self._run_bound
        self._run_bound = time
        try:
            if pool is None:
                while True:
                    event = pop_before(time)
                    if event is None:
                        break
                    self._now = event.time
                    self._events_processed += 1
                    event.callback(*event.args)
            else:
                recycle = pool.append
                while True:
                    event = pop_before(time)
                    if event is None:
                        break
                    self._now = event.time
                    self._events_processed += 1
                    event.callback(*event.args)
                    if event.recyclable:
                        event.callback = None
                        event.args = ()
                        recycle(event)
        finally:
            self._run_bound = previous_bound
        self._now = time

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is hit).

        Returns the number of events executed. Note that systems with
        repeating timers never drain; prefer :meth:`run_until` for those.
        """
        executed = 0
        while max_events is None or executed < max_events:
            if not self.step():
                break
            executed += 1
        return executed

    # ------------------------------------------------------------------ rng
    def _note_label(self, method: str, label: str) -> None:
        """Record a stream derivation; duplicate = shared-stream hazard.

        Keyed by (method, label) because deriving *both* a ``random.Random``
        and a numpy Generator for one label is fine — they hash the same
        string but the streams are algorithmically unrelated. Deriving the
        same label twice through the same method hands two components the
        same sequence, which silently couples their draws.
        """
        key = (method, label)
        count = self._derived_labels.get(key, 0) + 1
        self._derived_labels[key] = count
        if count > 1 and self.strict_rng_labels:
            raise SimulationError(
                f"RNG label {label!r} derived {count} times via {method} "
                f"on one simulator — two components would share one stream. "
                f"Disambiguate the label (or drop strict_rng_labels if this "
                f"is a deliberate crash-restart re-derivation)."
            )

    def rng_label_collisions(self) -> Dict[Tuple[str, str], int]:
        """``(method, label) -> derivation count`` for labels derived more
        than once. Empty in a well-labelled simulation; crash-restart
        scenarios legitimately re-derive restarted processes' timer labels."""
        return {k: n for k, n in self._derived_labels.items() if n > 1}

    def derive_rng(self, label: str) -> random.Random:
        """Create an independent RNG stream keyed by ``label`` and the seed."""
        self._note_label("derive_rng", label)
        return random.Random(f"{self.seed}/{label}")

    def derive_np_rng(self, label: str):
        """Independent ``numpy.random.Generator`` keyed by ``label`` + seed.

        Seeded through a sha256 digest of the same ``"{seed}/{label}"`` string
        :meth:`derive_rng` hashes, so the stream is stable across platforms
        and interpreter hash randomization. Used by profile-v2 components for
        batched draws; the lazy import keeps ``repro.sim.loop`` importable
        where numpy is absent (numpy is only required once v2 is selected).
        """
        import numpy as np

        self._note_label("derive_np_rng", label)
        digest = hashlib.sha256(f"{self.seed}/{label}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:16], "little"))

    # ------------------------------------------------------------------- gc
    def freeze_hot_state(self) -> Dict[str, object]:
        """Pin all currently-live objects out of the cyclic collector.

        Intended to run once, after warmup (topology built, agents started,
        membership pre-seeded): a full collection sweeps the construction
        garbage, ``gc.freeze`` moves every survivor — membership tables, the
        node directory, interning pools, the event queue — to the permanent
        generation, and the collection thresholds are raised to
        :attr:`gc_thresholds` (when set) so the young generations stop
        promoting protocol traffic into gen2 scans. This changes *no* event
        ordering or RNG draw — it is purely an allocator/GC lever, safe under
        either determinism profile.

        Both ``gc.freeze`` and ``gc.set_threshold`` are process-global;
        :meth:`unfreeze_hot_state` undoes both (benchmarks that build several
        simulators back to back must call it, or each frozen population
        leaks into the next run's heap). Returns a stats dict — frozen-object
        count, per-generation ``gc.get_stats()`` before/after — which the
        kernel benchmark uploads as a CI artifact so GC-pressure regressions
        stay visible in PRs.
        """
        stats_before = gc.get_stats()
        collected = gc.collect()
        gc.freeze()
        if self.gc_thresholds is not None and not self._gc_frozen:
            self._gc_prev_thresholds = gc.get_threshold()
            gc.set_threshold(*self.gc_thresholds)
        self._gc_frozen = True
        return {
            "collected": collected,
            "frozen": gc.get_freeze_count(),
            "thresholds": list(gc.get_threshold()),
            "stats_before": stats_before,
            "stats_after": gc.get_stats(),
        }

    def unfreeze_hot_state(self) -> None:
        """Undo :meth:`freeze_hot_state`: thaw the permanent generation and
        restore the interpreter's previous collection thresholds."""
        if not self._gc_frozen:
            return
        gc.unfreeze()
        if self._gc_prev_thresholds is not None:
            gc.set_threshold(*self._gc_prev_thresholds)
            self._gc_prev_thresholds = None
        self._gc_frozen = False


class _IntervalClass:
    """All wheel-registered timers sharing one interval value.

    ``heap`` orders members by their next ``(fire_time, seq)``; ``event`` is
    the single recycled sentinel scheduled at the head member's exact key;
    ``target`` is that key while ``scheduled`` is true.
    """

    __slots__ = ("interval", "heap", "event", "target", "scheduled")

    def __init__(self, interval: float) -> None:
        self.interval = interval
        self.heap: list = []
        self.event: Optional[Event] = None
        self.target: Optional[Tuple[float, int]] = None
        self.scheduled = False


class TimerWheel:
    """Coalesces same-interval periodic timers into shared queue slots.

    N nodes' probe timers at the same interval keep N entries in one small
    per-class heap but only **one** entry — a recycled sentinel — in the
    event queue. Each firing pops exactly one due member, re-arms it (drawing
    its jitter from its own RNG, same as self-scheduling would), and re-aims
    the sentinel at the new head. The sentinel always adopts the head
    member's exact ``(time, seq)`` key, with seq numbers allocated from the
    queue's shared counter at the same moments per-timer scheduling would
    allocate them — so event order, RNG draws and ``events_processed`` are
    bit-identical to the un-coalesced implementation (asserted by
    ``tests/test_sim_scheduler.py``), while each firing costs two small heap
    operations and zero allocations instead of an ``Event`` + ``TimerHandle``
    pair per period.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._queue = sim._queue
        # Bound seq allocator: one C call per re-arm instead of a method hop.
        self._alloc = sim._queue._seq.__next__
        self._classes: Dict[float, _IntervalClass] = {}

    def class_count(self) -> int:
        """Number of distinct interval classes seen (test/debug helper)."""
        return len(self._classes)

    def add(self, timer: "RepeatingTimer", fire_time: float) -> None:
        """Register ``timer``'s next firing at absolute ``fire_time``."""
        queue = self._sim._queue
        seq = queue.alloc_seq()
        interval = timer._interval
        cls = self._classes.get(interval)
        if cls is None:
            cls = _IntervalClass(interval)
            self._classes[interval] = cls
        key = (fire_time, seq)
        timer._pending = key
        timer._pending_class = cls
        heappush(cls.heap, (fire_time, seq, timer))
        if not cls.scheduled or key < cls.target:
            self._retarget(cls)

    def discard(self, timer: "RepeatingTimer") -> None:
        """Forget a stopped timer.

        Its heap entry is tombstoned lazily; the sentinel is re-aimed only if
        it was pointing at this very timer.
        """
        cls = timer._pending_class
        if cls is not None and cls.scheduled and cls.target == timer._pending:
            self._retarget(cls)

    def _reap(self, cls: _IntervalClass) -> None:
        """Drop an emptied interval class so churning intervals don't leak.

        Called wherever a class's member heap drains (all timers stopped or
        migrated away via ``set_interval``). A later ``add`` for the same
        interval simply recreates the class, so reaping is invisible to
        timers — it only bounds ``_classes`` by the number of *live* distinct
        intervals instead of every interval ever seen.
        """
        if not cls.heap:
            current = self._classes.get(cls.interval)
            if current is cls:
                del self._classes[cls.interval]

    def _fire_class(self, cls: _IntervalClass) -> None:
        """Sentinel callback: fire the one due member, re-arm, re-aim.

        This is the per-event hot path of a coalesced timer storm, so the
        common case (member stays in its class, sentinel reusable, head
        live) is fully inlined: two small-heap operations, one jitter draw,
        one seq allocation, one bucket insert — zero allocations.
        """
        heap = cls.heap
        while True:
            time, seq, timer = heap[0]
            pending = timer._pending
            if not timer._stopped and pending[0] == time and pending[1] == seq:
                break
            heappop(heap)  # tombstoned (stopped or superseded) member
            if not heap:  # pragma: no cover - sentinel is re-aimed on head stop
                cls.scheduled = False
                cls.target = None
                self._reap(cls)
                return
        # Re-arm before the callback, exactly like RepeatingTimer._fire: the
        # jitter draw and seq allocation happen at the same moments they
        # would under per-timer scheduling. The sentinel fired *at* the
        # member's key, so the member's own ``time`` is the current clock.
        interval = timer._interval
        jitter = timer._jitter
        if jitter > 0.0:
            next_time = time + interval + timer._rng.uniform(0.0, jitter)
        else:
            next_time = time + interval
        next_seq = self._alloc()
        timer._pending = (next_time, next_seq)
        if interval == cls.interval:
            # next_time > time, so replacing the heap top keeps the invariant
            # with a single sift instead of a pop + push pair.
            heapreplace(heap, (next_time, next_seq, timer))
        else:
            # set_interval moved the timer to a different class mid-flight.
            heappop(heap)
            self._rearm_into_new_class(timer, next_time, next_seq)
        # Re-aim the sentinel at the class's live head.
        while heap:
            head_time, head_seq, head_timer = heap[0]
            pending = head_timer._pending
            if (
                head_timer._stopped
                or pending[0] != head_time
                or pending[1] != head_seq
            ):
                heappop(heap)  # tombstoned (stopped or superseded) member
                continue
            event = cls.event  # the just-fired sentinel: free to recycle
            event.time = head_time
            event.seq = head_seq
            cls.target = (head_time, head_seq)
            self._queue.push_entry(event)  # cls.scheduled stays True
            timer._callback()
            return
        cls.scheduled = False
        cls.target = None
        self._reap(cls)
        timer._callback()

    def _rearm_into_new_class(
        self, timer: "RepeatingTimer", next_time: float, next_seq: int
    ) -> None:
        """Slow path of :meth:`_fire_class`: the timer changed interval."""
        interval = timer._interval
        target_cls = self._classes.get(interval)
        if target_cls is None:
            target_cls = _IntervalClass(interval)
            self._classes[interval] = target_cls
        timer._pending_class = target_cls
        key = (next_time, next_seq)
        heappush(target_cls.heap, (next_time, next_seq, timer))
        if not target_cls.scheduled or key < target_cls.target:
            self._retarget(target_cls)

    def _retarget(self, cls: _IntervalClass) -> None:
        """Schedule the sentinel at the head member's exact ``(time, seq)``."""
        heap = cls.heap
        while heap:
            time, seq, timer = heap[0]
            if timer._stopped or timer._pending != (time, seq):
                heappop(heap)  # tombstoned (stopped or superseded) member
                continue
            break
        queue = self._sim._queue
        if not heap:
            if cls.scheduled:
                cls.event.cancelled = True
                queue.note_cancelled()
                cls.event = None
                cls.scheduled = False
            cls.target = None
            self._reap(cls)
            return
        key = (time, seq)
        if cls.scheduled:
            if cls.target == key:
                return
            # The queued sentinel entry is stale; tombstone it and use a
            # fresh Event (the old object stays behind as the tombstone).
            cls.event.cancelled = True
            queue.note_cancelled()
            cls.event = None
        event = cls.event
        if event is None:
            event = Event(time, seq, self._fire_class, (cls,))
            cls.event = event
        else:
            event.time = time
            event.seq = seq
        queue.push_entry(event)
        cls.scheduled = True
        cls.target = key


class RepeatingTimer:
    """A periodic timer created by :meth:`Simulator.call_every`.

    With timer coalescing on (the default) the timer registers with the
    simulator's :class:`TimerWheel`; otherwise it re-schedules itself one
    event per firing, which is the original (reference) behaviour.
    """

    __slots__ = (
        "_sim",
        "_interval",
        "_callback",
        "_jitter",
        "_rng",
        "_handle",
        "_stopped",
        "_pending",
        "_pending_class",
    )

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        jitter: float,
        rng: random.Random,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[TimerHandle] = None
        self._stopped = False
        self._pending: Optional[Tuple[float, int]] = None
        self._pending_class: Optional[_IntervalClass] = None

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def interval(self) -> float:
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the period; takes effect from the next (re)scheduling."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._interval = interval

    def start(self, start_delay: Optional[float] = None) -> None:
        if self._stopped:
            raise SimulationError("cannot restart a stopped timer")
        delay = self._next_delay() if start_delay is None else start_delay
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        wheel = self._sim._wheel
        if wheel is not None:
            wheel.add(self, self._sim.now + delay)
        else:
            self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._pending_class is not None:
            self._sim._wheel.discard(self)
            self._pending_class = None
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self._jitter > 0:
            return self._interval + self._rng.uniform(0.0, self._jitter)
        return self._interval

    def _fire(self) -> None:
        if self._stopped:
            return
        self._handle = self._sim.schedule(self._next_delay(), self._fire)
        self._callback()
