"""The simulator event loop.

A :class:`Simulator` owns simulated time, the event queue and the root random
number generator. Everything in a run — gossip timers, network deliveries,
workload arrivals — is an event on this single loop, which makes runs
reproducible from a single seed.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventQueue, TimerHandle


class Simulator:
    """Discrete-event simulator with deterministic ordering.

    Parameters
    ----------
    seed:
        Seed for the root RNG. Child components should derive their own
        streams via :meth:`derive_rng` so that adding a component does not
        perturb the randomness seen by unrelated components.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for performance tuning)."""
        return self._events_processed

    # ------------------------------------------------------------- scheduling
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        event = self._queue.push(self._now + delay, callback, args)
        return TimerHandle(event)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} (now={self._now:.6f})"
            )
        event = self._queue.push(time, callback, args)
        return TimerHandle(event)

    def call_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        *,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        start_delay: Optional[float] = None,
    ) -> "RepeatingTimer":
        """Run ``callback()`` every ``interval`` seconds until cancelled.

        ``jitter`` adds a uniform offset in ``[0, jitter)`` to each firing,
        which desynchronises periodic protocols the way real deployments are
        desynchronised by clock drift.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        timer = RepeatingTimer(self, interval, callback, jitter, rng or self.rng)
        timer.start(start_delay)
        return timer

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next event. Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run_until(self, time: float) -> None:
        """Run events until simulated time reaches ``time``.

        The clock is advanced to exactly ``time`` even if the queue drains
        early, so back-to-back ``run_until`` calls behave like a wall clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time:.6f} (now={self._now:.6f})"
            )
        # Hot loop: one bounded pop per event instead of peek + pop, with the
        # bound check done against the heap head inside the queue.
        pop_before = self._queue.pop_before
        while True:
            event = pop_before(time)
            if event is None:
                break
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
        self._now = time

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is hit).

        Returns the number of events executed. Note that systems with
        repeating timers never drain; prefer :meth:`run_until` for those.
        """
        executed = 0
        while max_events is None or executed < max_events:
            if not self.step():
                break
            executed += 1
        return executed

    # ------------------------------------------------------------------ rng
    def derive_rng(self, label: str) -> random.Random:
        """Create an independent RNG stream keyed by ``label`` and the seed."""
        return random.Random(f"{self.seed}/{label}")


class RepeatingTimer:
    """A periodic timer created by :meth:`Simulator.call_every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        jitter: float,
        rng: random.Random,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[TimerHandle] = None
        self._stopped = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def interval(self) -> float:
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the period; takes effect from the next (re)scheduling."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._interval = interval

    def start(self, start_delay: Optional[float] = None) -> None:
        if self._stopped:
            raise SimulationError("cannot restart a stopped timer")
        delay = self._next_delay() if start_delay is None else start_delay
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self._jitter > 0:
            return self._interval + self._rng.uniform(0.0, self._jitter)
        return self._interval

    def _fire(self) -> None:
        if self._stopped:
            return
        self._handle = self._sim.schedule(self._next_delay(), self._fire)
        self._callback()
