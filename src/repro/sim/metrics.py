"""Metrics primitives: counters, gauges, histograms, time series, bandwidth.

The paper's evaluation reports bandwidth at the query server (Fig. 7a), query
latency percentiles (Fig. 7b/7c/8c), server CPU/RAM (Fig. 8a) and node-agent
bandwidth (Fig. 8b). These primitives are the measurement substrate for all
of those: every network send is accounted against the sender's and receiver's
:class:`BandwidthMeter`.

Window queries (``BandwidthMeter.bytes_in_window``, ``TimeSeries.window``)
exploit the fact that the simulator's clock is monotone, so events arrive in
nondecreasing time order: lookups are a ``bisect`` over a parallel time array
plus a prefix-sum cache, O(log n) instead of a scan over every recorded
event. Out-of-order appends are tolerated (a lazy re-sort restores the fast
path) so the primitives stay safe for hand-fed test data.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Tuple


class WindowTruncatedError(ValueError):
    """A window query reached behind a meter's ``horizon`` truncation point.

    Events older than the horizon have been discarded, so the query would
    silently undercount; raising makes the data loss explicit. Either widen
    the horizon, query a window starting at or after
    :attr:`BandwidthMeter.truncated_before`, or use the totals (which never
    truncate).
    """


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down, with peak tracking.

    ``peak`` is initialised from the first :meth:`set`, so a gauge that only
    ever holds negative values reports its true (negative) peak rather than a
    phantom ``0.0`` that was never set. Before any ``set`` it is ``nan``.
    """

    __slots__ = ("name", "value", "_peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._peak: Optional[float] = None

    @property
    def peak(self) -> float:
        return math.nan if self._peak is None else self._peak

    def set(self, value: float) -> None:
        self.value = value
        if self._peak is None or value > self._peak:
            self._peak = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


#: Geometric growth factor of streaming-histogram buckets. The relative error
#: of a streaming percentile is bounded by ``sqrt(growth) - 1`` (~1%).
STREAMING_BUCKET_GROWTH = 1.02

#: Magnitudes below this collapse into the zero bucket.
_STREAMING_MIN_MAG = 1e-9

_LOG_GROWTH = math.log(STREAMING_BUCKET_GROWTH)
_HALF_BUCKET = math.sqrt(STREAMING_BUCKET_GROWTH)


def _bucket_index(value: float) -> int:
    """Signed geometric bucket index; bucket 0 holds near-zero magnitudes."""
    mag = abs(value)
    if mag < _STREAMING_MIN_MAG:
        return 0
    index = 1 + int(math.log(mag / _STREAMING_MIN_MAG) / _LOG_GROWTH)
    return index if value > 0 else -index


def _bucket_value(index: int) -> float:
    """Geometric midpoint of a bucket, the representative returned to callers."""
    if index == 0:
        return 0.0
    mag = _STREAMING_MIN_MAG * STREAMING_BUCKET_GROWTH ** (abs(index) - 1) * _HALF_BUCKET
    return mag if index > 0 else -mag


class Histogram:
    """Observation store with percentiles, in one of two storage modes.

    * exact (default): raw observations, linear-interpolated percentiles.
      Suits benchmark sweeps (at most a few hundred thousand samples); the
      value list is sorted at most once per batch of observations, so
      ``summary()`` pays a single sort no matter how many percentiles it
      reads.
    * ``streaming=True``: log-bucketed counts (HDR-histogram style) with O(1)
      ``observe`` and O(buckets) ``percentile`` at ~1% relative error. For
      long-running meters that interleave observes with percentile reads,
      where re-sorting raw values on every read would be O(n log n) each.
      ``count``/``total``/``mean``/``min``/``max`` stay exact.
    """

    __slots__ = ("name", "streaming", "_values", "_sorted", "_buckets",
                 "_bucket_order", "_count", "_total", "_min", "_max")

    def __init__(self, name: str, *, streaming: bool = False) -> None:
        self.name = name
        self.streaming = streaming
        self._values: List[float] = []
        self._sorted = True
        self._buckets: Dict[int, int] = {}
        self._bucket_order: Optional[List[int]] = None
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        if self.streaming:
            index = _bucket_index(value)
            buckets = self._buckets
            if index in buckets:
                buckets[index] += 1
            else:
                buckets[index] = 1
                self._bucket_order = None
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        else:
            self._values.append(value)
            self._sorted = False

    def __len__(self) -> int:
        return self._count if self.streaming else len(self._values)

    @property
    def count(self) -> int:
        return len(self)

    @property
    def total(self) -> float:
        return self._total if self.streaming else sum(self._values)

    def mean(self) -> float:
        if not len(self):
            return math.nan
        return self.total / len(self)

    def min(self) -> float:
        if self.streaming:
            return self._min if self._count else math.nan
        return min(self._values) if self._values else math.nan

    def max(self) -> float:
        if self.streaming:
            return self._max if self._count else math.nan
        return max(self._values) if self._values else math.nan

    def percentile(self, p: float) -> float:
        """Percentile, ``p`` in [0, 100].

        Exact mode linearly interpolates between order statistics; streaming
        mode returns the nearest-rank bucket representative (clamped to the
        observed min/max, so 0 and 100 are exact).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.streaming:
            return self._streaming_percentile(p)
        if not self._values:
            return math.nan
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100) * (len(self._values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._values[low]
        frac = rank - low
        return self._values[low] * (1 - frac) + self._values[high] * frac

    def _streaming_percentile(self, p: float) -> float:
        if not self._count:
            return math.nan
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        # Nearest-rank: the k-th smallest observation, k in [1, count].
        k = max(1, math.ceil((p / 100) * self._count))
        if self._bucket_order is None:
            self._bucket_order = sorted(self._buckets)
        cumulative = 0
        for index in self._bucket_order:
            cumulative += self._buckets[index]
            if cumulative >= k:
                return min(max(_bucket_value(index), self._min), self._max)
        return self._max  # pragma: no cover - cumulative always reaches count

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p75": self.percentile(75),
            "p99": self.percentile(99),
            "max": self.max(),
        }


class TimeSeries:
    """Append-only ``(time, value)`` samples with windowed aggregation."""

    __slots__ = ("name", "samples", "_times", "_prefix", "_comp", "_unsorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self._times: List[float] = []
        # Neumaier-compensated prefix sums: _prefix[i] holds the rounded
        # running sum, _comp[i] the accumulated rounding error, so a window
        # sum (prefix[hi]-prefix[lo]) + (comp[hi]-comp[lo]) stays accurate
        # even when a tiny window follows samples many orders of magnitude
        # larger (plain prefix differences cancel catastrophically there).
        self._prefix: List[float] = [0.0]
        self._comp: List[float] = [0.0]
        self._unsorted = False

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            self._unsorted = True
        self.samples.append((time, value))
        self._times.append(time)

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def _bounds(self, start: float, end: float) -> Tuple[int, int]:
        if self._unsorted:
            # Stable sort: samples at equal times keep their record order.
            self.samples.sort(key=lambda sample: sample[0])
            self._times = [t for t, _ in self.samples]
            self._prefix = [0.0]
            self._comp = [0.0]
            self._unsorted = False
        return bisect_left(self._times, start), bisect_right(self._times, end)

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        lo, hi = self._bounds(start, end)
        return self.samples[lo:hi]

    def mean_over(self, start: float, end: float) -> float:
        lo, hi = self._bounds(start, end)
        if hi <= lo:
            return math.nan
        prefix = self._prefix
        comp = self._comp
        if len(prefix) <= len(self.samples):
            total = prefix[-1]
            error = comp[-1]
            for _, value in self.samples[len(prefix) - 1:]:
                new_total = total + value
                if abs(total) >= abs(value):
                    error += (total - new_total) + value
                else:
                    error += (value - new_total) + total
                total = new_total
                prefix.append(total)
                comp.append(error)
        return ((prefix[hi] - prefix[lo]) + (comp[hi] - comp[lo])) / (hi - lo)


class _EventLog:
    """Timestamped sizes, kept queryable in O(log n).

    Parallel time/size arrays (appends are nondecreasing in time on the
    simulator's clock) plus a lazily-extended prefix-sum array; a window sum
    is two bisects and one subtraction. An out-of-order append flips a flag
    and the next query re-sorts both arrays (stable, so ties keep append
    order) before rebuilding the cache.
    """

    __slots__ = ("times", "sizes", "_prefix", "_unsorted", "truncated_before")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.sizes: List[int] = []
        self._prefix: List[int] = [0]
        self._unsorted = False
        #: Highest cutoff at which events were actually discarded; window
        #: queries starting below it raise instead of undercounting.
        self.truncated_before = -math.inf

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, size: int) -> None:
        if self.times and time < self.times[-1]:
            self._unsorted = True
        self.times.append(time)
        self.sizes.append(size)

    def events(self) -> List[Tuple[float, int]]:
        return list(zip(self.times, self.sizes))

    def _ensure_sorted(self) -> None:
        if self._unsorted:
            order = sorted(range(len(self.times)), key=self.times.__getitem__)
            self.times = [self.times[i] for i in order]
            self.sizes = [self.sizes[i] for i in order]
            self._prefix = [0]
            self._unsorted = False

    def drop_before(self, cutoff: float) -> int:
        """Discard events with ``time < cutoff``; returns how many were dropped.

        The prefix-sum cache is invalidated and rebuilt lazily on the next
        query, so window sums that lie entirely at or after ``cutoff`` return
        exactly what they would have on the untruncated log.
        """
        if not self.times:
            return 0
        self._ensure_sorted()
        dropped = bisect_left(self.times, cutoff)
        if dropped:
            del self.times[:dropped]
            del self.sizes[:dropped]
            self._prefix = [0]
            if cutoff > self.truncated_before:
                self.truncated_before = cutoff
        return dropped

    def bytes_between(self, start: float, end: float) -> int:
        if start < self.truncated_before:
            raise WindowTruncatedError(
                f"window start {start:g} reaches behind the truncation point "
                f"{self.truncated_before:g}: events there were discarded by "
                "the horizon, so the sum would silently undercount"
            )
        if not self.times:
            return 0
        self._ensure_sorted()
        prefix = self._prefix
        if len(prefix) <= len(self.sizes):
            total = prefix[-1]
            for size in self.sizes[len(prefix) - 1:]:
                total += size
                prefix.append(total)
        lo = bisect_left(self.times, start)
        hi = bisect_right(self.times, end)
        return prefix[hi] - prefix[lo]

    def clear(self) -> None:
        self.times.clear()
        self.sizes.clear()
        self._prefix = [0]
        self._unsorted = False
        self.truncated_before = -math.inf


class BandwidthMeter:
    """Byte accounting for one endpoint.

    Tracks totals and a per-direction event log so benchmarks can compute
    average KB/s over any measurement window without rescanning the run.

    ``horizon`` (seconds) turns the event logs into a ring buffer: every
    :data:`_TRUNCATE_EVERY` recorded events, entries older than ``horizon``
    behind the newest event are discarded. Totals (``bytes_sent`` etc.) are
    unaffected, and any window query whose ``start`` is at or after
    ``newest - horizon`` returns exactly the untruncated answer (property
    test in ``tests/test_sim_metrics.py``). A window whose ``start`` falls
    behind the truncation point raises :class:`WindowTruncatedError` instead
    of silently under-counting — bounded memory must not read as lower
    bandwidth.
    """

    __slots__ = ("name", "bytes_sent", "bytes_received", "messages_sent",
                 "messages_received", "_sent", "_recv", "record_events",
                 "horizon", "_since_truncate", "_oldest", "_newest")

    #: How many recorded events between truncation sweeps (amortises the
    #: O(dropped) list surgery to O(1) per event).
    _TRUNCATE_EVERY = 1024

    def __init__(
        self,
        name: str,
        *,
        record_events: bool = True,
        horizon: Optional[float] = None,
    ) -> None:
        if horizon is not None and horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.name = name
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self._sent = _EventLog()
        self._recv = _EventLog()
        self.record_events = record_events
        self.horizon = horizon
        self._since_truncate = 0
        # Aggregate mode (record_events=False): the observed time span, so
        # window queries that cover every event can still answer exactly
        # from the totals.
        self._oldest = math.inf
        self._newest = -math.inf

    def on_send(self, time: float, size: int) -> None:
        self.bytes_sent += size
        self.messages_sent += 1
        if self.record_events:
            self._sent.append(time, size)
            if self.horizon is not None:
                self._maybe_truncate(time)
        else:
            if time < self._oldest:
                self._oldest = time
            if time > self._newest:
                self._newest = time

    def on_send_many(self, time: float, size: int, count: int) -> None:
        """``count`` same-sized sends at one instant (fan-out fast path).

        Identical observable state to ``count`` ``on_send`` calls: the event
        log gains ``count`` entries and the truncation cadence advances once
        per entry, so window queries and horizon sweeps are unchanged.
        """
        self.bytes_sent += size * count
        self.messages_sent += count
        if self.record_events:
            append = self._sent.append
            if self.horizon is not None:
                for _ in range(count):
                    append(time, size)
                    self._maybe_truncate(time)
            else:
                for _ in range(count):
                    append(time, size)
        else:
            if time < self._oldest:
                self._oldest = time
            if time > self._newest:
                self._newest = time

    def on_receive(self, time: float, size: int) -> None:
        self.bytes_received += size
        self.messages_received += 1
        if self.record_events:
            self._recv.append(time, size)
            if self.horizon is not None:
                self._maybe_truncate(time)
        else:
            if time < self._oldest:
                self._oldest = time
            if time > self._newest:
                self._newest = time

    def _maybe_truncate(self, time: float) -> None:
        self._since_truncate += 1
        if self._since_truncate >= self._TRUNCATE_EVERY:
            self._since_truncate = 0
            cutoff = time - self.horizon
            self._sent.drop_before(cutoff)
            self._recv.drop_before(cutoff)

    def truncate_now(self) -> None:
        """Force an immediate truncation sweep (requires ``horizon``)."""
        if self.horizon is None:
            raise ValueError("truncate_now() requires a horizon")
        newest = max(
            self._sent.times[-1] if self._sent.times else -math.inf,
            self._recv.times[-1] if self._recv.times else -math.inf,
        )
        if newest > -math.inf:
            self._sent.drop_before(newest - self.horizon)
            self._recv.drop_before(newest - self.horizon)
        self._since_truncate = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    @property
    def truncated_before(self) -> float:
        """Earliest time window queries may start without raising.

        ``-inf`` until the horizon actually discards an event; thereafter the
        highest cutoff that dropped anything (in either direction).
        """
        return max(self._sent.truncated_before, self._recv.truncated_before)

    def sent_events(self) -> List[Tuple[float, int]]:
        """Recorded ``(time, size)`` send events (test/debug helper)."""
        return self._sent.events()

    def received_events(self) -> List[Tuple[float, int]]:
        """Recorded ``(time, size)`` receive events (test/debug helper)."""
        return self._recv.events()

    def bytes_in_window(self, start: float, end: float) -> int:
        """Total bytes (both directions) in ``[start, end]``.

        With ``record_events=True``: O(log n) in the number of recorded
        events. Raises :class:`WindowTruncatedError` when ``start`` falls
        behind :attr:`truncated_before` (the horizon discarded events there).

        With ``record_events=False`` (aggregate mode, the v2 profile's
        default): answers exactly — from the running totals — whenever the
        window covers every event the meter has seen, and raises
        :class:`WindowTruncatedError` for partial windows, whose per-event
        breakdown was never recorded.
        """
        if not self.record_events:
            if start <= self._oldest and end >= self._newest:
                return self.bytes_sent + self.bytes_received
            raise WindowTruncatedError(
                f"meter {self.name!r} records aggregates only "
                f"(record_events=False); window [{start}, {end}] does not "
                f"cover the observed span [{self._oldest}, {self._newest}]"
            )
        return self._sent.bytes_between(start, end) + self._recv.bytes_between(
            start, end
        )

    def rate_bps(self, start: float, end: float) -> float:
        """Average bytes/second (both directions) over the window."""
        duration = end - start
        if duration <= 0:
            raise ValueError("window must have positive duration")
        return self.bytes_in_window(start, end) / duration

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self._sent.clear()
        self._recv.clear()
        self._since_truncate = 0


class MetricsRegistry:
    """Named registry so components can share metric instances."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, *, streaming: bool = False) -> Histogram:
        """Get or create a histogram; ``streaming`` only applies on creation."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, streaming=streaming)
        return self._histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def names(self) -> Dict[str, Iterable[str]]:
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
            "timeseries": sorted(self._series),
        }

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)
