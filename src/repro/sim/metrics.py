"""Metrics primitives: counters, gauges, histograms, time series, bandwidth.

The paper's evaluation reports bandwidth at the query server (Fig. 7a), query
latency percentiles (Fig. 7b/7c/8c), server CPU/RAM (Fig. 8a) and node-agent
bandwidth (Fig. 8b). These primitives are the measurement substrate for all
of those: every network send is accounted against the sender's and receiver's
:class:`BandwidthMeter`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down, with peak tracking."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """Stores raw observations; exact percentiles on demand.

    Benchmark sweeps observe at most a few hundred thousand samples, so
    keeping raw values is affordable and avoids bucketing error in the
    reported percentiles.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self._values.append(value)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def mean(self) -> float:
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)

    def min(self) -> float:
        return min(self._values) if self._values else math.nan

    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return math.nan
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100) * (len(self._values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._values[low]
        frac = rank - low
        return self._values[low] * (1 - frac) + self._values[high] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p75": self.percentile(75),
            "p99": self.percentile(99),
            "max": self.max(),
        }


class TimeSeries:
    """Append-only ``(time, value)`` samples with windowed aggregation."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        return [(t, v) for t, v in self.samples if start <= t <= end]

    def mean_over(self, start: float, end: float) -> float:
        window = self.window(start, end)
        if not window:
            return math.nan
        return sum(v for _, v in window) / len(window)


class BandwidthMeter:
    """Byte accounting for one endpoint.

    Tracks totals and a time series of per-message sizes so benchmarks can
    compute average KB/s over any measurement window.
    """

    __slots__ = ("name", "bytes_sent", "bytes_received", "messages_sent",
                 "messages_received", "_sent_events", "_recv_events",
                 "record_events")

    def __init__(self, name: str, *, record_events: bool = True) -> None:
        self.name = name
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self._sent_events: List[Tuple[float, int]] = []
        self._recv_events: List[Tuple[float, int]] = []
        self.record_events = record_events

    def on_send(self, time: float, size: int) -> None:
        self.bytes_sent += size
        self.messages_sent += 1
        if self.record_events:
            self._sent_events.append((time, size))

    def on_receive(self, time: float, size: int) -> None:
        self.bytes_received += size
        self.messages_received += 1
        if self.record_events:
            self._recv_events.append((time, size))

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def bytes_in_window(self, start: float, end: float) -> int:
        """Total bytes (both directions) in ``[start, end]``.

        Requires ``record_events=True``.
        """
        total = 0
        for events in (self._sent_events, self._recv_events):
            for t, size in events:
                if start <= t <= end:
                    total += size
        return total

    def rate_bps(self, start: float, end: float) -> float:
        """Average bytes/second (both directions) over the window."""
        duration = end - start
        if duration <= 0:
            raise ValueError("window must have positive duration")
        return self.bytes_in_window(start, end) / duration

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self._sent_events.clear()
        self._recv_events.clear()


class MetricsRegistry:
    """Named registry so components can share metric instances."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def names(self) -> Dict[str, Iterable[str]]:
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
            "timeseries": sorted(self._series),
        }

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(name)
