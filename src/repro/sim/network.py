"""Simulated network: message delivery with latency, loss and accounting.

Endpoints register under a string address. ``send`` estimates the wire size
of the payload (JSON-oriented, matching the paper's JSON REST API and Serf's
UDP messages), accounts it against both endpoints' bandwidth meters, and
schedules delivery after the topology-derived one-way latency plus jitter.

Delivery scheduling is batched by default: instead of one event-queue entry
per in-flight message, every pending delivery lives in one shared heap
ordered by its ``(time, seq)`` key, and exactly **one** recycled sentinel
event sits in the main queue, aimed at the head message's exact key (the
same sentinel-recycling discipline as the scheduler's timer wheel). When the
sentinel fires, the flush delivers every consecutive message whose key beats
the main queue's head — advancing the clock and event count itself — so a
burst of gossip and acks lands in one tight loop with one queue entry
instead of dozens. An earlier revision bucketed messages into
per-``(src-region, dst-region, jitter-bucket)`` delivery classes; measured
at full-protocol density that fragmented consecutive deliveries across ~128
sentinels (≈1.04 deliveries per flush — all sentinel churn, no batching),
where the shared heap sustains ~5 per flush. Delivery keys are allocated at
*send* time from the queue's shared sequence counter and every RNG draw
(degradation, loss, jitter) stays in the send path, so event order, RNG
streams and all metrics are byte-identical to the unbatched reference path
(``delivery_batching=False``), which is retained for the seeded A/B
equivalence tests and the ``net_delivery`` benchmark.

Failure injection: per-pair blocks and region partitions let tests exercise
the store's quorum behaviour and SWIM's suspicion mechanism. Blocks and
partitions are re-checked at delivery time, so a fault injected while a
message is in flight still stops it (counted under
``messages_dropped.blocked_in_flight`` / ``.partitioned_in_flight``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, FrozenSet, List, Optional, Protocol, Set, Tuple

from repro.errors import NetworkError
from repro.sim.events import Event
from repro.sim.loop import Simulator
from repro.sim.metrics import BandwidthMeter, MetricsRegistry
from repro.sim.topology import Topology

#: Fixed per-message framing overhead (UDP/IP or minimal HTTP), bytes.
MESSAGE_OVERHEAD_BYTES = 60


class SizedPayload:
    """A payload bundled with its precomputed wire-size estimate.

    Fanout paths (gossip rebroadcast, piggyback batches, broker fanout) send
    one payload to many recipients; wrapping it once means the recursive
    :func:`approx_size` walk runs once per unique message instead of once per
    recipient. :meth:`Network.send` unwraps the wrapper before delivery, so
    message handlers always see the raw payload.
    """

    __slots__ = ("payload", "size")

    def __init__(self, payload: object, size: Optional[int] = None) -> None:
        self.payload = payload
        self.size = approx_size(payload) if size is None else size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SizedPayload {self.size}B {self.payload!r}>"


def approx_size(payload: object) -> int:
    """Approximate the JSON-encoded size of ``payload`` in bytes.

    This intentionally avoids actually serialising every message (the
    simulator sends millions); the estimate matches ``len(json.dumps(...))``
    within a few percent for the dict/list/str/number payloads used here.

    The walk is iterative (an explicit stack) rather than recursive: deeply
    nested payloads cost no Python frames, and the flat loop is measurably
    faster on the wide-but-shallow dicts that dominate SWIM/RPC traffic.
    Container framing (braces plus per-item separators) is added when the
    container is visited; the stack then carries only leaf/child values.
    """
    total = 0
    stack = [payload]
    pop = stack.pop
    extend = stack.extend
    while stack:
        value = pop()
        if value is None:
            total += 4
        elif value is True or value is False:
            total += 5
        elif isinstance(value, (int, float)):
            total += 8
        elif isinstance(value, str):
            total += len(value) + 2
        elif isinstance(value, SizedPayload):
            total += value.size
        elif isinstance(value, bytes):
            total += len(value)
        elif isinstance(value, (list, tuple, set, frozenset)):
            total += 2 + len(value)
            extend(value)
        elif isinstance(value, dict):
            total += 2 + 2 * len(value)
            extend(value.keys())
            extend(value.values())
        else:
            # Fallback for unexpected objects: size of their repr.
            total += len(repr(value))
    return total


class Message:
    """A message in flight. ``payload`` should be JSON-able."""

    __slots__ = ("kind", "payload", "src", "dst", "size", "sent_at")

    def __init__(
        self,
        kind: str,
        payload: object,
        src: str,
        dst: str,
        size: int,
        sent_at: float,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.src = src
        self.dst = dst
        self.size = size
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Message {self.kind} {self.src}->{self.dst} {self.size}B>"


class Endpoint(Protocol):
    """Anything that can be attached to the network."""

    address: str
    region: str

    def handle_message(self, message: Message) -> None:
        """Called on delivery of each message addressed to this endpoint."""


#: ``target`` value marking a batch whose sentinel just fired and is being
#: drained; compares below every real ``(time, seq)`` key so sends landing
#: in the batch mid-flush never try to schedule a second sentinel.
_DRAINING = (-1.0, -1)


class _DeliveryBatch:
    """The network's in-flight messages, sharing one queue sentinel.

    ``heap`` orders pending deliveries by their ``(time, seq)`` key, which is
    allocated at send time; ``event`` is the single recycled sentinel entry
    the batch keeps in the main event queue, aimed at the head's exact key
    while ``scheduled`` is true. Messages are never cancelled, so unlike the
    timer wheel the heap holds no tombstones. Sentinel retargets from the
    send path are rare: the head delivery is almost always nearer than the
    shortest link latency a new send could add.
    """

    __slots__ = ("heap", "event", "target", "scheduled")

    def __init__(self) -> None:
        self.heap: List[Tuple[float, int, Message]] = []
        self.event: Optional[Event] = None
        self.target: Optional[Tuple[float, int]] = None
        self.scheduled = False


class Network:
    """Latency- and bandwidth-accounted message fabric.

    Parameters
    ----------
    sim:
        The simulator whose clock drives deliveries.
    topology:
        Region latency model.
    loss_rate:
        Probability that any message is silently dropped (failure injection);
        must lie in ``[0, 1]``.
    jitter_fraction:
        Per-message latency jitter: delivery latency is the topology-derived
        base times ``1 + uniform(0, jitter_fraction)``. Must be ``>= 0`` — a
        negative fraction could otherwise schedule delivery in the simulated
        past.
    delivery_batching:
        When ``True`` (default) in-flight messages are bucketed into
        per-link-latency-class delivery batches with one coalesced sentinel
        timer per class (see the module docstring); ``False`` posts one event
        per message, the original reference behaviour. Both produce
        bit-identical runs.
    record_bandwidth_events:
        When ``True`` (default) meters keep per-message timestamped events so
        windows can be measured; disable for very large runs to save memory.
    bandwidth_horizon:
        When set, each meter discards recorded events older than this many
        seconds behind its newest event; window queries that start inside the
        horizon are unaffected (see :class:`BandwidthMeter`). Bounds memory
        on long runs that only ever measure recent windows.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        *,
        loss_rate: float = 0.0,
        jitter_fraction: float = 0.1,
        delivery_batching: bool = True,
        record_bandwidth_events: bool = True,
        bandwidth_horizon: Optional[float] = None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise NetworkError(f"loss rate must be in [0, 1], got {loss_rate}")
        if jitter_fraction < 0.0:
            raise NetworkError(
                f"jitter fraction must be >= 0, got {jitter_fraction}"
            )
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.loss_rate = loss_rate
        self.jitter_fraction = jitter_fraction
        self.record_bandwidth_events = record_bandwidth_events
        self.bandwidth_horizon = bandwidth_horizon
        self.metrics = MetricsRegistry()
        self._endpoints: Dict[str, Endpoint] = {}
        #: Last known region per address; kept after unregister so messages
        #: racing a death still pay the dead node's real latency.
        self._last_region: Dict[str, str] = {}
        self._meters: Dict[str, BandwidthMeter] = {}
        self._blocked: Set[FrozenSet[str]] = set()
        self._blocked_regions: Set[FrozenSet[str]] = set()
        #: One-directional blocks: ``(src, dst)`` pairs (asymmetric failures).
        self._blocked_directed: Set[Tuple[str, str]] = set()
        #: Per-link degradation overrides: pair -> (latency multiplier, loss).
        self._degraded: Dict[FrozenSet[str], Tuple[float, float]] = {}
        self._rng = sim.derive_rng("network")
        # Degraded-link loss draws come from their own stream so layering a
        # degradation onto one link never shifts the base ``_rng`` sequence
        # (loss + jitter draws) seen by the rest of the run.
        self._degrade_rng = sim.derive_rng("network/degrade")
        self._delivery_taps: list[Callable[[Message], None]] = []
        #: Wire-size table: message kind -> fixed size or callable(payload).
        self._wire_sizes: Dict[str, object] = {}
        # The per-message counters are resolved once here instead of through
        # a registry dict lookup per send/delivery (the two hottest counter
        # paths in the kernel); ``messages_dropped.<reason>`` counters are
        # cached on first use since the reason set is tiny.
        self._messages_sent = self.metrics.counter("messages_sent")
        self._bytes_sent = self.metrics.counter("bytes_sent")
        self._messages_delivered = self.metrics.counter("messages_delivered")
        # Drop counters stay lazily created: a loss-free run's registry should
        # not grow a zero-valued "messages_dropped" it never had before.
        self._messages_dropped = None
        self._drop_reason_counters: Dict[str, object] = {}
        # Delivery batching state. Sequence numbers come from the simulator
        # queue's shared counter — allocated at the same moments ``sim.post``
        # would allocate them, so batched and unbatched runs interleave
        # deliveries with timers identically.
        self.delivery_batching = delivery_batching
        self._in_flight = _DeliveryBatch()
        self._queue = sim._queue
        self._alloc_seq = sim._queue._seq.__next__

    # ------------------------------------------------------------ membership
    def register(self, endpoint: Endpoint) -> None:
        if endpoint.address in self._endpoints:
            raise NetworkError(f"address {endpoint.address!r} already registered")
        if endpoint.region not in {r.name for r in self.topology.regions}:
            raise NetworkError(
                f"endpoint {endpoint.address!r} placed in unknown region "
                f"{endpoint.region!r}"
            )
        self._endpoints[endpoint.address] = endpoint
        self._last_region[endpoint.address] = endpoint.region

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"unknown endpoint {address!r}") from None

    def meter(self, address: str) -> BandwidthMeter:
        meter = self._meters.get(address)
        if meter is None:
            meter = BandwidthMeter(
                address,
                record_events=self.record_bandwidth_events,
                horizon=self.bandwidth_horizon,
            )
            self._meters[address] = meter
        return meter

    # ------------------------------------------------------------- wire sizes
    def register_message_size(self, kind: str, size) -> None:
        """Register a precomputed wire size for a message ``kind``.

        ``size`` is either an ``int`` (fixed-shape messages) or a callable
        ``payload -> int``. It is consulted by :meth:`send` when the caller
        passes no explicit size, replacing the generic :func:`approx_size`
        walk for known message shapes. Re-registering a kind overwrites the
        previous entry; the size must match what ``approx_size`` would have
        returned if deterministic byte accounting across runs matters.
        """
        self._wire_sizes[kind] = size

    # ------------------------------------------------------- failure control
    def block(self, address_a: str, address_b: str) -> None:
        """Drop all traffic between two addresses (both directions)."""
        self._blocked.add(frozenset((address_a, address_b)))

    def unblock(self, address_a: str, address_b: str) -> None:
        self._blocked.discard(frozenset((address_a, address_b)))

    def block_directed(self, src: str, dst: str) -> None:
        """Drop traffic from ``src`` to ``dst`` only (asymmetric failure).

        The reverse direction keeps flowing, which is how NAT/firewall
        misconfigurations and one-way routing failures present: ``dst`` can
        still ping ``src``, but never hears an ack back.
        """
        self._blocked_directed.add((src, dst))

    def unblock_directed(self, src: str, dst: str) -> None:
        self._blocked_directed.discard((src, dst))

    def partition_regions(self, region_a: str, region_b: str) -> None:
        """Drop all traffic between two regions (both directions)."""
        self._blocked_regions.add(frozenset((region_a, region_b)))

    def heal_regions(self, region_a: str, region_b: str) -> None:
        self._blocked_regions.discard(frozenset((region_a, region_b)))

    def degrade_link(
        self,
        address_a: str,
        address_b: str,
        *,
        latency_multiplier: float = 1.0,
        loss_rate: float = 0.0,
    ) -> None:
        """Degrade one link (both directions): slower and/or lossier.

        ``latency_multiplier`` scales the topology-derived one-way latency;
        ``loss_rate`` is an *additional* drop probability applied on top of
        the network-wide one. Loss draws come from a dedicated RNG stream so
        degrading a link never perturbs the seeded event order of undegraded
        traffic. Re-degrading a pair overwrites the previous override.
        """
        if latency_multiplier <= 0:
            raise NetworkError(
                f"latency multiplier must be positive, got {latency_multiplier}"
            )
        if not 0.0 <= loss_rate <= 1.0:
            raise NetworkError(f"loss rate must be in [0, 1], got {loss_rate}")
        self._degraded[frozenset((address_a, address_b))] = (
            latency_multiplier,
            loss_rate,
        )

    def clear_link_degradation(self, address_a: str, address_b: str) -> None:
        self._degraded.pop(frozenset((address_a, address_b)), None)

    def link_degradation(
        self, address_a: str, address_b: str
    ) -> Optional[Tuple[float, float]]:
        """Current ``(latency_multiplier, loss_rate)`` override, if any."""
        return self._degraded.get(frozenset((address_a, address_b)))

    def heal_all(self) -> None:
        """Clear every injected failure: pair and directed blocks, region
        partitions, and per-link degradation overrides."""
        self._blocked.clear()
        self._blocked_regions.clear()
        self._blocked_directed.clear()
        self._degraded.clear()

    def add_delivery_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback invoked on every successful delivery."""
        self._delivery_taps.append(tap)

    # ---------------------------------------------------------------- sending
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        *,
        size: Optional[int] = None,
    ) -> None:
        """Send a message; delivery is scheduled, never synchronous.

        Unknown destinations and blocked/partitioned pairs silently drop the
        message (that is what the real network does); every loss is counted
        exactly once in ``metrics.counter("messages_dropped")``, with a
        per-reason counter under ``messages_dropped.<reason>``.

        ``payload`` may be a :class:`SizedPayload`, in which case its
        memoized size is used and the wrapped payload is what gets delivered.
        """
        sender = self._endpoints.get(src)
        if sender is None:
            raise NetworkError(f"send from unregistered endpoint {src!r}")
        if isinstance(payload, SizedPayload):
            if size is None:
                size = payload.size
            payload = payload.payload
        if size is None:
            entry = self._wire_sizes.get(kind)
            if entry is None:
                size = approx_size(payload)
            elif callable(entry):
                size = entry(payload)
            else:
                size = entry
        wire_size = size + MESSAGE_OVERHEAD_BYTES
        now = self.sim.now
        self.meter(src).on_send(now, wire_size)
        self._messages_sent.inc()
        self._bytes_sent.inc(wire_size)

        message = Message(kind, payload, src, dst, wire_size, now)
        # The destination's region is resolved once and shared by the drop
        # checks, the latency model and the delivery-class key. A recently
        # dead endpoint routes toward where it actually lived.
        receiver = self._endpoints.get(dst)
        if receiver is not None:
            dst_region = receiver.region
        else:
            dst_region = self._last_region.get(dst)
        drop_reason = self._drop_reason(message, sender, dst_region)
        if drop_reason is not None:
            self._count_drop(drop_reason)
            return
        src_region = sender.region
        base = self.topology.latency(src_region, dst_region)
        if self._degraded:
            entry = self._degraded.get(frozenset((src, dst)))
            if entry is not None:
                base *= entry[0]
        jitter_fraction = self.jitter_fraction
        if jitter_fraction > 0.0:
            latency = base * (1.0 + self._rng.random() * jitter_fraction)
        else:
            latency = base
        if latency < 0.0:
            # Degenerate topologies (negative configured latency) must never
            # schedule a delivery in the simulated past.
            latency = 0.0
        if not self.delivery_batching:
            # Reference path: fire-and-forget, one queue entry per message
            # (deliveries are never cancelled, so no TimerHandle either).
            self.sim.post(latency, self._deliver, message)
            return
        # Batched path: allocate the delivery key now (send order == seq
        # order, exactly as sim.post would) and park the message in the
        # in-flight heap; only the batch sentinel lives in the main queue.
        delivery_time = now + latency
        seq = self._alloc_seq()
        batch = self._in_flight
        heappush(batch.heap, (delivery_time, seq, message))
        if not batch.scheduled or (delivery_time, seq) < batch.target:
            self._retarget_deliveries(batch)

    def _drop_reason(
        self, message: Message, sender: Endpoint, dst_region: Optional[str]
    ) -> Optional[str]:
        """Send-time drop decision; RNG draws happen here and only here.

        Every container check is guarded by a truthiness test so the
        fault-free hot path never builds a frozenset per message, and the
        region-partition check routes through the resolved ``dst_region``
        (which falls back to the last known region), so traffic toward a
        recently dead endpoint across a partition counts as ``partitioned``
        rather than surviving until the ``dead_endpoint`` check.
        """
        if self._blocked and frozenset((message.src, message.dst)) in self._blocked:
            return "blocked"
        if self._blocked_directed and (message.src, message.dst) in self._blocked_directed:
            return "blocked_directed"
        if dst_region is None:
            # Never-registered destination: there is no region to route
            # toward, so drop at send time instead of inventing a latency.
            return "unknown_destination"
        if (
            self._blocked_regions
            and frozenset((sender.region, dst_region)) in self._blocked_regions
        ):
            return "partitioned"
        if self._degraded:
            entry = self._degraded.get(frozenset((message.src, message.dst)))
            if (
                entry is not None
                and entry[1] > 0.0
                and self._degrade_rng.random() < entry[1]
            ):
                return "degraded"
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return "loss"
        return None

    # ------------------------------------------------------ batched delivery
    def _retarget_deliveries(self, batch: _DeliveryBatch) -> None:
        """Aim the batch sentinel at the head message's exact ``(time, seq)``.

        Mirrors the timer wheel's sentinel recycling: a sentinel that is
        already queued at a now-stale key is tombstoned (the old object stays
        behind in the queue) and a fresh event takes its place; a sentinel
        that just fired is reused in place, costing no allocation.
        """
        heap = batch.heap
        queue = self._queue
        if not heap:
            if batch.scheduled:
                batch.event.cancelled = True
                queue.note_cancelled()
                batch.event = None
                batch.scheduled = False
            batch.target = None
            return
        time, seq = heap[0][0], heap[0][1]
        key = (time, seq)
        if batch.scheduled:
            if batch.target == key:
                return
            batch.event.cancelled = True
            queue.note_cancelled()
            batch.event = None
        event = batch.event
        if event is None:
            event = Event(time, seq, self._fire_deliveries, (batch,))
            batch.event = event
        else:
            event.time = time
            event.seq = seq
        queue.push_entry(event)
        batch.scheduled = True
        batch.target = key

    def _fire_deliveries(self, batch: _DeliveryBatch) -> None:
        """Sentinel callback: flush every consecutively-due delivery.

        The sentinel fired at the head message's exact key, so the first
        delivery is "paid for" by the event the loop just popped. After each
        delivery the batch keeps draining as long as its next message's key
        still beats the main queue's head and stays within the caller's
        ``run_until`` bound — each extra delivery advances the clock and the
        event count itself, exactly as if it had been queued individually.
        The queue head is peeked once and then only re-peeked after an
        iteration that actually pushed an event (tracked by the queue's
        ``pushes`` counter): handler-scheduled events always carry a fresh
        sequence number, so a stale cached key can only ever end the drain
        early (the sentinel re-aims and the flush resumes), never late.

        The delivery body inlines :meth:`_deliver` (the reference path) —
        the two must stay in lockstep; the seeded A/B equivalence tests in
        ``tests/test_sim_network_batching.py`` enforce it. The only
        intentional difference: the delivered-messages counter is batched
        per flush instead of incremented per message (nothing in the stack
        reads it mid-flush).
        """
        sim = self.sim
        heap = batch.heap
        queue = self._queue
        endpoints_get = self._endpoints.get
        meter = self.meter
        taps = self._delivery_taps
        # Mark the batch as draining so a handler sending into it mid-flush
        # never schedules a second sentinel (_DRAINING beats every real key).
        batch.scheduled = True
        batch.target = _DRAINING
        next_key = queue.peek_key()
        pushes = queue.pushes
        delivered = 0
        first = True
        while True:
            time, _seq, message = heappop(heap)
            if first:
                first = False
            else:
                sim._now = time
                sim._events_processed += 1
            receiver = endpoints_get(message.dst)
            if receiver is None:
                # Endpoint died while the message was in flight.
                self._count_drop("dead_endpoint")
            elif (
                (self._blocked or self._blocked_directed or self._blocked_regions)
                and (reason := self._in_flight_drop_reason(message, receiver))
                is not None
            ):
                self._count_drop(reason)
            else:
                meter(message.dst).on_receive(time, message.size)
                delivered += 1
                if taps:
                    for tap in taps:
                        tap(message)
                receiver.handle_message(message)
            if not heap:
                break
            head = heap[0]
            if head[0] > sim._run_bound:
                break
            if queue.pushes != pushes:
                next_key = queue.peek_key()
                pushes = queue.pushes
            if next_key is not None and next_key < (head[0], head[1]):
                break
        if delivered:
            self._messages_delivered.value += delivered
        batch.scheduled = False
        batch.target = None
        self._retarget_deliveries(batch)

    def _count_drop(self, reason: str) -> None:
        dropped = self._messages_dropped
        if dropped is None:
            dropped = self.metrics.counter("messages_dropped")
            self._messages_dropped = dropped
        dropped.inc()
        counter = self._drop_reason_counters.get(reason)
        if counter is None:
            counter = self.metrics.counter(f"messages_dropped.{reason}")
            self._drop_reason_counters[reason] = counter
        counter.inc()

    def _in_flight_drop_reason(
        self, message: Message, receiver: Endpoint
    ) -> Optional[str]:
        """Delivery-time fault re-check: blocks/partitions injected while the
        message was in flight still stop it.

        Only consulted when at least one block or partition exists (callers
        guard on set truthiness), so fault-free runs pay nothing and keep
        their determinism checksum. The sender's region comes from
        ``_last_region`` — the sender may itself have died mid-flight.
        """
        src = message.src
        dst = message.dst
        if self._blocked and frozenset((src, dst)) in self._blocked:
            return "blocked_in_flight"
        if self._blocked_directed and (src, dst) in self._blocked_directed:
            return "blocked_in_flight"
        if self._blocked_regions:
            src_region = self._last_region.get(src)
            if (
                src_region is not None
                and frozenset((src_region, receiver.region)) in self._blocked_regions
            ):
                return "partitioned_in_flight"
        return None

    def _deliver(self, message: Message) -> None:
        """Deliver one message now (reference path; the batched flush in
        :meth:`_fire_deliveries` inlines this body — keep them in lockstep)."""
        receiver = self._endpoints.get(message.dst)
        if receiver is None:
            # Endpoint died while the message was in flight.
            self._count_drop("dead_endpoint")
            return
        if self._blocked or self._blocked_directed or self._blocked_regions:
            reason = self._in_flight_drop_reason(message, receiver)
            if reason is not None:
                self._count_drop(reason)
                return
        self.meter(message.dst).on_receive(self.sim.now, message.size)
        self._messages_delivered.inc()
        for tap in self._delivery_taps:
            tap(message)
        receiver.handle_message(message)
