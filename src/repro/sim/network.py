"""Simulated network: message delivery with latency, loss and accounting.

Endpoints register under a string address. ``send`` estimates the wire size
of the payload (JSON-oriented, matching the paper's JSON REST API and Serf's
UDP messages), accounts it against both endpoints' bandwidth meters, and
schedules delivery after the topology-derived one-way latency plus jitter.

Failure injection: per-pair blocks and region partitions let tests exercise
the store's quorum behaviour and SWIM's suspicion mechanism.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Protocol, Set, Tuple

from repro.errors import NetworkError
from repro.sim.loop import Simulator
from repro.sim.metrics import BandwidthMeter, MetricsRegistry
from repro.sim.topology import Topology

#: Fixed per-message framing overhead (UDP/IP or minimal HTTP), bytes.
MESSAGE_OVERHEAD_BYTES = 60


class SizedPayload:
    """A payload bundled with its precomputed wire-size estimate.

    Fanout paths (gossip rebroadcast, piggyback batches, broker fanout) send
    one payload to many recipients; wrapping it once means the recursive
    :func:`approx_size` walk runs once per unique message instead of once per
    recipient. :meth:`Network.send` unwraps the wrapper before delivery, so
    message handlers always see the raw payload.
    """

    __slots__ = ("payload", "size")

    def __init__(self, payload: object, size: Optional[int] = None) -> None:
        self.payload = payload
        self.size = approx_size(payload) if size is None else size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SizedPayload {self.size}B {self.payload!r}>"


def approx_size(payload: object) -> int:
    """Approximate the JSON-encoded size of ``payload`` in bytes.

    This intentionally avoids actually serialising every message (the
    simulator sends millions); the estimate matches ``len(json.dumps(...))``
    within a few percent for the dict/list/str/number payloads used here.
    """
    if isinstance(payload, SizedPayload):
        return payload.size
    if payload is None:
        return 4
    if payload is True or payload is False:
        return 5
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload) + 2
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 2 + sum(approx_size(item) + 1 for item in payload)
    if isinstance(payload, dict):
        return 2 + sum(
            approx_size(key) + approx_size(value) + 2 for key, value in payload.items()
        )
    # Fallback for unexpected objects: size of their repr.
    return len(repr(payload))


class Message:
    """A message in flight. ``payload`` should be JSON-able."""

    __slots__ = ("kind", "payload", "src", "dst", "size", "sent_at")

    def __init__(
        self,
        kind: str,
        payload: object,
        src: str,
        dst: str,
        size: int,
        sent_at: float,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.src = src
        self.dst = dst
        self.size = size
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Message {self.kind} {self.src}->{self.dst} {self.size}B>"


class Endpoint(Protocol):
    """Anything that can be attached to the network."""

    address: str
    region: str

    def handle_message(self, message: Message) -> None:
        """Called on delivery of each message addressed to this endpoint."""


class Network:
    """Latency- and bandwidth-accounted message fabric.

    Parameters
    ----------
    sim:
        The simulator whose clock drives deliveries.
    topology:
        Region latency model.
    loss_rate:
        Probability that any message is silently dropped (failure injection).
    record_bandwidth_events:
        When ``True`` (default) meters keep per-message timestamped events so
        windows can be measured; disable for very large runs to save memory.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        *,
        loss_rate: float = 0.0,
        jitter_fraction: float = 0.1,
        record_bandwidth_events: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.loss_rate = loss_rate
        self.jitter_fraction = jitter_fraction
        self.record_bandwidth_events = record_bandwidth_events
        self.metrics = MetricsRegistry()
        self._endpoints: Dict[str, Endpoint] = {}
        #: Last known region per address; kept after unregister so messages
        #: racing a death still pay the dead node's real latency.
        self._last_region: Dict[str, str] = {}
        self._meters: Dict[str, BandwidthMeter] = {}
        self._blocked: Set[FrozenSet[str]] = set()
        self._blocked_regions: Set[FrozenSet[str]] = set()
        self._rng = sim.derive_rng("network")
        self._delivery_taps: list[Callable[[Message], None]] = []

    # ------------------------------------------------------------ membership
    def register(self, endpoint: Endpoint) -> None:
        if endpoint.address in self._endpoints:
            raise NetworkError(f"address {endpoint.address!r} already registered")
        if endpoint.region not in {r.name for r in self.topology.regions}:
            raise NetworkError(
                f"endpoint {endpoint.address!r} placed in unknown region "
                f"{endpoint.region!r}"
            )
        self._endpoints[endpoint.address] = endpoint
        self._last_region[endpoint.address] = endpoint.region

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"unknown endpoint {address!r}") from None

    def meter(self, address: str) -> BandwidthMeter:
        if address not in self._meters:
            self._meters[address] = BandwidthMeter(
                address, record_events=self.record_bandwidth_events
            )
        return self._meters[address]

    # ------------------------------------------------------- failure control
    def block(self, address_a: str, address_b: str) -> None:
        """Drop all traffic between two addresses (both directions)."""
        self._blocked.add(frozenset((address_a, address_b)))

    def unblock(self, address_a: str, address_b: str) -> None:
        self._blocked.discard(frozenset((address_a, address_b)))

    def partition_regions(self, region_a: str, region_b: str) -> None:
        """Drop all traffic between two regions (both directions)."""
        self._blocked_regions.add(frozenset((region_a, region_b)))

    def heal_regions(self, region_a: str, region_b: str) -> None:
        self._blocked_regions.discard(frozenset((region_a, region_b)))

    def heal_all(self) -> None:
        self._blocked.clear()
        self._blocked_regions.clear()

    def add_delivery_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback invoked on every successful delivery."""
        self._delivery_taps.append(tap)

    # ---------------------------------------------------------------- sending
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        *,
        size: Optional[int] = None,
    ) -> None:
        """Send a message; delivery is scheduled, never synchronous.

        Unknown destinations and blocked/partitioned pairs silently drop the
        message (that is what the real network does); every loss is counted
        exactly once in ``metrics.counter("messages_dropped")``, with a
        per-reason counter under ``messages_dropped.<reason>``.

        ``payload`` may be a :class:`SizedPayload`, in which case its
        memoized size is used and the wrapped payload is what gets delivered.
        """
        sender = self._endpoints.get(src)
        if sender is None:
            raise NetworkError(f"send from unregistered endpoint {src!r}")
        if isinstance(payload, SizedPayload):
            if size is None:
                size = payload.size
            payload = payload.payload
        wire_size = (size if size is not None else approx_size(payload)) + MESSAGE_OVERHEAD_BYTES
        now = self.sim.now
        self.meter(src).on_send(now, wire_size)
        self.metrics.counter("messages_sent").inc()
        self.metrics.counter("bytes_sent").inc(wire_size)

        message = Message(kind, payload, src, dst, wire_size, now)
        drop_reason = self._drop_reason(message, sender)
        if drop_reason is not None:
            self._count_drop(drop_reason)
            return
        latency = self._latency(sender, dst)
        self.sim.schedule(latency, self._deliver, message)

    def _drop_reason(self, message: Message, sender: Endpoint) -> Optional[str]:
        if frozenset((message.src, message.dst)) in self._blocked:
            return "blocked"
        receiver = self._endpoints.get(message.dst)
        if receiver is not None:
            pair = frozenset((sender.region, receiver.region))
            if pair in self._blocked_regions:
                return "partitioned"
        elif message.dst not in self._last_region:
            # Never-registered destination: there is no region to route
            # toward, so drop at send time instead of inventing a latency.
            return "unknown_destination"
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return "loss"
        return None

    def _count_drop(self, reason: str) -> None:
        self.metrics.counter("messages_dropped").inc()
        self.metrics.counter(f"messages_dropped.{reason}").inc()

    def _latency(self, sender: Endpoint, dst: str) -> float:
        receiver = self._endpoints.get(dst)
        if receiver is not None:
            dst_region = receiver.region
        else:
            # Recently-dead endpoint: route toward where it actually lived,
            # not toward the sender's own region.
            dst_region = self._last_region.get(dst, sender.region)
        base = self.topology.latency(sender.region, dst_region)
        if self.jitter_fraction > 0:
            return base * (1.0 + self._rng.random() * self.jitter_fraction)
        return base

    def _deliver(self, message: Message) -> None:
        receiver = self._endpoints.get(message.dst)
        if receiver is None:
            # Endpoint died while the message was in flight.
            self._count_drop("dead_endpoint")
            return
        self.meter(message.dst).on_receive(self.sim.now, message.size)
        self.metrics.counter("messages_delivered").inc()
        for tap in self._delivery_taps:
            tap(message)
        receiver.handle_message(message)
