"""Simulated network: message delivery with latency, loss and accounting.

Endpoints register under a string address. ``send`` estimates the wire size
of the payload (JSON-oriented, matching the paper's JSON REST API and Serf's
UDP messages), accounts it against both endpoints' bandwidth meters, and
schedules delivery after the topology-derived one-way latency plus jitter.

Delivery scheduling is batched by default: instead of one event-queue entry
per in-flight message, every pending delivery lives in one shared heap
ordered by its ``(time, seq)`` key, and exactly **one** recycled sentinel
event sits in the main queue, aimed at the head message's exact key (the
same sentinel-recycling discipline as the scheduler's timer wheel). When the
sentinel fires, the flush delivers every consecutive message whose key beats
the main queue's head — advancing the clock and event count itself — so a
burst of gossip and acks lands in one tight loop with one queue entry
instead of dozens. An earlier revision bucketed messages into
per-``(src-region, dst-region, jitter-bucket)`` delivery classes; measured
at full-protocol density that fragmented consecutive deliveries across ~128
sentinels (≈1.04 deliveries per flush — all sentinel churn, no batching),
where the shared heap sustains ~5 per flush. Delivery keys are allocated at
*send* time from the queue's shared sequence counter and every RNG draw
(degradation, loss, jitter) stays in the send path, so event order, RNG
streams and all metrics are byte-identical to the unbatched reference path
(``delivery_batching=False``), which is retained for the seeded A/B
equivalence tests and the ``net_delivery`` benchmark.

Failure injection: per-pair blocks and region partitions let tests exercise
the store's quorum behaviour and SWIM's suspicion mechanism. Blocks and
partitions are re-checked at delivery time, so a fault injected while a
message is in flight still stops it (counted under
``messages_dropped.blocked_in_flight`` / ``.partitioned_in_flight``).

Determinism profiles: under the simulator's default ``v1`` profile every
loss/jitter draw comes one-at-a-time from ``random.Random`` and every
in-flight message is a :class:`Message` object — byte-identical to the
original reference implementation. Under ``v2`` (see ``sim/loop.py``) the
same draws are taken in blocks of :data:`UNIFORM_BLOCK` from a numpy
``Generator`` and consumed in send order, and in-flight records live in a
:class:`MessageArena` (parallel lists plus a free list, heap entries carry
integer slots, one flyweight ``Message`` is refilled per delivery). Event
*order* is identical between profiles — only the RNG byte stream differs —
which is what the v1-vs-v2 statistical-equivalence suite checks.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, FrozenSet, List, Optional, Protocol, Sequence, Set, Tuple

from repro.errors import NetworkError
from repro.sim.events import Event
from repro.sim.loop import Simulator
from repro.sim.metrics import BandwidthMeter, MetricsRegistry
from repro.sim.topology import Topology

#: Fixed per-message framing overhead (UDP/IP or minimal HTTP), bytes.
MESSAGE_OVERHEAD_BYTES = 60

#: Uniform draws taken per numpy batch under the ``v2`` profile. Big enough
#: that the per-block ``Generator.random`` + ``tolist`` overhead amortises to
#: ~30 ns/draw; small enough that short runs don't waste draws.
UNIFORM_BLOCK = 1024

#: Below this many in-flight batched messages, ``send`` posts a per-message
#: delivery event directly instead of parking the message in the shared
#: heap. At low density the sentinel is retargeted on nearly every send
#: (tombstone + re-push), which is strictly more queue work than one plain
#: post — the measured source of the 0.95x ``net_delivery`` quick-bench
#: point at 400 nodes (see benchmarks/README.md). Both paths allocate the
#: delivery ``(time, seq)`` key from the same shared counter, so any mix of
#: them drains in exactly the same order and the run stays byte-identical.
DIRECT_POST_MAX = 8


class SizedPayload:
    """A payload bundled with its precomputed wire-size estimate.

    Fanout paths (gossip rebroadcast, piggyback batches, broker fanout) send
    one payload to many recipients; wrapping it once means the recursive
    :func:`approx_size` walk runs once per unique message instead of once per
    recipient. :meth:`Network.send` unwraps the wrapper before delivery, so
    message handlers always see the raw payload.
    """

    __slots__ = ("payload", "size")

    def __init__(self, payload: object, size: Optional[int] = None) -> None:
        self.payload = payload
        self.size = approx_size(payload) if size is None else size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SizedPayload {self.size}B {self.payload!r}>"


def approx_size(payload: object) -> int:
    """Approximate the JSON-encoded size of ``payload`` in bytes.

    This intentionally avoids actually serialising every message (the
    simulator sends millions); the estimate matches ``len(json.dumps(...))``
    within a few percent for the dict/list/str/number payloads used here.

    The walk is iterative (an explicit stack) rather than recursive: deeply
    nested payloads cost no Python frames, and the flat loop is measurably
    faster on the wide-but-shallow dicts that dominate SWIM/RPC traffic.
    Container framing (braces plus per-item separators) is added when the
    container is visited; the stack then carries only leaf/child values.
    """
    total = 0
    stack = [payload]
    pop = stack.pop
    extend = stack.extend
    while stack:
        value = pop()
        if value is None:
            total += 4
        elif value is True or value is False:
            total += 5
        elif isinstance(value, (int, float)):
            total += 8
        elif isinstance(value, str):
            total += len(value) + 2
        elif isinstance(value, SizedPayload):
            total += value.size
        elif isinstance(value, bytes):
            total += len(value)
        elif isinstance(value, (list, tuple, set, frozenset)):
            total += 2 + len(value)
            extend(value)
        elif isinstance(value, dict):
            total += 2 + 2 * len(value)
            extend(value.keys())
            extend(value.values())
        else:
            # Fallback for unexpected objects: size of their repr.
            total += len(repr(value))
    return total


class Message:
    """A message in flight. ``payload`` should be JSON-able."""

    __slots__ = ("kind", "payload", "src", "dst", "size", "sent_at")

    def __init__(
        self,
        kind: str,
        payload: object,
        src: str,
        dst: str,
        size: int,
        sent_at: float,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.src = src
        self.dst = dst
        self.size = size
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Message {self.kind} {self.src}->{self.dst} {self.size}B>"


class MessageArena:
    """Slot storage for in-flight messages: parallel lists plus a free list.

    Each in-flight message occupies one integer slot across six parallel
    lists instead of one six-field Python object, so a run with hundreds of
    thousands of sends creates no per-message objects for the GC to trace —
    the lists are long-lived and (after :meth:`~repro.sim.loop.Simulator.
    freeze_hot_state`) frozen. Slots are recycled LIFO through ``_free``;
    both allocation and release happen in event order, so slot assignment is
    deterministic. Capacity doubles on exhaustion and never shrinks.

    :meth:`load` refills a caller-owned flyweight :class:`Message` from a
    slot; the flyweight is only valid until the next ``load``. Delivery
    handlers and taps read the message synchronously, so they never notice —
    but a handler that *retains* the message object (rather than its fields)
    must run under the v1 profile, which keeps one object per message.
    """

    __slots__ = ("kind", "payload", "src", "dst", "size", "sent_at",
                 "_free", "capacity")

    def __init__(self, capacity: int = 4096) -> None:
        self.kind: List[Optional[str]] = [None] * capacity
        self.payload: List[object] = [None] * capacity
        self.src: List[Optional[str]] = [None] * capacity
        self.dst: List[Optional[str]] = [None] * capacity
        self.size: List[int] = [0] * capacity
        self.sent_at: List[float] = [0.0] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.capacity = capacity

    def __len__(self) -> int:
        """Number of live (allocated) slots."""
        return self.capacity - len(self._free)

    def alloc(self, kind: str, payload: object, src: str, dst: str,
              size: int, sent_at: float) -> int:
        free = self._free
        if not free:
            self._grow()
            free = self._free
        slot = free.pop()
        self.kind[slot] = kind
        self.payload[slot] = payload
        self.src[slot] = src
        self.dst[slot] = dst
        self.size[slot] = size
        self.sent_at[slot] = sent_at
        return slot

    def _grow(self) -> None:
        old = self.capacity
        self.kind.extend([None] * old)
        self.payload.extend([None] * old)
        self.src.extend([None] * old)
        self.dst.extend([None] * old)
        self.size.extend([0] * old)
        self.sent_at.extend([0.0] * old)
        # New slots go on top of the (empty) free list, highest first, so the
        # next allocations take the lowest new slot — the same order a fresh
        # arena of the doubled size would produce.
        self._free.extend(range(2 * old - 1, old - 1, -1))
        self.capacity = 2 * old

    def load(self, slot: int, message: Message) -> Message:
        """Refill the flyweight ``message`` from ``slot`` and return it."""
        message.kind = self.kind[slot]
        message.payload = self.payload[slot]
        message.src = self.src[slot]
        message.dst = self.dst[slot]
        message.size = self.size[slot]
        message.sent_at = self.sent_at[slot]
        return message

    def release(self, slot: int) -> None:
        # Drop the payload/string references so the arena never pins dead
        # payload graphs; scalar fields are overwritten on reuse.
        self.payload[slot] = None
        self.kind[slot] = None
        self.src[slot] = None
        self.dst[slot] = None
        self._free.append(slot)


class _BlockUniform:
    """Per-region batched uniform tap (``v2`` profile + ``region_rng``).

    Same block discipline as :meth:`Network._next_uniform`, but each source
    region owns its own generator and block, so one region's draw count never
    shifts another region's sequence — the property the parallel kernel needs
    to run regions in separate processes.
    """

    __slots__ = ("_np_rng", "_block")

    def __init__(self, np_rng) -> None:
        self._np_rng = np_rng
        self._block: List[float] = []

    def __call__(self) -> float:
        block = self._block
        if not block:
            block[:] = self._np_rng.random(UNIFORM_BLOCK).tolist()
            block.reverse()
        return block.pop()


class Endpoint(Protocol):
    """Anything that can be attached to the network."""

    address: str
    region: str

    def handle_message(self, message: Message) -> None:
        """Called on delivery of each message addressed to this endpoint."""


#: ``target`` value marking a batch whose sentinel just fired and is being
#: drained; compares below every real ``(time, seq)`` key so sends landing
#: in the batch mid-flush never try to schedule a second sentinel.
_DRAINING = (-1.0, -1)


class _DeliveryBatch:
    """The network's in-flight messages, sharing one queue sentinel.

    ``heap`` orders pending deliveries by their ``(time, seq)`` key, which is
    allocated at send time; ``event`` is the single recycled sentinel entry
    the batch keeps in the main event queue, aimed at the head's exact key
    while ``scheduled`` is true. Messages are never cancelled, so unlike the
    timer wheel the heap holds no tombstones. Sentinel retargets from the
    send path are rare: the head delivery is almost always nearer than the
    shortest link latency a new send could add.
    """

    __slots__ = ("heap", "event", "target", "scheduled")

    def __init__(self) -> None:
        #: Entries are ``(time, seq, Message)`` in object mode or
        #: ``(time, seq, slot)`` with an int arena slot under ``v2``.
        self.heap: List[Tuple[float, int, object]] = []
        self.event: Optional[Event] = None
        self.target: Optional[Tuple[float, int]] = None
        self.scheduled = False


class Network:
    """Latency- and bandwidth-accounted message fabric.

    Parameters
    ----------
    sim:
        The simulator whose clock drives deliveries.
    topology:
        Region latency model.
    loss_rate:
        Probability that any message is silently dropped (failure injection);
        must lie in ``[0, 1]``.
    jitter_fraction:
        Per-message latency jitter: delivery latency is the topology-derived
        base times ``1 + uniform(0, jitter_fraction)``. Must be ``>= 0`` — a
        negative fraction could otherwise schedule delivery in the simulated
        past.
    delivery_batching:
        When ``True`` (default) in-flight messages are bucketed into
        per-link-latency-class delivery batches with one coalesced sentinel
        timer per class (see the module docstring); ``False`` posts one event
        per message, the original reference behaviour. Both produce
        bit-identical runs.
    record_bandwidth_events:
        When ``True`` meters keep per-message timestamped events so arbitrary
        windows can be measured; when ``False`` meters keep aggregates only
        (totals plus the observed time span — window queries that cover every
        event still answer exactly, see :meth:`BandwidthMeter.bytes_in_window`).
        Defaults to ``None``, which resolves to ``True`` under the ``v1``
        profile and ``False`` under ``v2``: the fast profile trades the
        per-message log (two list appends on every delivery) for aggregate
        meters, exactly like it trades per-message records for arena slots.
        Pass an explicit ``True`` to keep full logs under v2.
    bandwidth_horizon:
        When set, each meter discards recorded events older than this many
        seconds behind its newest event; window queries that start inside the
        horizon are unaffected (see :class:`BandwidthMeter`). Bounds memory
        on long runs that only ever measure recent windows.
    message_arena:
        When ``True``, in-flight records on the batched path live in a
        :class:`MessageArena` and handlers receive a refilled flyweight
        ``Message`` (valid only during the handler call). Defaults to
        ``None``, which resolves to "on" exactly when the simulator runs the
        ``v2`` profile with delivery batching; forcing it ``True`` under v1
        is allowed (the A/B tests do) and does not change event order or the
        RNG stream — only object lifetimes.
    region_rng:
        When ``True``, loss/jitter and degraded-link draws come from
        per-*source-region* streams (``network@<region>`` /
        ``network/degrade@<region>``) instead of the single shared
        ``network`` stream. This decouples the regions' RNG sequences, which
        is the precondition for running each region's event loop in its own
        process (:mod:`repro.sim.parallel`): with one shared stream, which
        draw a message gets depends on the *global* interleaving of sends
        across regions. Off by default — the pinned v1/v2 determinism
        checksums consume the shared stream; runs with ``region_rng=True``
        are equally deterministic but a *different* byte stream, so never
        compare one against the other.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        *,
        loss_rate: float = 0.0,
        jitter_fraction: float = 0.1,
        delivery_batching: bool = True,
        record_bandwidth_events: Optional[bool] = None,
        bandwidth_horizon: Optional[float] = None,
        message_arena: Optional[bool] = None,
        region_rng: bool = False,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise NetworkError(f"loss rate must be in [0, 1], got {loss_rate}")
        if jitter_fraction < 0.0:
            raise NetworkError(
                f"jitter fraction must be >= 0, got {jitter_fraction}"
            )
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.loss_rate = loss_rate
        self.jitter_fraction = jitter_fraction
        if record_bandwidth_events is None:
            record_bandwidth_events = getattr(sim, "profile", "v1") != "v2"
        self.record_bandwidth_events = record_bandwidth_events
        self.bandwidth_horizon = bandwidth_horizon
        self.metrics = MetricsRegistry()
        self._endpoints: Dict[str, Endpoint] = {}
        #: Last known region per address; kept after unregister so messages
        #: racing a death still pay the dead node's real latency.
        self._last_region: Dict[str, str] = {}
        self._meters: Dict[str, BandwidthMeter] = {}
        self._blocked: Set[FrozenSet[str]] = set()
        self._blocked_regions: Set[FrozenSet[str]] = set()
        #: One-directional blocks: ``(src, dst)`` pairs (asymmetric failures).
        self._blocked_directed: Set[Tuple[str, str]] = set()
        #: Per-link degradation overrides: pair -> (latency multiplier, loss).
        self._degraded: Dict[FrozenSet[str], Tuple[float, float]] = {}
        self._rng = sim.derive_rng("network")
        # Degraded-link loss draws come from their own stream so layering a
        # degradation onto one link never shifts the base ``_rng`` sequence
        # (loss + jitter draws) seen by the rest of the run.
        self._degrade_rng = sim.derive_rng("network/degrade")
        # ``_uniform`` is the single tap every loss and jitter draw goes
        # through. v1 binds it straight to ``random.Random.random`` (the
        # reference byte stream); v2 refills a block of numpy draws and pops
        # them in send order, so draws stay deterministic per seed but come
        # from a different (much cheaper per-draw) generator.
        self._profile = getattr(sim, "profile", "v1")
        if self._profile == "v2":
            self._np_rng = sim.derive_np_rng("network")
            self._uniform_block: List[float] = []
            self._uniform = self._next_uniform
        else:
            self._np_rng = None
            self._uniform_block = []
            self._uniform = self._rng.random
        # Per-source-region streams (see the ``region_rng`` parameter). The
        # dicts are keyed by region name and built in topology order so the
        # derivations themselves are deterministic.
        self.region_rng = region_rng
        if region_rng:
            names = [r.name for r in self.topology.regions]
            self._region_degrade: Optional[Dict[str, object]] = {
                name: sim.derive_rng(f"network/degrade@{name}") for name in names
            }
            if self._profile == "v2":
                self._region_uniform: Optional[Dict[str, Callable[[], float]]] = {
                    name: _BlockUniform(sim.derive_np_rng(f"network@{name}"))
                    for name in names
                }
            else:
                self._region_uniform = {
                    name: sim.derive_rng(f"network@{name}").random
                    for name in names
                }
        else:
            self._region_degrade = None
            self._region_uniform = None
        # Region-sharded (parallel-worker) mode: when ``_export`` is set,
        # sends whose destination region is remote are handed to the exporter
        # instead of being scheduled locally — see enable_region_sharding().
        self._export: Optional[Callable[..., None]] = None
        self._remote_regions: FrozenSet[str] = frozenset()
        self._delivery_taps: list[Callable[[Message], None]] = []
        #: Wire-size table: message kind -> fixed size or callable(payload).
        self._wire_sizes: Dict[str, object] = {}
        # The per-message counters are resolved once here instead of through
        # a registry dict lookup per send/delivery (the two hottest counter
        # paths in the kernel); ``messages_dropped.<reason>`` counters are
        # cached on first use since the reason set is tiny.
        self._messages_sent = self.metrics.counter("messages_sent")
        self._bytes_sent = self.metrics.counter("bytes_sent")
        self._messages_delivered = self.metrics.counter("messages_delivered")
        # Drop counters stay lazily created: a loss-free run's registry should
        # not grow a zero-valued "messages_dropped" it never had before.
        self._messages_dropped = None
        self._drop_reason_counters: Dict[str, object] = {}
        # Delivery batching state. Sequence numbers come from the simulator
        # queue's shared counter — allocated at the same moments ``sim.post``
        # would allocate them, so batched and unbatched runs interleave
        # deliveries with timers identically.
        self.delivery_batching = delivery_batching
        self._in_flight = _DeliveryBatch()
        self._queue = sim._queue
        self._alloc_seq = sim._queue._seq.__next__
        # Instance copy so tests (and density experiments) can pin it.
        self._direct_post_max = DIRECT_POST_MAX
        # Direct-posted deliveries still in flight. The density check must
        # see these too: the heap alone can never climb from empty to the
        # threshold through a path that only fills once the threshold is
        # already met.
        self._direct_outstanding = 0
        if message_arena is None:
            message_arena = delivery_batching and self._profile == "v2"
        self.message_arena = message_arena and delivery_batching
        self._arena = MessageArena() if self.message_arena else None
        # Flyweight refilled per arena delivery; fields are placeholders.
        self._flyweight = Message("", None, "", "", 0, 0.0)

    # ------------------------------------------------------------ membership
    def register(self, endpoint: Endpoint) -> None:
        if endpoint.address in self._endpoints:
            raise NetworkError(f"address {endpoint.address!r} already registered")
        if endpoint.region not in {r.name for r in self.topology.regions}:
            raise NetworkError(
                f"endpoint {endpoint.address!r} placed in unknown region "
                f"{endpoint.region!r}"
            )
        self._endpoints[endpoint.address] = endpoint
        self._last_region[endpoint.address] = endpoint.region

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise NetworkError(f"unknown endpoint {address!r}") from None

    def meter(self, address: str) -> BandwidthMeter:
        meter = self._meters.get(address)
        if meter is None:
            meter = BandwidthMeter(
                address,
                record_events=self.record_bandwidth_events,
                horizon=self.bandwidth_horizon,
            )
            self._meters[address] = meter
        return meter

    # ------------------------------------------------------------- wire sizes
    def register_message_size(self, kind: str, size) -> None:
        """Register a precomputed wire size for a message ``kind``.

        ``size`` is either an ``int`` (fixed-shape messages) or a callable
        ``payload -> int``. It is consulted by :meth:`send` when the caller
        passes no explicit size, replacing the generic :func:`approx_size`
        walk for known message shapes. Re-registering a kind overwrites the
        previous entry; the size must match what ``approx_size`` would have
        returned if deterministic byte accounting across runs matters.
        """
        self._wire_sizes[kind] = size

    # ------------------------------------------------------- failure control
    def block(self, address_a: str, address_b: str) -> None:
        """Drop all traffic between two addresses (both directions)."""
        self._blocked.add(frozenset((address_a, address_b)))

    def unblock(self, address_a: str, address_b: str) -> None:
        self._blocked.discard(frozenset((address_a, address_b)))

    def block_directed(self, src: str, dst: str) -> None:
        """Drop traffic from ``src`` to ``dst`` only (asymmetric failure).

        The reverse direction keeps flowing, which is how NAT/firewall
        misconfigurations and one-way routing failures present: ``dst`` can
        still ping ``src``, but never hears an ack back.
        """
        self._blocked_directed.add((src, dst))

    def unblock_directed(self, src: str, dst: str) -> None:
        self._blocked_directed.discard((src, dst))

    def partition_regions(self, region_a: str, region_b: str) -> None:
        """Drop all traffic between two regions (both directions)."""
        self._blocked_regions.add(frozenset((region_a, region_b)))

    def heal_regions(self, region_a: str, region_b: str) -> None:
        self._blocked_regions.discard(frozenset((region_a, region_b)))

    def degrade_link(
        self,
        address_a: str,
        address_b: str,
        *,
        latency_multiplier: float = 1.0,
        loss_rate: float = 0.0,
    ) -> None:
        """Degrade one link (both directions): slower and/or lossier.

        ``latency_multiplier`` scales the topology-derived one-way latency;
        ``loss_rate`` is an *additional* drop probability applied on top of
        the network-wide one. Loss draws come from a dedicated RNG stream so
        degrading a link never perturbs the seeded event order of undegraded
        traffic. Re-degrading a pair overwrites the previous override.
        """
        if latency_multiplier <= 0:
            raise NetworkError(
                f"latency multiplier must be positive, got {latency_multiplier}"
            )
        if not 0.0 <= loss_rate <= 1.0:
            raise NetworkError(f"loss rate must be in [0, 1], got {loss_rate}")
        self._degraded[frozenset((address_a, address_b))] = (
            latency_multiplier,
            loss_rate,
        )

    def clear_link_degradation(self, address_a: str, address_b: str) -> None:
        self._degraded.pop(frozenset((address_a, address_b)), None)

    def link_degradation(
        self, address_a: str, address_b: str
    ) -> Optional[Tuple[float, float]]:
        """Current ``(latency_multiplier, loss_rate)`` override, if any."""
        return self._degraded.get(frozenset((address_a, address_b)))

    def heal_all(self) -> None:
        """Clear every injected failure: pair and directed blocks, region
        partitions, and per-link degradation overrides."""
        self._blocked.clear()
        self._blocked_regions.clear()
        self._blocked_directed.clear()
        self._degraded.clear()

    def add_delivery_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback invoked on every successful delivery."""
        self._delivery_taps.append(tap)

    def _next_uniform(self) -> float:
        """Pop the next uniform draw from the numpy block (v2 profile).

        Draws are generated :data:`UNIFORM_BLOCK` at a time and consumed in
        generation order (the block is reversed once so ``list.pop`` walks it
        front-to-back), so the sequence of draws is a pure function of the
        seed — batch size and refill timing never change which draw the Nth
        send sees.
        """
        block = self._uniform_block
        if not block:
            block[:] = self._np_rng.random(UNIFORM_BLOCK).tolist()
            block.reverse()
        return block.pop()

    # ---------------------------------------------------------------- sending
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        *,
        size: Optional[int] = None,
    ) -> None:
        """Send a message; delivery is scheduled, never synchronous.

        Unknown destinations and blocked/partitioned pairs silently drop the
        message (that is what the real network does); every loss is counted
        exactly once in ``metrics.counter("messages_dropped")``, with a
        per-reason counter under ``messages_dropped.<reason>``.

        ``payload`` may be a :class:`SizedPayload`, in which case its
        memoized size is used and the wrapped payload is what gets delivered.
        """
        sender = self._endpoints.get(src)
        if sender is None:
            raise NetworkError(f"send from unregistered endpoint {src!r}")
        if isinstance(payload, SizedPayload):
            if size is None:
                size = payload.size
            payload = payload.payload
        if size is None:
            entry = self._wire_sizes.get(kind)
            if entry is None:
                size = approx_size(payload)
            elif callable(entry):
                size = entry(payload)
            else:
                size = entry
        wire_size = size + MESSAGE_OVERHEAD_BYTES
        now = self.sim.now
        self.meter(src).on_send(now, wire_size)
        self._messages_sent.inc()
        self._bytes_sent.inc(wire_size)

        # The destination's region is resolved once and shared by the drop
        # checks, the latency model and the delivery-class key. A recently
        # dead endpoint routes toward where it actually lived.
        receiver = self._endpoints.get(dst)
        if receiver is not None:
            dst_region = receiver.region
        else:
            dst_region = self._last_region.get(dst)
        src_region = sender.region
        region_uniform = self._region_uniform
        if region_uniform is not None:
            uniform = region_uniform[src_region]
            degrade_rng = self._region_degrade[src_region]
        else:
            uniform = self._uniform
            degrade_rng = self._degrade_rng
        if not (
            self._blocked
            or self._blocked_directed
            or self._blocked_regions
            or self._degraded
            or self.loss_rate > 0
        ):
            # Fault-free fast path (see send_fanout): only the
            # unknown-destination drop can apply, and _drop_reason makes no
            # RNG draws in this state, so skipping the call is byte-exact.
            if dst_region is None:
                self._count_drop("unknown_destination")
                return
        else:
            drop_reason = self._drop_reason(
                src, dst, sender, dst_region, uniform, degrade_rng
            )
            if drop_reason is not None:
                self._count_drop(drop_reason)
                return
        base = self.topology.latency(src_region, dst_region)
        if self._degraded:
            entry = self._degraded.get(frozenset((src, dst)))
            if entry is not None:
                base *= entry[0]
        jitter_fraction = self.jitter_fraction
        if jitter_fraction > 0.0:
            latency = base * (1.0 + uniform() * jitter_fraction)
        else:
            latency = base
        if latency < 0.0:
            # Degenerate topologies (negative configured latency) must never
            # schedule a delivery in the simulated past.
            latency = 0.0
        export = self._export
        if export is not None and dst_region in self._remote_regions:
            # Region-sharded mode: the destination lives in another worker.
            # All accounting and RNG draws above already happened (identical
            # to a local send); the delivery key's seq comes from the local
            # counter exactly as the batched path would allocate it, and the
            # coordinator merges it into the destination worker at the next
            # window barrier.
            export(src_region, dst_region, now + latency, self._alloc_seq(),
                   kind, payload, src, dst, wire_size, now)
            return
        batch = self._in_flight
        if not self.delivery_batching or (
            len(batch.heap) + self._direct_outstanding < self._direct_post_max
        ):
            # Reference path: fire-and-forget, one queue entry per message
            # (deliveries are never cancelled, so no TimerHandle either).
            # Also taken at low in-flight density even when batching is on —
            # see DIRECT_POST_MAX; the key comes from the same counter either
            # way, so the drain order is unchanged.
            self._direct_outstanding += 1
            self.sim.post(
                latency, self._deliver,
                Message(kind, payload, src, dst, wire_size, now),
            )
            return
        # Batched path: allocate the delivery key now (send order == seq
        # order, exactly as sim.post would) and park the message in the
        # in-flight heap; only the batch sentinel lives in the main queue.
        delivery_time = now + latency
        seq = self._alloc_seq()
        arena = self._arena
        if arena is not None:
            record: object = arena.alloc(kind, payload, src, dst, wire_size, now)
        else:
            record = Message(kind, payload, src, dst, wire_size, now)
        heappush(batch.heap, (delivery_time, seq, record))
        if not batch.scheduled or (delivery_time, seq) < batch.target:
            self._retarget_deliveries(batch)

    def send_fanout(
        self,
        src: str,
        dsts: Sequence[str],
        kind: str,
        payload: object,
        *,
        size: Optional[int] = None,
    ) -> None:
        """Send one payload to several destinations with a single prologue.

        Byte-identical to calling :meth:`send` once per destination in
        order: per-destination RNG draws (degradation, loss, jitter) happen
        in destination order, the sender's meter log and the drop/sent
        counters reach the same state, and delivery keys come from the same
        shared counter. Only the per-message re-resolution of sender, size,
        meter, counters, and hot attributes is hoisted out of the loop —
        which matters because gossip fan-out is ~90% of all messages in the
        full-protocol workload.
        """
        sender = self._endpoints.get(src)
        if sender is None:
            raise NetworkError(f"send from unregistered endpoint {src!r}")
        if isinstance(payload, SizedPayload):
            if size is None:
                size = payload.size
            payload = payload.payload
        if size is None:
            entry = self._wire_sizes.get(kind)
            if entry is None:
                size = approx_size(payload)
            elif callable(entry):
                size = entry(payload)
            else:
                size = entry
        wire_size = size + MESSAGE_OVERHEAD_BYTES
        now = self.sim.now
        count = len(dsts)
        self.meter(src).on_send_many(now, wire_size, count)
        self._messages_sent.inc(count)
        self._bytes_sent.inc(wire_size * count)
        src_region = sender.region
        endpoints = self._endpoints
        last_region = self._last_region
        latency_table = self.topology.latency_map()
        degraded = self._degraded
        jitter_fraction = self.jitter_fraction
        region_uniform = self._region_uniform
        if region_uniform is not None:
            uniform = region_uniform[src_region]
            degrade_rng = self._region_degrade[src_region]
        else:
            uniform = self._uniform
            degrade_rng = self._degrade_rng
        export = self._export
        remote_regions = self._remote_regions
        delivery_batching = self.delivery_batching
        direct_max = self._direct_post_max
        batch = self._in_flight
        heap = batch.heap
        arena = self._arena
        post = self.sim.post
        deliver = self._deliver
        # Fault-free fast path: with no blocks, partitions, degradations or
        # loss configured, _drop_reason can only ever return
        # "unknown_destination" — that one check is kept inline and the call
        # (which makes no RNG draws in this state) is skipped entirely.
        faultless = not (
            self._blocked
            or self._blocked_directed
            or self._blocked_regions
            or degraded
            or self.loss_rate > 0
        )
        for dst in dsts:
            receiver = endpoints.get(dst)
            if receiver is not None:
                dst_region = receiver.region
            else:
                dst_region = last_region.get(dst)
            if faultless:
                if dst_region is None:
                    self._count_drop("unknown_destination")
                    continue
            else:
                drop_reason = self._drop_reason(
                    src, dst, sender, dst_region, uniform, degrade_rng
                )
                if drop_reason is not None:
                    self._count_drop(drop_reason)
                    continue
            base = latency_table[(src_region, dst_region)]
            if degraded:
                entry = degraded.get(frozenset((src, dst)))
                if entry is not None:
                    base *= entry[0]
            if jitter_fraction > 0.0:
                latency = base * (1.0 + uniform() * jitter_fraction)
            else:
                latency = base
            if latency < 0.0:
                latency = 0.0
            if export is not None and dst_region in remote_regions:
                # Region-sharded mode: see the matching branch in send().
                export(src_region, dst_region, now + latency,
                       self._alloc_seq(), kind, payload, src, dst,
                       wire_size, now)
                continue
            if not delivery_batching or (
                len(heap) + self._direct_outstanding < direct_max
            ):
                self._direct_outstanding += 1
                post(latency, deliver, Message(kind, payload, src, dst, wire_size, now))
                continue
            delivery_time = now + latency
            seq = self._alloc_seq()
            if arena is not None:
                record: object = arena.alloc(kind, payload, src, dst, wire_size, now)
            else:
                record = Message(kind, payload, src, dst, wire_size, now)
            heappush(heap, (delivery_time, seq, record))
            if not batch.scheduled or (delivery_time, seq) < batch.target:
                self._retarget_deliveries(batch)

    def _drop_reason(
        self,
        src: str,
        dst: str,
        sender: Endpoint,
        dst_region: Optional[str],
        uniform: Callable[[], float],
        degrade_rng,
    ) -> Optional[str]:
        """Send-time drop decision; RNG draws happen here and only here.

        The loss/degrade streams are passed in by the caller — the shared
        ``network`` streams normally, the sender-region streams under
        ``region_rng`` — so this body stays byte-identical in both modes.

        Every container check is guarded by a truthiness test so the
        fault-free hot path never builds a frozenset per message, and the
        region-partition check routes through the resolved ``dst_region``
        (which falls back to the last known region), so traffic toward a
        recently dead endpoint across a partition counts as ``partitioned``
        rather than surviving until the ``dead_endpoint`` check.
        """
        if self._blocked and frozenset((src, dst)) in self._blocked:
            return "blocked"
        if self._blocked_directed and (src, dst) in self._blocked_directed:
            return "blocked_directed"
        if dst_region is None:
            # Never-registered destination: there is no region to route
            # toward, so drop at send time instead of inventing a latency.
            return "unknown_destination"
        if (
            self._blocked_regions
            and frozenset((sender.region, dst_region)) in self._blocked_regions
        ):
            return "partitioned"
        if self._degraded:
            entry = self._degraded.get(frozenset((src, dst)))
            if (
                entry is not None
                and entry[1] > 0.0
                and degrade_rng.random() < entry[1]
            ):
                return "degraded"
        if self.loss_rate > 0 and uniform() < self.loss_rate:
            return "loss"
        return None

    # ------------------------------------------------------- region sharding
    def enable_region_sharding(
        self,
        local_regions: Sequence[str],
        remote_regions: Sequence[str],
        address_regions: Dict[str, str],
        exporter: Callable[..., None],
    ) -> None:
        """Turn this network into one shard of a region-partitioned run.

        ``local_regions`` are the regions whose endpoints live (and register)
        in this process; any send toward a region in ``remote_regions`` is
        handed to ``exporter(src_region, dst_region, arrival_time, seq, kind,
        payload, src, dst, wire_size, sent_at)`` after all local accounting
        and RNG draws, instead of being scheduled locally. ``address_regions``
        maps *every* address in the whole simulation to its region, so
        destination regions resolve without the remote endpoints ever
        registering here.

        Requires ``region_rng=True``: with the single shared ``network``
        stream, which draw a send gets depends on the global cross-region
        interleaving of sends, which no longer exists once regions run in
        separate processes.
        """
        if not self.region_rng:
            raise NetworkError(
                "region sharding requires Network(region_rng=True) — the "
                "shared 'network' RNG stream is not decomposable by region"
            )
        local = frozenset(local_regions)
        remote = frozenset(remote_regions)
        overlap = local & remote
        if overlap:
            raise NetworkError(
                f"regions {sorted(overlap)} listed as both local and remote"
            )
        known = {r.name for r in self.topology.regions}
        unknown = (local | remote) - known
        if unknown:
            raise NetworkError(
                f"unknown regions in sharding config: {sorted(unknown)}"
            )
        self._remote_regions = remote
        self._export = exporter
        # Pre-populate the address -> region map: remote destinations are
        # routable (latency model + partition checks) without registration.
        for address, region in address_regions.items():
            self._last_region.setdefault(address, region)

    def inject_remote(
        self,
        arrival: float,
        kind: str,
        payload: object,
        src: str,
        dst: str,
        size: int,
        sent_at: float,
    ) -> None:
        """Schedule a delivery exported by another region's worker.

        Called by the parallel coordinator's barrier merge, in the
        deterministic ``(arrival, src-region index, sender seq)`` order — the
        local delivery seq is allocated here, by insertion order, so the
        destination worker's event order is a pure function of the merged
        stream. The in-flight fault re-check still runs at delivery time via
        :meth:`_deliver`, so a partition injected in this window drops a
        message sent before it, exactly as in the serial run.
        """
        sim = self.sim
        if arrival < sim.now:
            raise NetworkError(
                f"remote injection at t={arrival:.6f} behind local clock "
                f"t={sim.now:.6f} — lookahead (window width) violated"
            )
        self._direct_outstanding += 1
        self._queue.push(
            arrival, self._deliver,
            (Message(kind, payload, src, dst, size, sent_at),),
        )

    # ------------------------------------------------------ batched delivery
    def _retarget_deliveries(self, batch: _DeliveryBatch) -> None:
        """Aim the batch sentinel at the head message's exact ``(time, seq)``.

        Mirrors the timer wheel's sentinel recycling: a sentinel that is
        already queued at a now-stale key is tombstoned (the old object stays
        behind in the queue) and a fresh event takes its place; a sentinel
        that just fired is reused in place, costing no allocation.
        """
        heap = batch.heap
        queue = self._queue
        if not heap:
            if batch.scheduled:
                batch.event.cancelled = True
                queue.note_cancelled()
                batch.event = None
                batch.scheduled = False
            batch.target = None
            return
        time, seq = heap[0][0], heap[0][1]
        key = (time, seq)
        if batch.scheduled:
            if batch.target == key:
                return
            batch.event.cancelled = True
            queue.note_cancelled()
            batch.event = None
        event = batch.event
        if event is None:
            event = Event(time, seq, self._fire_deliveries, (batch,))
            batch.event = event
        else:
            event.time = time
            event.seq = seq
        queue.push_entry(event)
        batch.scheduled = True
        batch.target = key

    def _fire_deliveries(self, batch: _DeliveryBatch) -> None:
        """Sentinel callback: flush every consecutively-due delivery.

        The sentinel fired at the head message's exact key, so the first
        delivery is "paid for" by the event the loop just popped. After each
        delivery the batch keeps draining as long as its next message's key
        still beats the main queue's head and stays within the caller's
        ``run_until`` bound — each extra delivery advances the clock and the
        event count itself, exactly as if it had been queued individually.
        The queue head is peeked once and then only re-peeked after an
        iteration that actually pushed an event (tracked by the queue's
        ``pushes`` counter): handler-scheduled events always carry a fresh
        sequence number, so a stale cached key can only ever end the drain
        early (the sentinel re-aims and the flush resumes), never late.

        The delivery body inlines :meth:`_deliver` (the reference path) —
        the two must stay in lockstep; the seeded A/B equivalence tests in
        ``tests/test_sim_network_batching.py`` enforce it. The only
        intentional difference: the delivered-messages counter is batched
        per flush instead of incremented per message (nothing in the stack
        reads it mid-flush).
        """
        sim = self.sim
        heap = batch.heap
        queue = self._queue
        endpoints_get = self._endpoints.get
        meter = self.meter
        meters_get = self._meters.get
        taps = self._delivery_taps
        arena = self._arena
        flyweight = self._flyweight
        # Mark the batch as draining so a handler sending into it mid-flush
        # never schedules a second sentinel (_DRAINING beats every real key).
        batch.scheduled = True
        batch.target = _DRAINING
        next_key = queue.peek_key()
        pushes = queue.pushes
        delivered = 0
        first = True
        while True:
            time, _seq, record = heappop(heap)
            if arena is not None:
                # ``record`` is an int slot: refill the flyweight. Handlers
                # and taps see a normal Message for the duration of the call.
                message = arena.load(record, flyweight)
            else:
                message = record
            if first:
                first = False
            else:
                sim._now = time
                sim._events_processed += 1
            receiver = endpoints_get(message.dst)
            if receiver is None:
                # Endpoint died while the message was in flight.
                self._count_drop("dead_endpoint")
            elif (
                (self._blocked or self._blocked_directed or self._blocked_regions)
                and (reason := self._in_flight_drop_reason(message, receiver))
                is not None
            ):
                self._count_drop(reason)
            else:
                m = meters_get(message.dst)
                if m is None:
                    m = meter(message.dst)
                m.on_receive(time, message.size)
                delivered += 1
                if taps:
                    for tap in taps:
                        tap(message)
                receiver.handle_message(message)
            if arena is not None:
                # Release after the handler ran: any sends the handler made
                # have already taken their slots, so the LIFO free order is
                # still a pure function of event order.
                arena.release(record)
            if not heap:
                break
            head = heap[0]
            if head[0] > sim._run_bound:
                break
            if queue.pushes != pushes:
                next_key = queue.peek_key()
                pushes = queue.pushes
            if next_key is not None and next_key < (head[0], head[1]):
                break
        if delivered:
            self._messages_delivered.value += delivered
        batch.scheduled = False
        batch.target = None
        self._retarget_deliveries(batch)

    def _count_drop(self, reason: str) -> None:
        dropped = self._messages_dropped
        if dropped is None:
            dropped = self.metrics.counter("messages_dropped")
            self._messages_dropped = dropped
        dropped.inc()
        counter = self._drop_reason_counters.get(reason)
        if counter is None:
            counter = self.metrics.counter(f"messages_dropped.{reason}")
            self._drop_reason_counters[reason] = counter
        counter.inc()

    def _in_flight_drop_reason(
        self, message: Message, receiver: Endpoint
    ) -> Optional[str]:
        """Delivery-time fault re-check: blocks/partitions injected while the
        message was in flight still stop it.

        Only consulted when at least one block or partition exists (callers
        guard on set truthiness), so fault-free runs pay nothing and keep
        their determinism checksum. The sender's region comes from
        ``_last_region`` — the sender may itself have died mid-flight.
        """
        src = message.src
        dst = message.dst
        if self._blocked and frozenset((src, dst)) in self._blocked:
            return "blocked_in_flight"
        if self._blocked_directed and (src, dst) in self._blocked_directed:
            return "blocked_in_flight"
        if self._blocked_regions:
            src_region = self._last_region.get(src)
            if (
                src_region is not None
                and frozenset((src_region, receiver.region)) in self._blocked_regions
            ):
                return "partitioned_in_flight"
        return None

    def _deliver(self, message: Message) -> None:
        """Deliver one message now (reference path; the batched flush in
        :meth:`_fire_deliveries` inlines this body — keep them in lockstep)."""
        self._direct_outstanding -= 1
        receiver = self._endpoints.get(message.dst)
        if receiver is None:
            # Endpoint died while the message was in flight.
            self._count_drop("dead_endpoint")
            return
        if self._blocked or self._blocked_directed or self._blocked_regions:
            reason = self._in_flight_drop_reason(message, receiver)
            if reason is not None:
                self._count_drop(reason)
                return
        self.meter(message.dst).on_receive(self.sim.now, message.size)
        self._messages_delivered.inc()
        for tap in self._delivery_taps:
            tap(message)
        receiver.handle_message(message)
