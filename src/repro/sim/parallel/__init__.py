"""Region-sharded parallel simulation kernel (conservative window sync).

Each region group's event loop runs in its own forked worker process;
workers advance in lockstep time windows whose width (lookahead) is the
topology's minimum inter-region one-way latency, exchanging cross-region
messages at window barriers in a deterministic merge order. See
``coordinator.py`` for the synchronization argument, ``worker.py`` for the
per-process protocol, ``partition.py`` for region/fault-plan partitioning,
and ``workload.py`` for the canonical sharded SWIM workload the benches and
equivalence tests drive.
"""

from repro.sim.parallel.coordinator import ParallelSimulation
from repro.sim.parallel.partition import (
    assign_regions,
    fault_owner_regions,
    plan_event_surplus,
    slice_plan,
    validate_plan_for_parallel,
)
from repro.sim.parallel.worker import ShardBuilder, WorkerShard

__all__ = [
    "ParallelSimulation",
    "ShardBuilder",
    "WorkerShard",
    "assign_regions",
    "fault_owner_regions",
    "plan_event_surplus",
    "slice_plan",
    "validate_plan_for_parallel",
]
