"""Conservative-window coordinator for the region-sharded kernel.

The coordinator forks one worker process per region group (see
``partition.assign_regions``), then advances all workers through lockstep
time windows:

* **Window width (lookahead)** = ``Topology.min_inter_region_latency()``.
  Jitter only ever *adds* latency (the multiplier is ``>= 1``) and
  cross-region latency multipliers below 1.0 are rejected at plan
  validation, so a message sent anywhere inside window ``k`` can only
  arrive strictly after the barrier that ends it — every export from
  window ``k`` is in the destination worker's queue before the window
  containing its arrival time begins. That is the classical conservative
  PDES invariant, with the geo topology's latency floor as lookahead.
* **Barrier merge**: at each barrier the coordinator routes every exported
  record to the worker owning its destination region and sorts each
  worker's inbound batch by ``(arrival_time, src-region topology index,
  sender seq)``. Sender seqs are allocated at *send* time from the sending
  worker's queue counter (the same discipline the batched delivery path
  uses), so the merge order is a pure function of seed + plan — two runs,
  or two different worker counts, produce the same injection order.

Failure handling: a worker that raises ships its traceback back over the
pipe; a worker that dies (killed, segfault, OOM) is detected by polling
``Process.is_alive`` while waiting — both surface as a
:class:`~repro.errors.SimulationError` naming the worker and its regions,
never a hang. The remaining workers are terminated on the way out.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.sim.parallel.partition import (
    assign_regions,
    plan_event_surplus,
    validate_plan_for_parallel,
)
from repro.sim.parallel.worker import ShardBuilder, worker_main
from repro.sim.topology import Topology

#: Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL = 0.05


class ParallelSimulation:
    """Drives one region-sharded run; see the module docstring.

    Parameters
    ----------
    builder:
        ``builder(worker_index, owned_regions) -> WorkerShard``, executed
        inside each forked worker. Because workers fork (never spawn), the
        builder may be any callable — closures included — and must build the
        *entire* shard state itself: forked children share nothing written
        after the fork.
    topology:
        The region set being partitioned; all shards must build their
        networks over an identical topology.
    workers:
        Requested worker count; clamped to the number of regions. ``1`` is
        allowed (a single worker owning every region — useful for harness
        tests, though callers wanting serial semantics should just run the
        shard in-process and skip the fork entirely).
    window:
        Override the window width; defaults to the topology's
        ``min_inter_region_latency()``. Must not exceed it, or lookahead is
        violated and injection raises.
    plan:
        Optional fault plan, validated here for parallel-runnability and
        used to reconcile the replicated chaos events in
        :meth:`event_surplus`. The builder is responsible for putting the
        same plan on its shards (``WorkerShard.plan``).
    region_of_address:
        Required when ``plan`` is set: address -> region for plan
        validation and surplus accounting (the coordinator never builds a
        shard, so it cannot derive the mapping itself).
    """

    def __init__(
        self,
        builder: ShardBuilder,
        *,
        topology: Optional[Topology] = None,
        workers: int = 2,
        window: Optional[float] = None,
        plan: Optional[FaultPlan] = None,
        region_of_address: Optional[Dict[str, str]] = None,
    ) -> None:
        self.topology = topology if topology is not None else Topology()
        region_names = [r.name for r in self.topology.regions]
        if len(region_names) < 2:
            raise SimulationError(
                "the parallel kernel needs a multi-region topology "
                "(one region has no latency floor to derive lookahead from)"
            )
        self.builder = builder
        self.assignments = assign_regions(region_names, workers)
        self.workers = len(self.assignments)
        self._region_index = {name: i for i, name in enumerate(region_names)}
        self._worker_of_region = {
            region: i
            for i, owned in enumerate(self.assignments)
            for region in owned
        }
        lookahead = self.topology.min_inter_region_latency()
        self.window = lookahead if window is None else window
        if not 0.0 < self.window <= lookahead:
            raise SimulationError(
                f"window {self.window:g}s must be in (0, {lookahead:g}s] — "
                f"wider than the min inter-region latency breaks lookahead"
            )
        self.plan = plan
        if plan is not None and not plan.empty:
            if region_of_address is None:
                raise SimulationError(
                    "a fault plan needs region_of_address for validation "
                    "and replication accounting"
                )
            validate_plan_for_parallel(plan, region_of_address)
        self._region_of_address = region_of_address
        self.windows_run = 0
        self.messages_exchanged = 0

    def event_surplus(self) -> int:
        """Extra ``events_processed`` from chaos events replicated across
        workers (0 without a plan); subtract from the summed worker totals
        to compare against a serial run."""
        if self.plan is None or self.plan.empty:
            return 0
        return plan_event_surplus(
            self.plan, self.assignments, self._region_of_address
        )

    # --------------------------------------------------------------- running
    def run(self, duration: float) -> List[dict]:
        """Run every shard to ``duration``; returns per-worker summaries."""
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        if not hasattr(os, "fork"):
            raise SimulationError(
                "the parallel kernel requires fork-capable multiprocessing "
                "(POSIX); run with workers=1 on this platform"
            )
        context = multiprocessing.get_context("fork")
        connections = []
        processes = []
        try:
            all_regions = set(self._region_index)
            for index, owned in enumerate(self.assignments):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=worker_main,
                    args=(
                        child_conn,
                        index,
                        owned,
                        tuple(sorted(all_regions - set(owned))),
                        self.builder,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                processes.append(process)
            inbound: List[List[tuple]] = [[] for _ in processes]
            now = 0.0
            while now < duration:
                end = min(now + self.window, duration)
                for index in range(len(processes)):
                    self._send(index, connections, processes,
                               ("window", end, inbound[index]))
                next_inbound: List[List[tuple]] = [[] for _ in processes]
                for index in range(len(processes)):
                    reply = self._receive(index, connections, processes)
                    for dst_region, records in reply[1].items():
                        target = self._worker_of_region[dst_region]
                        next_inbound[target].extend(records)
                        self.messages_exchanged += len(records)
                region_index = self._region_index
                for batch in next_inbound:
                    batch.sort(
                        key=lambda r: (r[0], region_index[r[1]], r[2])
                    )
                inbound = next_inbound
                now = end
                self.windows_run += 1
            summaries: List[dict] = []
            for index in range(len(processes)):
                self._send(index, connections, processes, ("finish",))
                reply = self._receive(index, connections, processes)
                summaries.append(reply[1])
            for process in processes:
                process.join(timeout=10.0)
            return summaries
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            for conn in connections:
                conn.close()

    def _send(self, index: int, connections, processes, message) -> None:
        """Send a command to worker ``index``; a broken pipe (the worker
        died or errored before this command) is converted into the same
        clear diagnostics ``_receive`` produces, never a raw OS error."""
        try:
            connections[index].send(message)
        except (BrokenPipeError, OSError):
            # Drain the worker's side of the pipe: an ("error", traceback)
            # reply raises with the real cause; a silent death raises the
            # died-mid-run error. Either way _receive raises.
            self._receive(index, connections, processes)
            self._worker_failed(index, processes[index], "closed its pipe")

    def _receive(self, index: int, connections, processes):
        """Next reply from worker ``index``; raises instead of hanging."""
        conn = connections[index]
        process = processes[index]
        while True:
            if conn.poll(_POLL_INTERVAL):
                try:
                    reply = conn.recv()
                except EOFError:
                    self._worker_failed(index, process, "closed its pipe")
                if reply[0] == "error":
                    raise SimulationError(
                        f"parallel worker {index} "
                        f"(regions {', '.join(self.assignments[index])}) "
                        f"failed:\n{reply[1]}"
                    )
                return reply
            if not process.is_alive():
                # One last poll: the worker may have replied and exited
                # before the liveness check saw it die.
                if conn.poll(0):
                    continue
                self._worker_failed(
                    index, process, f"died (exit code {process.exitcode})"
                )

    def _worker_failed(self, index: int, process, what: str) -> None:
        raise SimulationError(
            f"parallel worker {index} "
            f"(regions {', '.join(self.assignments[index])}) {what} "
            f"mid-run — simulation state is unrecoverable; rerun with "
            f"workers=1 to reproduce serially"
        )
