"""Region -> worker assignment and fault-plan partitioning.

The parallel kernel shards a simulation by *region*: worker ``i`` owns
``regions[i::workers]`` (round-robin over the topology's region order), so
any worker count from 1 to ``len(regions)`` yields a deterministic,
assignment-stable partition. Intra-worker traffic — including traffic
between two regions owned by the same worker — never crosses a process
boundary.

Fault plans are *replicated, not split*: a fault event is scheduled in every
worker whose owned regions its effect touches (a WAN partition must be
visible to senders on both sides), and the replication surplus in the summed
``events_processed`` is computed statically here so the coordinator can
reconcile parallel totals with the serial run's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.faults.plan import (
    ChurnBurst,
    CrashNode,
    DegradeLink,
    FaultEvent,
    FaultPlan,
    PartitionRegions,
    PauseProcess,
)
from repro.sim.topology import Topology


def assign_regions(regions: Sequence[str], workers: int) -> List[Tuple[str, ...]]:
    """Round-robin the region names over ``workers`` workers.

    ``workers`` is clamped to ``len(regions)`` — a region is the smallest
    shardable unit (its endpoints share membership caches and probe
    batches). Returns one non-empty tuple of region names per worker.
    """
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if not regions:
        raise SimulationError("cannot partition an empty region list")
    workers = min(workers, len(regions))
    return [tuple(regions[i::workers]) for i in range(workers)]


def fault_owner_regions(
    event: FaultEvent, region_of_address: Dict[str, str]
) -> Set[str]:
    """The set of regions in whose workers ``event`` must be scheduled.

    * Crash/pause target one process: the target's region only.
    * A region partition is checked by *senders* on either side, so every
      region in ``side_a | side_b`` owns it.
    * A link degradation is checked by the sender of either endpoint.
    """
    if isinstance(event, (CrashNode, PauseProcess)):
        region = region_of_address.get(event.target)
        if region is None:
            raise SimulationError(
                f"fault targets unknown address {event.target!r} "
                f"(parallel plans need every target mapped to a region)"
            )
        return {region}
    if isinstance(event, PartitionRegions):
        return set(event.side_a) | set(event.side_b)
    if isinstance(event, DegradeLink):
        regions = set()
        for address in (event.src, event.dst):
            region = region_of_address.get(address)
            if region is None:
                raise SimulationError(
                    f"degraded link endpoint {address!r} has no region mapping"
                )
            regions.add(region)
        return regions
    if isinstance(event, ChurnBurst):
        raise SimulationError(
            "ChurnBurst is not supported under the parallel kernel: joins "
            "create endpoints whose region ownership the static partition "
            "cannot express — run churn plans with workers=1"
        )
    raise SimulationError(f"unknown fault kind {type(event).__name__}")


def validate_plan_for_parallel(
    plan: Optional[FaultPlan],
    region_of_address: Dict[str, str],
) -> None:
    """Reject plans the conservative-window kernel cannot honour.

    The window width (lookahead) equals the *minimum* inter-region one-way
    latency, so any fault that could make a cross-region message arrive
    sooner than that floor breaks the synchronization invariant. Today that
    is exactly one case: a :class:`DegradeLink` with ``latency_multiplier``
    below 1.0 spanning two regions. (``ChurnBurst`` is rejected in
    :func:`fault_owner_regions` for ownership reasons.)
    """
    if plan is None or plan.empty:
        return
    for event in plan.sorted_events():
        fault_owner_regions(event, region_of_address)  # raises on churn
        if isinstance(event, DegradeLink) and event.latency_multiplier < 1.0:
            src_region = region_of_address.get(event.src)
            dst_region = region_of_address.get(event.dst)
            if src_region != dst_region:
                raise SimulationError(
                    f"DegradeLink {event.src}~{event.dst} with "
                    f"latency_multiplier={event.latency_multiplier:g} < 1.0 "
                    f"spans regions {src_region}/{dst_region}: it could beat "
                    f"the inter-region latency floor the window width is "
                    f"derived from — not runnable under the parallel kernel"
                )


def slice_plan(
    plan: Optional[FaultPlan],
    owned_regions: Sequence[str],
    region_of_address: Dict[str, str],
) -> FaultPlan:
    """The sub-plan one worker must execute: every event whose owner-region
    set intersects ``owned_regions``. Events are replicated across owners
    (a partition fires in the workers of both sides); the resulting
    ``events_processed`` surplus is what :func:`plan_event_surplus` counts.
    """
    owned = set(owned_regions)
    sliced = FaultPlan()
    if plan is None or plan.empty:
        return sliced
    for event in plan.sorted_events():
        if fault_owner_regions(event, region_of_address) & owned:
            sliced.add(event)
    return sliced


def _events_per_fault(event: FaultEvent) -> int:
    """Simulator events one firing of ``event`` costs (fire + scheduled
    follow-up). Mirrors ``ChaosEngine``: the fire callback always runs; the
    heal/clear follow-up is scheduled unconditionally when a delay is set.
    Crash restarts and pause resumes are follow-ups too, but those fault
    kinds are single-owner so they never contribute surplus.
    """
    if isinstance(event, PartitionRegions):
        return 1 + (1 if event.heal_after is not None else 0)
    if isinstance(event, DegradeLink):
        return 1 + (1 if event.clear_after is not None else 0)
    return 1


def plan_event_surplus(
    plan: Optional[FaultPlan],
    assignments: Sequence[Sequence[str]],
    region_of_address: Dict[str, str],
) -> int:
    """How many extra ``events_processed`` the replicated plan adds.

    A fault scheduled in ``k`` workers executes its fire (and any heal/clear
    follow-up) ``k`` times where the serial run executes it once; the
    difference is ``(k - 1) * events_per_fault`` summed over the plan. The
    chaos callbacks make no RNG draws and send no messages, so replication
    changes *only* this count — which is why it can be reconciled statically.
    """
    if plan is None or plan.empty:
        return 0
    owned_sets = [set(regions) for regions in assignments]
    surplus = 0
    for event in plan.sorted_events():
        owners = fault_owner_regions(event, region_of_address)
        scheduled_in = sum(1 for owned in owned_sets if owners & owned)
        if scheduled_in > 1:
            surplus += (scheduled_in - 1) * _events_per_fault(event)
    return surplus
