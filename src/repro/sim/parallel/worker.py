"""The per-region worker process of the parallel kernel.

Each worker builds its own complete :class:`~repro.sim.loop.Simulator` +
:class:`~repro.sim.network.Network` (same seed, same topology, same derived
RNG labels — streams are label-keyed, so identical across processes), hosts
only the endpoints of its owned regions, and advances in lockstep windows
under the coordinator's command protocol:

* ``("window", end_time, inbound)`` — inject the pre-sorted cross-region
  messages ``inbound``, run the local loop to ``end_time`` (inclusive
  bound), reply ``("done", outbox)`` where ``outbox`` maps destination
  region -> exported message records from this window;
* ``("finish",)`` — reply ``("summary", shard.summary())`` and exit.

Any exception — in the builder, a handler, or the protocol — is caught and
shipped back as ``("error", traceback_text)`` so the coordinator can raise a
clear :class:`~repro.errors.SimulationError` instead of hanging on a dead
pipe.

Exported message records are tuples
``(arrival_time, src_region, seq, kind, payload, src, dst, size, sent_at)``;
the coordinator merges each destination's inbound stream in
``(arrival_time, src-region topology index, seq)`` order, which is a pure
function of plan + seed — never of worker scheduling.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.engine import ChaosEngine
from repro.faults.plan import FaultPlan
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.parallel.partition import slice_plan


@dataclass
class WorkerShard:
    """What a shard builder returns: the pieces the kernel drives.

    ``summary()`` runs after the last window and must return a *picklable*
    dict (it crosses the pipe back to the coordinator). ``address_regions``
    must map every address in the whole simulation — local and remote — to
    its region, so the local network can route exports without the remote
    endpoints ever registering. ``plan`` (optional) is the *full* fault
    plan; the worker slices it to its owned regions and executes the slice
    through a local :class:`ChaosEngine` before the first window.
    """

    sim: Simulator
    network: Network
    address_regions: Dict[str, str]
    summary: Callable[[], dict]
    plan: Optional[FaultPlan] = None
    chaos_targets: Dict[str, object] = field(default_factory=dict)
    chaos_name: str = "chaos"


#: Shard builders run *inside* the worker process (inherited via fork):
#: ``builder(worker_index, owned_regions) -> WorkerShard``.
ShardBuilder = Callable[[int, Tuple[str, ...]], WorkerShard]


def worker_main(
    conn,
    worker_index: int,
    owned_regions: Tuple[str, ...],
    remote_regions: Tuple[str, ...],
    builder: ShardBuilder,
) -> None:
    """Worker process entry point; see the module docstring for protocol."""
    try:
        shard = builder(worker_index, owned_regions)
        outbox: Dict[str, List[tuple]] = {}

        def exporter(src_region, dst_region, arrival, seq, kind, payload,
                     src, dst, size, sent_at):
            records = outbox.get(dst_region)
            if records is None:
                records = outbox[dst_region] = []
            records.append(
                (arrival, src_region, seq, kind, payload, src, dst, size,
                 sent_at)
            )

        shard.network.enable_region_sharding(
            owned_regions, remote_regions, shard.address_regions, exporter
        )
        if shard.plan is not None and not shard.plan.empty:
            engine = ChaosEngine(
                shard.sim,
                shard.network,
                name=shard.chaos_name,
                targets=shard.chaos_targets,
            )
            engine.execute(
                slice_plan(shard.plan, owned_regions, shard.address_regions)
            )
        inject = shard.network.inject_remote
        run_until = shard.sim.run_until
        while True:
            message = conn.recv()
            command = message[0]
            if command == "window":
                _, end_time, inbound = message
                # Inbound arrives pre-sorted in the deterministic merge
                # order; injecting in list order allocates local delivery
                # seqs in exactly that order.
                for (arrival, _src_region, _seq, kind, payload, src, dst,
                     size, sent_at) in inbound:
                    inject(arrival, kind, payload, src, dst, size, sent_at)
                run_until(end_time)
                conn.send(("done", outbox))
                outbox = {}
            elif command == "finish":
                conn.send(("summary", shard.summary()))
                conn.close()
                return
            else:
                raise RuntimeError(f"unknown worker command {command!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
            conn.close()
        except (BrokenPipeError, OSError):  # coordinator already gone
            pass
