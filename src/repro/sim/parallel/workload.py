"""The canonical region-sharded SWIM/Serf workload.

One builder, three consumers: the ``swim_full_parallel`` benchmark point,
the ``focus-repro swarm`` CLI subcommand, and the serial<->parallel
equivalence tests all drive *this* workload, so "the parallel kernel
reproduces the serial run byte-for-byte" is asserted against a single
definition rather than three drifting copies.

The workload mirrors the frozen ``_swim_full_run`` sweep in
``benchmarks/bench_kernel.py`` — same agent naming, same full-mesh
pre-seed, same sweep-query schedule — with exactly one deliberate
difference: the network runs with ``region_rng=True``, because per-region
RNG streams are the precondition for sharding (see
:class:`~repro.sim.network.Network`). That makes this a *different* seeded
byte stream from the pinned ``swim_full`` checksums; its own serial arm
(``run_serial``) is the reference the parallel arm must match.

Equivalence contract: with ``jitter_fraction > 0`` (the default), serial
and parallel runs produce identical summaries — same events processed,
same query completions, same counters, same bytes on agent a0's meter.
Exact float-time ties between a cross-region delivery and an unrelated
local event are the only possible divergence; jittered latencies make such
ties measure-zero, and the seeded equivalence tests pin the checksums.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.faults.engine import ChaosEngine
from repro.faults.plan import FaultPlan, PartitionRegions
from repro.gossip.agent import SerfAgent, SerfConfig
from repro.gossip.member import Member, MemberState
from repro.gossip.membership import NodeDirectory
from repro.gossip.probe import RegionProbeBatcher
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.parallel.coordinator import ParallelSimulation
from repro.sim.parallel.worker import WorkerShard
from repro.sim.topology import Topology

#: Times at which the sweep's group-wide queries fire (simulated seconds);
#: identical to the kernel benchmark's ``_SWEEP_QUERY_TIMES``.
QUERY_TIMES = (0.5, 1.5, 2.5)

#: Seed shared by every arm; matches the kernel benchmark's sweep seed.
SEED = 13


def _build_shard(
    worker_index: int,
    owned_regions: Tuple[str, ...],
    *,
    nodes: int,
    duration: float,
    profile: str,
    plan: Optional[FaultPlan],
) -> WorkerShard:
    """Build one worker's shard: agents of the owned regions only.

    Every RNG stream is label-keyed (``swim/<address>``,
    ``network@<region>``, per-agent timer labels), so a shard hosting a
    subset of the agents derives exactly the streams the serial run derives
    for those agents — construction order across shards cannot matter.
    """
    sim = Simulator(seed=SEED, profile=profile)
    topology = Topology()
    network = Network(sim, topology, region_rng=True)
    regions = [r.name for r in topology.regions]
    owned = set(owned_regions)
    config = SerfConfig(sync_interval=30.0)
    directory = NodeDirectory()
    batcher = RegionProbeBatcher(sim, config.probe_interval)

    address_regions = {
        f"a{i}": regions[i % len(regions)] for i in range(nodes)
    }
    members = [
        Member(f"n{i}", f"a{i}", regions[i % len(regions)],
               incarnation=0, state=MemberState.ALIVE, state_time=0.0)
        for i in range(nodes)
    ]
    agents: List[SerfAgent] = []
    local_index: Dict[int, SerfAgent] = {}
    for i in range(nodes):
        region = regions[i % len(regions)]
        if region not in owned:
            continue
        agent = SerfAgent(
            sim, network, f"n{i}", f"a{i}", region, config,
            membership="table", directory=directory, probe_batcher=batcher,
        )
        agents.append(agent)
        local_index[i] = agent
    for agent in agents:
        for member in members:
            if member.address != agent.address:
                agent.members.upsert(member)
    completions: Dict[int, int] = {}
    for agent in agents:
        agent.on_query(
            "sweep.load", lambda payload, origin, a=agent: {"n": a.name}
        )
        agent.start()
    for qi, at in enumerate(QUERY_TIMES):
        if at >= duration:
            break
        origin = local_index.get((qi * 997) % nodes)
        if origin is None:
            continue  # the query's origin lives in another worker
        sim.schedule_at(
            at,
            lambda o=origin, qi=qi: o.query(
                "sweep.load", {"q": qi},
                lambda r, qi=qi: completions.__setitem__(qi, len(r)),
            ),
        )
    if profile == "v2":
        sim.freeze_hot_state()

    def summary() -> dict:
        return {
            "events": sim.events_processed,
            "completions": {str(k): v for k, v in sorted(completions.items())},
            "counters": {
                name: network.metrics.counter(name).value
                for name in network.metrics.names()["counters"]
            },
            "meter0": (
                network.meter("a0").bytes_in_window(0.0, duration)
                if 0 in local_index else None
            ),
        }

    return WorkerShard(
        sim=sim,
        network=network,
        address_regions=address_regions,
        summary=summary,
        plan=plan,
        chaos_targets={agent.address: agent for agent in agents},
    )


def merge_summaries(summaries: List[dict], surplus: int = 0) -> dict:
    """Combine per-worker summaries into the serial-comparable form.

    Events sum (minus the replicated-chaos ``surplus``), counters sum per
    name, completions union (query indices are globally unique), and
    ``meter0`` comes from whichever worker owns agent a0.
    """
    merged: dict = {"events": -surplus, "completions": {}, "counters": {},
                    "meter0": None}
    for summary in summaries:
        merged["events"] += summary["events"]
        merged["completions"].update(summary["completions"])
        for name, value in summary["counters"].items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        if summary["meter0"] is not None:
            merged["meter0"] = summary["meter0"]
    merged["completions"] = dict(sorted(merged["completions"].items()))
    merged["counters"] = dict(sorted(merged["counters"].items()))
    return merged


def summary_checksum(summary: dict) -> str:
    """Stable digest of a (merged or serial) run summary."""
    return hashlib.sha256(
        json.dumps(summary, sort_keys=True).encode()
    ).hexdigest()


def run_serial(
    nodes: int,
    duration: float,
    *,
    profile: str = "v1",
    plan: Optional[FaultPlan] = None,
) -> dict:
    """The reference arm: the same shard builder, every region owned, run
    on the ordinary serial loop in-process. This is what ``workers=N`` must
    reproduce byte-for-byte."""
    topology = Topology()
    all_regions = tuple(r.name for r in topology.regions)
    shard = _build_shard(
        0, all_regions, nodes=nodes, duration=duration, profile=profile,
        plan=plan,
    )
    if plan is not None and not plan.empty:
        engine = ChaosEngine(
            shard.sim, shard.network, targets=shard.chaos_targets
        )
        engine.execute(plan)
    shard.sim.run_until(duration)
    result = shard.summary()
    if profile == "v2":
        shard.sim.unfreeze_hot_state()
    return result


def run_parallel(
    nodes: int,
    duration: float,
    *,
    workers: int,
    profile: str = "v1",
    plan: Optional[FaultPlan] = None,
) -> Tuple[dict, ParallelSimulation]:
    """The sharded arm: ``workers`` forked region workers under the
    conservative-window coordinator. Returns the merged summary plus the
    coordinator (exposing windows_run / messages_exchanged)."""
    topology = Topology()
    regions = [r.name for r in topology.regions]
    address_regions = {
        f"a{i}": regions[i % len(regions)] for i in range(nodes)
    }

    def builder(worker_index: int, owned_regions: Tuple[str, ...]) -> WorkerShard:
        return _build_shard(
            worker_index, owned_regions, nodes=nodes, duration=duration,
            profile=profile, plan=plan,
        )

    coordinator = ParallelSimulation(
        builder,
        topology=topology,
        workers=workers,
        plan=plan,
        region_of_address=address_regions if plan is not None else None,
    )
    summaries = coordinator.run(duration)
    merged = merge_summaries(summaries, coordinator.event_surplus())
    return merged, coordinator


def barrier_spanning_plan(duration: float) -> FaultPlan:
    """The chaos plan the equivalence tests run: a WAN partition whose
    start and heal both land strictly inside the run and span many window
    barriers (the window is ~6 ms; the fault is injected at one third of
    the run and heals at two thirds)."""
    start = duration / 3.0
    return FaultPlan().add(
        PartitionRegions(
            at=start,
            side_a=("us-east-2",),
            side_b=("us-west-2", "us-west-1"),
            heal_after=duration / 3.0,
        )
    )
