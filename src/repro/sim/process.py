"""Process helpers: a network-attached endpoint base class and periodic tasks.

Almost every component in the reproduction (Serf agents, store replicas, the
FOCUS service, baseline servers, node agents) is a :class:`Process` — an
addressable endpoint with a message dispatch table and lifecycle hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.loop import RepeatingTimer, Simulator
from repro.sim.network import Message, Network


class Process:
    """A network endpoint with kind-based message dispatch.

    Subclasses register handlers with :meth:`on` (usually in ``__init__``)
    and start periodic work in :meth:`start`. ``stop`` cancels all timers and
    detaches from the network, which models a process crash: in-flight
    messages to it are dropped.
    """

    def __init__(self, sim: Simulator, network: Network, address: str, region: str) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.region = region
        self.running = False
        #: A paused process models a GC stall / frozen VM: it receives
        #: nothing, sends nothing, and its expired one-shot timers fire in a
        #: burst on :meth:`resume` (periodic firings are simply skipped).
        self.paused = False
        #: Deliveries and sends swallowed while paused (failure-suite metric).
        self.paused_drops = 0
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._timers: List[RepeatingTimer] = []
        self._deferred: List[Tuple[Callable[..., None], tuple]] = []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Attach to the network and begin periodic work."""
        if self.running:
            raise SimulationError(f"{self.address} already started")
        self.network.register(self)
        self.running = True
        self.on_start()

    def stop(self) -> None:
        """Detach from the network and cancel all periodic work (a crash)."""
        if not self.running:
            return
        self.running = False
        self.paused = False
        self._deferred.clear()
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        self.network.unregister(self.address)
        self.on_stop()

    def restart(self) -> None:
        """Bring a stopped process back up (crash recovery).

        The base implementation just re-registers and restarts periodic
        work via :meth:`start`; subclasses override to reload durable state
        or re-introduce themselves to peers (the node agent re-registers
        with the FOCUS service, the service reloads the store).
        """
        if self.running:
            raise SimulationError(f"{self.address} is already running")
        self.start()

    def pause(self) -> None:
        """Freeze the process (GC-stall style) until :meth:`resume`.

        While paused the process stays registered on the network but drops
        every delivery and send, skips periodic timer firings, and defers
        expired one-shot (:meth:`after`/:meth:`post`) callbacks. Peers see
        an unresponsive node — SWIM suspects it — yet its state survives, so
        on resume it refutes suspicion instead of rejoining from scratch.
        """
        if not self.running:
            raise SimulationError(f"cannot pause stopped process {self.address}")
        self.paused = True

    def resume(self) -> None:
        """Unfreeze: replay deferred one-shot callbacks in expiry order.

        Replaying (rather than dropping) matches what a real stall does —
        every timer that expired during the freeze fires late, in order, the
        moment the process thaws.
        """
        if not self.paused:
            return
        self.paused = False
        deferred, self._deferred = self._deferred, []
        for callback, args in deferred:
            if self.running and not self.paused:
                callback(*args)

    def on_start(self) -> None:
        """Subclass hook; schedule periodic tasks here."""

    def on_stop(self) -> None:
        """Subclass hook; release resources here."""

    # -------------------------------------------------------------- messaging
    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages of ``kind``."""
        if kind in self._handlers:
            raise SimulationError(f"{self.address}: duplicate handler for {kind!r}")
        self._handlers[kind] = handler

    def handle_message(self, message: Message) -> None:
        if not self.running:
            return
        if self.paused:
            self.paused_drops += 1
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.on_unhandled(message)
            return
        handler(message)

    def on_unhandled(self, message: Message) -> None:
        """Called for messages with no registered handler; default drops."""

    def send(self, dst: str, kind: str, payload: object, *, size: Optional[int] = None) -> None:
        if not self.running:
            return
        if self.paused:
            self.paused_drops += 1
            return
        self.network.send(self.address, dst, kind, payload, size=size)

    def send_fanout(
        self, dsts: Sequence[str], kind: str, payload: object, *, size: Optional[int] = None
    ) -> None:
        """One payload to several destinations; equivalent to ``send`` per
        destination in order (one paused drop per destination, same network
        accounting) with the per-message prologue hoisted."""
        if not self.running:
            return
        if self.paused:
            self.paused_drops += len(dsts)
            return
        self.network.send_fanout(self.address, dsts, kind, payload, size=size)

    # ----------------------------------------------------------------- timers
    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        start_delay: Optional[float] = None,
    ) -> RepeatingTimer:
        """Run ``callback`` periodically until the process stops.

        Firings are skipped (not deferred) while the process is paused: a
        thawed process picks its periodic work back up at the next interval
        rather than replaying a burst of stale ticks.
        """

        def fire() -> None:
            if not self.paused:
                callback()

        timer = self.sim.call_every(
            interval,
            fire,
            jitter=jitter,
            rng=self.sim.derive_rng(f"{self.address}/timer/{len(self._timers)}"),
            start_delay=start_delay,
        )
        self._timers.append(timer)
        return timer

    def after(self, delay: float, callback: Callable[..., None], *args: object):
        """One-shot timer; fires only while the process is running.

        Returns a :class:`~repro.sim.events.TimerHandle` for cancellation.
        Protocol hot paths that never cancel should prefer :meth:`post`.
        """

        def guarded(*call_args: object) -> None:
            if not self.running:
                return
            if self.paused:
                self._deferred.append((callback, call_args))
                return
            callback(*call_args)

        return self.sim.schedule(delay, guarded, *args)

    def post(self, delay: float, callback: Callable[..., None], *args: object) -> None:
        """Fire-and-forget :meth:`after`: no handle, no closure.

        The callback still only fires while the process is running (the
        running check rides along as event arguments instead of a captured
        closure), so it is safe for timeouts that may outlive a crash.
        Scheduling order — and therefore the whole run — is identical to
        :meth:`after`; only the per-call allocations disappear.
        """
        self.sim.post(delay, self._post_fire, callback, args)

    def _post_fire(self, callback: Callable[..., None], args: tuple) -> None:
        if not self.running:
            return
        if self.paused:
            self._deferred.append((callback, args))
            return
        callback(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "paused" if self.paused else ("up" if self.running else "down")
        return f"<{type(self).__name__} {self.address} ({self.region}) {state}>"


class PeriodicTask:
    """A named periodic task owned by a process; thin wrapper for tests.

    Provided for components that want to expose their timers (e.g. the node
    agent exposes its collection and gossip tasks so tests can assert on
    their intervals).
    """

    def __init__(self, name: str, timer: RepeatingTimer) -> None:
        self.name = name
        self._timer = timer

    @property
    def interval(self) -> float:
        return self._timer.interval

    @property
    def stopped(self) -> bool:
        return self._timer.stopped

    def stop(self) -> None:
        self._timer.stop()
