"""Request/response layer on top of the raw network.

FOCUS exposes REST APIs (Jetty in the paper); the store coordinator issues
quorum reads/writes; baselines pull node state on demand. All of these are
request/response exchanges with timeouts, implemented here once.

A process mixes in :class:`RpcMixin` (after :class:`~repro.sim.process.Process`
in the MRO) and then:

* serves calls by registering ``self.serve("focus.query", fn)`` where ``fn``
  takes the request payload and either returns a response payload or calls
  ``responder(payload)`` later for asynchronous completion;
* issues calls with ``self.call(dst, "focus.query", payload, on_reply=...,
  on_timeout=..., timeout=...)``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.sim.network import Message, approx_size

REQUEST_KIND = "rpc.request"
RESPONSE_KIND = "rpc.response"

#: Sentinel returned by an RPC server function that will respond later.
DEFERRED = object()

#: Precomputed envelope cost of the fixed-shape RPC wrapper dicts.
#:
#: Both ``{"id", "method", "params"}`` and ``{"id", "method", "result"}``
#: have three fixed keys (JSON sizes 4/8/8 — "params" and "result" tie at 8)
#: and two string values whose quote framing is 2 bytes each, so only the
#: string lengths and the variable third member need computing per message.
#: Registered with the network's wire-size table so the generic
#: ``approx_size`` walk never touches the envelope; asserted byte-identical
#: to the walk in ``tests/test_sim_network.py``.
_ENVELOPE_SIZE = (
    2 + 3 * 2  # braces + per-entry separators
    + approx_size("id") + approx_size("method") + approx_size("params")  # keys
    + 2 + 2  # quote framing of the two string values
)


def _request_size(payload: Dict[str, object]) -> int:
    return (
        _ENVELOPE_SIZE
        + len(payload["id"])
        + len(payload["method"])
        + approx_size(payload["params"])
    )


def _response_size(payload: Dict[str, object]) -> int:
    return (
        _ENVELOPE_SIZE
        + len(payload["id"])
        + len(payload["method"])
        + approx_size(payload["result"])
    )


class PendingCall:
    """Book-keeping for one outstanding outbound call."""

    __slots__ = ("call_id", "method", "on_reply", "timer", "sent_at")

    def __init__(self, call_id, method, on_reply, timer, sent_at) -> None:
        self.call_id = call_id
        self.method = method
        self.on_reply = on_reply
        self.timer = timer
        self.sent_at = sent_at


class RpcMixin:
    """Adds call/serve semantics to a :class:`~repro.sim.process.Process`."""

    _rpc_counter = itertools.count()

    def init_rpc(self) -> None:
        """Must be called from the subclass ``__init__`` after ``Process.__init__``."""
        self._rpc_pending: Dict[str, PendingCall] = {}
        self._rpc_methods: Dict[str, Callable] = {}
        self.on(REQUEST_KIND, self._rpc_on_request)
        self.on(RESPONSE_KIND, self._rpc_on_response)
        # Idempotent: every RPC endpoint registers the same two entries.
        self.network.register_message_size(REQUEST_KIND, _request_size)
        self.network.register_message_size(RESPONSE_KIND, _response_size)

    # ---------------------------------------------------------------- server
    def serve(self, method: str, fn: Callable) -> None:
        """Register ``fn(payload, respond, message)`` for ``method``.

        ``fn`` may return a payload (sent immediately), or return
        :data:`DEFERRED` and invoke ``respond(payload)`` at any later time.
        """
        self._rpc_methods[method] = fn

    def _rpc_on_request(self, message: Message) -> None:
        payload = message.payload
        method = payload["method"]
        call_id = payload["id"]
        fn = self._rpc_methods.get(method)

        def respond(result: object) -> None:
            self.send(
                message.src,
                RESPONSE_KIND,
                {"id": call_id, "method": method, "result": result},
            )

        if fn is None:
            respond({"error": f"unknown method {method!r}"})
            return
        result = fn(payload["params"], respond, message)
        if result is not DEFERRED:
            respond(result)

    # ---------------------------------------------------------------- client
    def call(
        self,
        dst: str,
        method: str,
        params: object,
        *,
        on_reply: Callable[[object], None],
        timeout: float = 5.0,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> str:
        """Issue a call; exactly one of ``on_reply``/``on_timeout`` fires."""
        call_id = f"{self.address}#{next(self._rpc_counter)}"

        def timed_out() -> None:
            pending = self._rpc_pending.pop(call_id, None)
            if pending is not None and on_timeout is not None:
                on_timeout()

        timer = self.sim.schedule(timeout, timed_out)
        self._rpc_pending[call_id] = PendingCall(
            call_id, method, on_reply, timer, self.sim.now
        )
        self.send(dst, REQUEST_KIND, {"id": call_id, "method": method, "params": params})
        return call_id

    def cancel_call(self, call_id: str) -> None:
        pending = self._rpc_pending.pop(call_id, None)
        if pending is not None:
            pending.timer.cancel()

    def _rpc_on_response(self, message: Message) -> None:
        payload = message.payload
        pending = self._rpc_pending.pop(payload["id"], None)
        if pending is None:
            return  # late reply after timeout; drop
        pending.timer.cancel()
        pending.on_reply(payload["result"])
