"""Request/response layer on top of the raw network.

FOCUS exposes REST APIs (Jetty in the paper); the store coordinator issues
quorum reads/writes; baselines pull node state on demand. All of these are
request/response exchanges with timeouts, implemented here once.

A process mixes in :class:`RpcMixin` (after :class:`~repro.sim.process.Process`
in the MRO) and then:

* serves calls by registering ``self.serve("focus.query", fn)`` where ``fn``
  takes the request payload and either returns a response payload or calls
  ``responder(payload)`` later for asynchronous completion;
* issues calls with ``self.call(dst, "focus.query", payload, on_reply=...,
  on_timeout=..., timeout=...)``.

Failure handling (opt-in per call / per server):

* ``retries=N`` retransmits a timed-out request up to ``N`` times with
  exponential backoff and full jitter (the AWS architecture-blog scheme:
  ``sleep = uniform(0, base * 2**attempt)``), reusing the same call id so
  the reply paths dedupe naturally;
* :meth:`RpcMixin.enable_rpc_idempotency` adds a bounded reply cache on the
  server side, so a retransmitted request is answered from the cache instead
  of executing its handler twice;
* every timeout and every reply that arrives after its call already timed
  out is counted (``rpc.timeouts`` / ``rpc.late_replies`` on the network's
  metrics registry) instead of vanishing silently.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.sim.network import Message, approx_size

REQUEST_KIND = "rpc.request"
RESPONSE_KIND = "rpc.response"

#: Sentinel returned by an RPC server function that will respond later.
DEFERRED = object()

#: Reply-cache marker for a request whose (deferred) handler is still
#: executing; duplicates arriving meanwhile are dropped, not re-executed.
_IN_FLIGHT = object()

#: Precomputed envelope cost of the fixed-shape RPC wrapper dicts.
#:
#: Both ``{"id", "method", "params"}`` and ``{"id", "method", "result"}``
#: have three fixed keys (JSON sizes 4/8/8 — "params" and "result" tie at 8)
#: and two string values whose quote framing is 2 bytes each, so only the
#: string lengths and the variable third member need computing per message.
#: Registered with the network's wire-size table so the generic
#: ``approx_size`` walk never touches the envelope; asserted byte-identical
#: to the walk in ``tests/test_sim_network.py``.
_ENVELOPE_SIZE = (
    2 + 3 * 2  # braces + per-entry separators
    + approx_size("id") + approx_size("method") + approx_size("params")  # keys
    + 2 + 2  # quote framing of the two string values
)


def _request_size(payload: Dict[str, object]) -> int:
    return (
        _ENVELOPE_SIZE
        + len(payload["id"])
        + len(payload["method"])
        + approx_size(payload["params"])
    )


def _response_size(payload: Dict[str, object]) -> int:
    return (
        _ENVELOPE_SIZE
        + len(payload["id"])
        + len(payload["method"])
        + approx_size(payload["result"])
    )


class PendingCall:
    """Book-keeping for one outstanding outbound call."""

    __slots__ = ("call_id", "method", "on_reply", "timer", "sent_at", "attempt")

    def __init__(self, call_id, method, on_reply, timer, sent_at) -> None:
        self.call_id = call_id
        self.method = method
        self.on_reply = on_reply
        self.timer = timer
        self.sent_at = sent_at
        #: Retransmissions performed so far (0 = first send still pending).
        self.attempt = 0


class RpcMixin:
    """Adds call/serve semantics to a :class:`~repro.sim.process.Process`."""

    def init_rpc(self) -> None:
        """Must be called from the subclass ``__init__`` after ``Process.__init__``."""
        # Per-instance, not per-class: call ids appear in wire messages, so a
        # process-global counter would make byte counts depend on how many
        # simulations ran earlier in the same interpreter.
        self._rpc_counter = itertools.count()
        self._rpc_pending: Dict[str, PendingCall] = {}
        self._rpc_methods: Dict[str, Callable] = {}
        #: Backoff jitter draws live on their own stream: a call that never
        #: retries never draws, so fault-free runs keep their event order.
        self._rpc_retry_rng = self.sim.derive_rng(f"{self.address}/rpc-retry")
        self._rpc_reply_cache: Optional[OrderedDict] = None
        self._rpc_reply_cache_capacity = 0
        # Timeout/late-reply counters are created on first use so runs that
        # never time out keep their metrics registry (and its determinism
        # checksum) byte-identical to before this layer existed.
        self._rpc_timeouts_counter = None
        self._rpc_late_counter = None
        self.on(REQUEST_KIND, self._rpc_on_request)
        self.on(RESPONSE_KIND, self._rpc_on_response)
        # Idempotent: every RPC endpoint registers the same two entries.
        self.network.register_message_size(REQUEST_KIND, _request_size)
        self.network.register_message_size(RESPONSE_KIND, _response_size)

    def enable_rpc_idempotency(self, capacity: int = 1024) -> None:
        """Answer duplicate requests from a bounded reply cache.

        Retransmitted requests reuse their call id, so the cache key is the
        id itself. Evicted entries fall back to re-execution, which is safe
        for the timestamped (last-write-wins) operations this repo retries.
        """
        self._rpc_reply_cache = OrderedDict()
        self._rpc_reply_cache_capacity = capacity

    def reset_rpc(self) -> None:
        """Forget every outstanding outbound call (crash cleanup).

        Cancels the timeout timers so neither ``on_reply`` nor ``on_timeout``
        fires for calls issued before a crash; replies that still arrive are
        counted as late.
        """
        for pending in self._rpc_pending.values():
            pending.timer.cancel()
        self._rpc_pending.clear()

    def _rpc_count_timeout(self) -> None:
        counter = self._rpc_timeouts_counter
        if counter is None:
            counter = self.network.metrics.counter("rpc.timeouts")
            self._rpc_timeouts_counter = counter
        counter.inc()

    def _rpc_count_late_reply(self) -> None:
        counter = self._rpc_late_counter
        if counter is None:
            counter = self.network.metrics.counter("rpc.late_replies")
            self._rpc_late_counter = counter
        counter.inc()

    # ---------------------------------------------------------------- server
    def serve(self, method: str, fn: Callable) -> None:
        """Register ``fn(payload, respond, message)`` for ``method``.

        ``fn`` may return a payload (sent immediately), or return
        :data:`DEFERRED` and invoke ``respond(payload)`` at any later time.
        """
        self._rpc_methods[method] = fn

    def _rpc_on_request(self, message: Message) -> None:
        payload = message.payload
        method = payload["method"]
        call_id = payload["id"]
        # Capture the reply address NOW: under the v2 profile the delivered
        # ``message`` is the arena's recycled flyweight, whose fields are
        # overwritten by the next delivery — a deferred ``respond`` must not
        # read them after the handler returns.
        reply_to = message.src
        cache = self._rpc_reply_cache
        if cache is not None:
            if call_id in cache:
                cached = cache[call_id]
                if cached is not _IN_FLIGHT:
                    # Duplicate of an answered request: replay the response
                    # without re-executing the handler.
                    self.send(
                        reply_to,
                        RESPONSE_KIND,
                        {"id": call_id, "method": method, "result": cached},
                    )
                return  # in-flight duplicate: the original will respond
            cache[call_id] = _IN_FLIGHT
            if len(cache) > self._rpc_reply_cache_capacity:
                cache.popitem(last=False)
        fn = self._rpc_methods.get(method)

        def respond(result: object) -> None:
            if cache is not None and call_id in cache:
                cache[call_id] = result
            self.send(
                reply_to,
                RESPONSE_KIND,
                {"id": call_id, "method": method, "result": result},
            )

        if fn is None:
            respond({"error": f"unknown method {method!r}"})
            return
        result = fn(payload["params"], respond, message)
        if result is not DEFERRED:
            respond(result)

    # ---------------------------------------------------------------- client
    def call(
        self,
        dst: str,
        method: str,
        params: object,
        *,
        on_reply: Callable[[object], None],
        timeout: float = 5.0,
        on_timeout: Optional[Callable[[], None]] = None,
        retries: int = 0,
        retry_backoff: float = 0.5,
    ) -> str:
        """Issue a call; exactly one of ``on_reply``/``on_timeout`` fires.

        With ``retries > 0`` a timed-out request is retransmitted up to that
        many times, waiting ``uniform(0, retry_backoff * 2**attempt)`` before
        each resend (exponential backoff, full jitter — uncoordinated
        retries, no synchronized storms). Every attempt reuses the same call
        id: a late reply to an earlier attempt completes the call, and
        servers with the idempotency cache enabled never double-execute.
        ``on_timeout`` fires only after the final attempt times out.
        """
        call_id = f"{self.address}#{next(self._rpc_counter)}"
        request = {"id": call_id, "method": method, "params": params}

        def timed_out() -> None:
            pending = self._rpc_pending.get(call_id)
            if pending is None:
                return
            self._rpc_count_timeout()
            if pending.attempt < retries:
                pending.attempt += 1
                delay = self._rpc_retry_rng.uniform(
                    0.0, retry_backoff * (2 ** (pending.attempt - 1))
                )
                pending.timer = self.sim.schedule(delay, resend)
                return
            del self._rpc_pending[call_id]
            if on_timeout is not None:
                on_timeout()

        def resend() -> None:
            pending = self._rpc_pending.get(call_id)
            if pending is None:
                return  # a late reply completed the call during the backoff
            if not self.running:
                # The caller crashed while backing off; abandon the call
                # without firing either callback (crash semantics).
                del self._rpc_pending[call_id]
                return
            pending.timer = self.sim.schedule(timeout, timed_out)
            self.send(dst, REQUEST_KIND, request)

        timer = self.sim.schedule(timeout, timed_out)
        self._rpc_pending[call_id] = PendingCall(
            call_id, method, on_reply, timer, self.sim.now
        )
        self.send(dst, REQUEST_KIND, request)
        return call_id

    def cancel_call(self, call_id: str) -> None:
        pending = self._rpc_pending.pop(call_id, None)
        if pending is not None:
            pending.timer.cancel()

    def _rpc_on_response(self, message: Message) -> None:
        payload = message.payload
        pending = self._rpc_pending.pop(payload["id"], None)
        if pending is None:
            # Reply after the call already timed out (or was reset by a
            # crash): drop it, but leave a trace for the failure suite.
            self._rpc_count_late_reply()
            return
        pending.timer.cancel()
        pending.on_reply(payload["result"])
