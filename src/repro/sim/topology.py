"""Geographic topology: regions, sites and distance-derived latencies.

The paper's testbed spans four EC2 regions in North America — Ohio, Canada
(Central), Oregon and California (§X-A). We model regions as points on the
globe and derive inter-region one-way latency from great-circle distance at
two-thirds the speed of light plus a fixed processing overhead, which lands
within a few milliseconds of published EC2 inter-region RTTs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

EARTH_RADIUS_KM = 6371.0
# Effective propagation speed of light in fibre, km per second.
FIBRE_KM_PER_SECOND = 200_000.0
# Fibre paths are not great circles; typical stretch factor.
PATH_STRETCH = 1.6


@dataclass(frozen=True)
class Region:
    """A geographic region hosting simulation endpoints."""

    name: str
    latitude: float
    longitude: float

    def __str__(self) -> str:
        return self.name


#: The four regions used in the paper's evaluation (Section X-A).
PAPER_REGIONS: Tuple[Region, ...] = (
    Region("us-east-2", 39.96, -83.00),  # Ohio
    Region("ca-central-1", 45.50, -73.57),  # Canada (Montreal)
    Region("us-west-2", 45.52, -122.68),  # Oregon
    Region("us-west-1", 37.35, -121.96),  # N. California
)


def geo_distance_km(a: Region, b: Region) -> float:
    """Great-circle distance between two regions in kilometres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


@dataclass(frozen=True)
class Site:
    """A deployment site (datacenter / edge location) within a region.

    FOCUS nodes inherit their site's global attributes (Section V-A), e.g. a
    host inherits its site's ``region`` attribute.
    """

    name: str
    region: Region
    attributes: Dict[str, object] = field(default_factory=dict)

    def inherited_attributes(self) -> Dict[str, object]:
        """Attributes every node in this site inherits."""
        merged = {"site": self.name, "region": self.region.name}
        merged.update(self.attributes)
        return merged


class Topology:
    """Latency model over a set of regions.

    Parameters
    ----------
    regions:
        Regions participating in the simulation. Defaults to the paper's four.
    intra_region_latency:
        One-way latency between endpoints in the same region (seconds).
    processing_overhead:
        Fixed per-hop overhead added to propagation delay (seconds).
    """

    def __init__(
        self,
        regions: Optional[Iterable[Region]] = None,
        *,
        intra_region_latency: float = 0.0005,
        processing_overhead: float = 0.0015,
    ) -> None:
        self.regions: List[Region] = list(regions) if regions is not None else list(PAPER_REGIONS)
        if not self.regions:
            raise ValueError("topology requires at least one region")
        self.intra_region_latency = intra_region_latency
        self.processing_overhead = processing_overhead
        self._latency: Dict[Tuple[str, str], float] = {}
        self._by_name: Dict[str, Region] = {r.name: r for r in self.regions}
        for a in self.regions:
            for b in self.regions:
                self._latency[(a.name, b.name)] = self._compute_latency(a, b)

    def _compute_latency(self, a: Region, b: Region) -> float:
        if a.name == b.name:
            return self.intra_region_latency
        distance = geo_distance_km(a, b) * PATH_STRETCH
        return distance / FIBRE_KM_PER_SECOND + self.processing_overhead

    def region(self, name: str) -> Region:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown region {name!r}") from None

    def latency(self, region_a: str, region_b: str) -> float:
        """One-way latency in seconds between two regions."""
        try:
            return self._latency[(region_a, region_b)]
        except KeyError:
            raise KeyError(f"unknown region pair ({region_a!r}, {region_b!r})") from None

    def latency_map(self) -> Dict[Tuple[str, str], float]:
        """The full ``(region_a, region_b) -> latency`` table.

        Exposed for per-message hot paths (the network's fan-out loop) that
        want one dict probe instead of a method call per destination. The
        table is fixed at construction; callers must treat it as read-only.
        """
        return self._latency

    def min_inter_region_latency(self) -> float:
        """Smallest one-way latency between two *distinct* regions.

        This is the conservative-synchronization lookahead for the parallel
        kernel (``repro.sim.parallel``): a message sent at time ``t`` from one
        region can never arrive in another region before
        ``t + min_inter_region_latency()``, so region workers may safely run
        that far ahead of each other between barrier exchanges. Requires at
        least two regions (a single-region topology has no inter-region
        traffic and nothing to parallelize over).
        """
        best: Optional[float] = None
        for (a, b), latency in self._latency.items():
            if a == b:
                continue
            if best is None or latency < best:
                best = latency
        if best is None:
            raise ValueError(
                "min_inter_region_latency() needs at least two regions"
            )
        return best

    def max_distance_km(self, region_names: Iterable[str]) -> float:
        """Largest pairwise distance among the given regions.

        Used by the DGM's geographic group-split rule (Section VII): a group
        spanning regions farther apart than a threshold is split per region.
        """
        names = list(region_names)
        best = 0.0
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                best = max(best, geo_distance_km(self.region(a), self.region(b)))
        return best

    def make_sites(self, per_region: int = 1, prefix: str = "site") -> List[Site]:
        """Create ``per_region`` sites in each region, round-robin named."""
        sites = []
        for region in self.regions:
            for i in range(per_region):
                sites.append(Site(f"{prefix}-{region.name}-{i}", region))
        return sites
