"""Cassandra-equivalent replicated table store.

FOCUS keeps its durable state — registrar tables (one per static attribute),
group tables, and the transition table — in a Cassandra cluster (§VIII-A).
This package provides the same table model over a small replicated KV store:
consistent-hash placement, N-way replication, quorum reads/writes with
last-write-wins timestamp reconciliation, and full-scan queries.
"""

from repro.store.cluster import StoreClient, StoreCluster
from repro.store.hashring import ConsistentHashRing
from repro.store.replica import StoreReplica
from repro.store.table import Row, Table

__all__ = [
    "ConsistentHashRing",
    "Row",
    "StoreClient",
    "StoreCluster",
    "StoreReplica",
    "Table",
]
