"""Quorum coordinator client and cluster factory.

:class:`StoreClient` gives any RPC-capable process Cassandra-style table
operations: writes go to the key's N replicas and complete at W acks, reads
query the replicas and complete at R responses with last-write-wins
reconciliation plus read repair. :class:`StoreCluster` wires up the replica
processes across regions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import QuorumError
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.store.hashring import ConsistentHashRing
from repro.store.replica import StoreReplica
from repro.store.table import Row


class _QuorumOp:
    """Tracks one multi-replica operation until quorum or failure."""

    def __init__(self, total: int, needed: int, on_done, on_error) -> None:
        self.total = total
        self.needed = needed
        self.on_done = on_done
        self.on_error = on_error
        self.successes: List[object] = []
        self.failures = 0
        self.finished = False

    def succeed(self, result: object) -> None:
        if self.finished:
            return
        self.successes.append(result)
        if len(self.successes) >= self.needed:
            self.finished = True
            self.on_done(self.successes)

    def fail(self) -> None:
        if self.finished:
            return
        self.failures += 1
        if self.total - self.failures < self.needed:
            self.finished = True
            if self.on_error is not None:
                self.on_error(
                    QuorumError(
                        f"quorum unreachable: {self.failures}/{self.total} failed, "
                        f"needed {self.needed}"
                    )
                )


class StoreClient:
    """Quorum read/write client bound to a host process.

    The host must provide ``call`` (see :class:`repro.sim.rpc.RpcMixin`) and a
    ``sim`` attribute for timestamps.
    """

    def __init__(
        self,
        host,
        ring: ConsistentHashRing,
        *,
        replication_factor: int = 3,
        write_quorum: int = 2,
        read_quorum: int = 2,
        timeout: float = 2.0,
    ) -> None:
        if write_quorum > replication_factor or read_quorum > replication_factor:
            raise ValueError("quorum cannot exceed replication factor")
        self.host = host
        self.ring = ring
        self.replication_factor = replication_factor
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.timeout = timeout

    # ----------------------------------------------------------------- writes
    def put(
        self,
        table: str,
        key: str,
        value: Dict[str, object],
        *,
        on_done: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        replicas = self.ring.nodes_for(key, self.replication_factor)
        if not replicas:
            raise QuorumError("store has no replicas")
        op = _QuorumOp(
            len(replicas),
            min(self.write_quorum, len(replicas)),
            lambda results: on_done() if on_done is not None else None,
            on_error,
        )
        params = {"table": table, "key": key, "value": value, "ts": self.host.sim.now}
        for replica in replicas:
            self.host.call(
                replica,
                "store.put",
                params,
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=op.fail,
                timeout=self.timeout,
            )

    def delete(
        self,
        table: str,
        key: str,
        *,
        on_done: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        replicas = self.ring.nodes_for(key, self.replication_factor)
        op = _QuorumOp(
            len(replicas),
            min(self.write_quorum, len(replicas)),
            lambda results: on_done() if on_done is not None else None,
            on_error,
        )
        params = {"table": table, "key": key, "ts": self.host.sim.now}
        for replica in replicas:
            self.host.call(
                replica,
                "store.delete",
                params,
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=op.fail,
                timeout=self.timeout,
            )

    # ------------------------------------------------------------------ reads
    def get(
        self,
        table: str,
        key: str,
        on_done: Callable[[Optional[Row]], None],
        *,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        replicas = self.ring.nodes_for(key, self.replication_factor)
        if not replicas:
            raise QuorumError("store has no replicas")

        def reconcile(results: List[object]) -> None:
            newest: Optional[Row] = None
            for result in results:
                wire = result.get("row") if isinstance(result, dict) else None
                if wire is None:
                    continue
                row = Row.from_wire(wire)
                if newest is None or row.timestamp > newest.timestamp:
                    newest = row
            if newest is not None:
                self._read_repair(table, replicas, newest)
            on_done(newest)

        op = _QuorumOp(
            len(replicas), min(self.read_quorum, len(replicas)), reconcile, on_error
        )
        params = {"table": table, "key": key}
        for replica in replicas:
            self.host.call(
                replica,
                "store.get",
                params,
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=op.fail,
                timeout=self.timeout,
            )

    def _read_repair(self, table: str, replicas: List[str], newest: Row) -> None:
        """Push the newest version back to all replicas (idempotent by ts)."""
        params = {
            "table": table,
            "key": newest.key,
            "value": newest.value,
            "ts": newest.timestamp,
        }
        for replica in replicas:
            self.host.call(
                replica,
                "store.put",
                params,
                on_reply=lambda result: None,
                timeout=self.timeout,
            )

    def scan(
        self,
        table: str,
        on_done: Callable[[List[Row]], None],
        *,
        limit: Optional[int] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Merge rows from every replica (newest version per key wins)."""
        replicas = self.ring.nodes
        if not replicas:
            raise QuorumError("store has no replicas")

        def merge(results: List[object]) -> None:
            merged: Dict[str, Row] = {}
            for result in results:
                for wire in result.get("rows", ()):
                    row = Row.from_wire(wire)
                    current = merged.get(row.key)
                    if current is None or row.timestamp > current.timestamp:
                        merged[row.key] = row
            rows = list(merged.values())
            if limit is not None:
                rows = rows[:limit]
            on_done(rows)

        # A full scan must cover the whole ring; require all replicas so no
        # token range is missed (our tables are small).
        op = _QuorumOp(len(replicas), len(replicas), merge, on_error)
        for replica in replicas:
            self.host.call(
                replica,
                "store.scan",
                {"table": table, "limit": None},
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=op.fail,
                timeout=self.timeout,
            )


class StoreCluster:
    """Factory owning a set of replicas and the placement ring."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_replicas: int = 3,
        region: Optional[str] = None,
        name: str = "store",
    ) -> None:
        self.sim = sim
        self.network = network
        self.ring = ConsistentHashRing()
        self.replicas: List[StoreReplica] = []
        regions = [r.name for r in network.topology.regions]
        for i in range(num_replicas):
            replica_region = region if region is not None else regions[i % len(regions)]
            replica = StoreReplica(sim, network, f"{name}-replica-{i}", replica_region)
            replica.start()
            self.replicas.append(replica)
            self.ring.add_node(replica.address)

    def client_for(self, host, **kwargs) -> StoreClient:
        """Create a quorum client bound to ``host`` (an RPC-capable process)."""
        defaults = {"replication_factor": min(3, len(self.replicas))}
        quorum = defaults["replication_factor"] // 2 + 1
        defaults.update({"write_quorum": quorum, "read_quorum": quorum})
        defaults.update(kwargs)
        return StoreClient(host, self.ring, **defaults)

    def stop(self) -> None:
        for replica in self.replicas:
            replica.stop()
