"""Quorum coordinator client and cluster factory.

:class:`StoreClient` gives any RPC-capable process Cassandra-style table
operations: writes go to the key's N replicas and complete at W acks, reads
query the replicas and complete at R responses with last-write-wins
reconciliation plus read repair. :class:`StoreCluster` wires up the replica
processes across regions.

Degraded operation (how the store keeps answering through faults):

* **stale reads** — pass ``on_stale`` to :meth:`StoreClient.get` and a read
  whose quorum is unreachable falls back to the freshest reply that *did*
  arrive (flagged, counted under ``store.stale_reads``) instead of erroring;
* **hinted handoff** — a write acknowledged by too few replicas leaves a
  hint per unreachable replica; hints are replayed on a timer until the
  replica answers again (timestamped last-write-wins makes replay
  idempotent), healing the quorum after a crash-restart;
* **partial scans** — ``scan(..., allow_partial=True)`` merges whatever
  replicas answered instead of failing the whole scan.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import QuorumError
from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.store.hashring import ConsistentHashRing
from repro.store.replica import StoreReplica
from repro.store.table import Row


class _QuorumOp:
    """Tracks one multi-replica operation until quorum or failure."""

    def __init__(self, total: int, needed: int, on_done, on_error) -> None:
        self.total = total
        self.needed = needed
        self.on_done = on_done
        self.on_error = on_error
        self.successes: List[object] = []
        self.failures = 0
        self.finished = False

    def succeed(self, result: object) -> None:
        if self.finished:
            return
        self.successes.append(result)
        if len(self.successes) >= self.needed:
            self.finished = True
            self.on_done(self.successes)

    def fail(self) -> None:
        if self.finished:
            return
        self.failures += 1
        if self.total - self.failures < self.needed:
            self.finished = True
            if self.on_error is not None:
                self.on_error(
                    QuorumError(
                        f"quorum unreachable: {self.failures}/{self.total} failed, "
                        f"needed {self.needed}"
                    )
                )


class StoreClient:
    """Quorum read/write client bound to a host process.

    The host must provide ``call`` (see :class:`repro.sim.rpc.RpcMixin`) and a
    ``sim`` attribute for timestamps.
    """

    def __init__(
        self,
        host,
        ring: ConsistentHashRing,
        *,
        replication_factor: int = 3,
        write_quorum: int = 2,
        read_quorum: int = 2,
        timeout: float = 2.0,
        retries: int = 0,
        retry_backoff: float = 0.25,
        hinted_handoff: bool = True,
        hint_capacity: int = 512,
        hint_replay_interval: float = 5.0,
    ) -> None:
        if write_quorum > replication_factor or read_quorum > replication_factor:
            raise ValueError("quorum cannot exceed replication factor")
        self.host = host
        self.ring = ring
        self.replication_factor = replication_factor
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.timeout = timeout
        #: Per-replica RPC retries (exponential backoff + full jitter); safe
        #: because every mutation carries its original timestamp (LWW).
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.hinted_handoff = hinted_handoff
        self.hint_capacity = hint_capacity
        self.hint_replay_interval = hint_replay_interval
        #: Pending hints: ``(replica, method, params)``; params keep their
        #: original write timestamp so replay is idempotent.
        self.hints: List[Tuple[str, str, Dict[str, object]]] = []
        self._hint_replay_scheduled = False

    def _counter(self, name: str):
        # Lazily created so fault-free runs never grow new metrics entries.
        return self.host.network.metrics.counter(name)

    # ------------------------------------------------------- hinted handoff
    def _record_hint(self, replica: str, method: str, params: Dict[str, object]) -> None:
        """Remember a write a replica missed; replayed until it answers."""
        if not self.hinted_handoff:
            return
        if len(self.hints) >= self.hint_capacity:
            self._counter("store.hints_dropped").inc()
            return
        self.hints.append((replica, method, params))
        self._schedule_hint_replay()

    def _schedule_hint_replay(self) -> None:
        if self._hint_replay_scheduled or not self.hints:
            return
        self._hint_replay_scheduled = True
        self.host.after(self.hint_replay_interval, self._replay_hints)

    def _replay_hints(self) -> None:
        self._hint_replay_scheduled = False
        batch, self.hints = self.hints, []
        for replica, method, params in batch:
            self.host.call(
                replica,
                method,
                params,
                on_reply=lambda result: self._counter("store.hints_replayed").inc(),
                on_timeout=lambda r=replica, m=method, p=params: self._requeue_hint(
                    r, m, p
                ),
                timeout=self.timeout,
            )

    def _requeue_hint(self, replica: str, method: str, params: Dict[str, object]) -> None:
        if len(self.hints) >= self.hint_capacity:
            self._counter("store.hints_dropped").inc()
            return
        self.hints.append((replica, method, params))
        self._schedule_hint_replay()

    # ----------------------------------------------------------------- writes
    def _write(
        self,
        method: str,
        replicas: List[str],
        params: Dict[str, object],
        on_done: Optional[Callable[[], None]],
        on_error: Optional[Callable[[Exception], None]],
    ) -> None:
        op = _QuorumOp(
            len(replicas),
            min(self.write_quorum, len(replicas)),
            lambda results: on_done() if on_done is not None else None,
            on_error,
        )

        def missed(replica: str) -> None:
            # The write carries its original timestamp, so replaying it later
            # can never clobber a newer value on the recovered replica.
            self._record_hint(replica, method, params)
            op.fail()

        for replica in replicas:
            self.host.call(
                replica,
                method,
                params,
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=lambda r=replica: missed(r),
                timeout=self.timeout,
                retries=self.retries,
                retry_backoff=self.retry_backoff,
            )

    def put(
        self,
        table: str,
        key: str,
        value: Dict[str, object],
        *,
        on_done: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        replicas = self.ring.nodes_for(key, self.replication_factor)
        if not replicas:
            raise QuorumError("store has no replicas")
        params = {"table": table, "key": key, "value": value, "ts": self.host.sim.now}
        self._write("store.put", replicas, params, on_done, on_error)

    def delete(
        self,
        table: str,
        key: str,
        *,
        on_done: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        replicas = self.ring.nodes_for(key, self.replication_factor)
        params = {"table": table, "key": key, "ts": self.host.sim.now}
        self._write("store.delete", replicas, params, on_done, on_error)

    # ------------------------------------------------------------------ reads
    @staticmethod
    def _newest_row(results: List[object]) -> Optional[Row]:
        newest: Optional[Row] = None
        for result in results:
            wire = result.get("row") if isinstance(result, dict) else None
            if wire is None:
                continue
            row = Row.from_wire(wire)
            if newest is None or row.timestamp > newest.timestamp:
                newest = row
        return newest

    def get(
        self,
        table: str,
        key: str,
        on_done: Callable[[Optional[Row]], None],
        *,
        on_error: Optional[Callable[[Exception], None]] = None,
        on_stale: Optional[Callable[[Optional[Row]], None]] = None,
    ) -> None:
        """Quorum read; exactly one of ``on_done``/``on_stale``/``on_error``.

        With ``on_stale`` set, a read whose quorum is unreachable degrades to
        the freshest reply that did arrive (possibly ``None``) instead of
        erroring; no read repair is attempted from a sub-quorum answer.
        """
        replicas = self.ring.nodes_for(key, self.replication_factor)
        if not replicas:
            raise QuorumError("store has no replicas")

        def reconcile(results: List[object]) -> None:
            newest = self._newest_row(results)
            if newest is not None:
                self._read_repair(table, replicas, newest)
            on_done(newest)

        op = _QuorumOp(
            len(replicas), min(self.read_quorum, len(replicas)), reconcile, on_error
        )
        if on_stale is not None:

            def degrade(error: Exception) -> None:
                self._counter("store.stale_reads").inc()
                on_stale(self._newest_row(op.successes))

            op.on_error = degrade
        params = {"table": table, "key": key}
        for replica in replicas:
            self.host.call(
                replica,
                "store.get",
                params,
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=op.fail,
                timeout=self.timeout,
                retries=self.retries,
                retry_backoff=self.retry_backoff,
            )

    def _read_repair(self, table: str, replicas: List[str], newest: Row) -> None:
        """Push the newest version back to all replicas (idempotent by ts)."""
        params = {
            "table": table,
            "key": newest.key,
            "value": newest.value,
            "ts": newest.timestamp,
        }
        for replica in replicas:
            self.host.call(
                replica,
                "store.put",
                params,
                on_reply=lambda result: None,
                timeout=self.timeout,
            )

    def scan(
        self,
        table: str,
        on_done: Callable[[List[Row]], None],
        *,
        limit: Optional[int] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
        allow_partial: bool = False,
    ) -> None:
        """Merge rows from every replica (newest version per key wins).

        ``allow_partial=True`` degrades gracefully: if any replica times out,
        whatever the others returned is merged and delivered (counted under
        ``store.partial_scans``) instead of failing the whole scan.
        """
        replicas = self.ring.nodes
        if not replicas:
            raise QuorumError("store has no replicas")

        def merge(results: List[object]) -> None:
            merged: Dict[str, Row] = {}
            for result in results:
                for wire in result.get("rows", ()):
                    row = Row.from_wire(wire)
                    current = merged.get(row.key)
                    if current is None or row.timestamp > current.timestamp:
                        merged[row.key] = row
            rows = list(merged.values())
            if limit is not None:
                rows = rows[:limit]
            on_done(rows)

        # A full scan must cover the whole ring; require all replicas so no
        # token range is missed (our tables are small).
        op = _QuorumOp(len(replicas), len(replicas), merge, on_error)
        if allow_partial:

            def degrade(error: Exception) -> None:
                self._counter("store.partial_scans").inc()
                merge(list(op.successes))

            op.on_error = degrade
        for replica in replicas:
            self.host.call(
                replica,
                "store.scan",
                {"table": table, "limit": None},
                on_reply=lambda result, op=op: op.succeed(result),
                on_timeout=op.fail,
                timeout=self.timeout,
                retries=self.retries,
                retry_backoff=self.retry_backoff,
            )


class StoreCluster:
    """Factory owning a set of replicas and the placement ring."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        num_replicas: int = 3,
        region: Optional[str] = None,
        name: str = "store",
    ) -> None:
        self.sim = sim
        self.network = network
        self.ring = ConsistentHashRing()
        self.replicas: List[StoreReplica] = []
        regions = [r.name for r in network.topology.regions]
        for i in range(num_replicas):
            replica_region = region if region is not None else regions[i % len(regions)]
            replica = StoreReplica(sim, network, f"{name}-replica-{i}", replica_region)
            replica.start()
            self.replicas.append(replica)
            self.ring.add_node(replica.address)

    def client_for(self, host, **kwargs) -> StoreClient:
        """Create a quorum client bound to ``host`` (an RPC-capable process)."""
        defaults = {"replication_factor": min(3, len(self.replicas))}
        quorum = defaults["replication_factor"] // 2 + 1
        defaults.update({"write_quorum": quorum, "read_quorum": quorum})
        defaults.update(kwargs)
        return StoreClient(host, self.ring, **defaults)

    def stop(self) -> None:
        for replica in self.replicas:
            replica.stop()
