"""Consistent hashing ring with virtual nodes.

Used by the store coordinator to place each key's replica set, Cassandra
style: the key hashes to a point on the ring and the next N distinct
physical nodes clockwise own the replicas.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.md5(value.encode()).digest()[:8], "big")


class ConsistentHashRing:
    """Maps keys to replica nodes.

    Parameters
    ----------
    virtual_nodes:
        Tokens per physical node; more tokens → smoother balance.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        self.virtual_nodes = virtual_nodes
        self._tokens: List[int] = []
        self._owner: Dict[int, str] = {}
        self._nodes: set = set()

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.virtual_nodes):
            token = _hash(f"{node}#{i}")
            # md5 collisions across distinct vnode labels are not a practical
            # concern; last writer wins if one ever occurs.
            self._owner[token] = node
            bisect.insort(self._tokens, token)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        for i in range(self.virtual_nodes):
            token = _hash(f"{node}#{i}")
            if self._owner.get(token) == node:
                del self._owner[token]
                index = bisect.bisect_left(self._tokens, token)
                if index < len(self._tokens) and self._tokens[index] == token:
                    self._tokens.pop(index)

    def nodes_for(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct nodes clockwise from the key's token."""
        if not self._nodes:
            return []
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._tokens, _hash(key))
        replicas: List[str] = []
        seen = set()
        for offset in range(len(self._tokens)):
            token = self._tokens[(start + offset) % len(self._tokens)]
            owner = self._owner[token]
            if owner not in seen:
                seen.add(owner)
                replicas.append(owner)
                if len(replicas) == count:
                    break
        return replicas

    def primary_for(self, key: str) -> str:
        replicas = self.nodes_for(key, 1)
        if not replicas:
            raise ValueError("ring is empty")
        return replicas[0]
