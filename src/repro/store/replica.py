"""A storage replica process.

Serves get/put/delete/scan RPCs over its local tables. Placement and quorum
logic live in the coordinator (:mod:`repro.store.cluster`); the replica is
deliberately dumb, like a Cassandra storage node from the coordinator's
perspective.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.loop import Simulator
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rpc import RpcMixin
from repro.store.table import Row, Table


class StoreReplica(Process, RpcMixin):
    """One replica node holding a shard of every table."""

    def __init__(self, sim: Simulator, network: Network, address: str, region: str) -> None:
        Process.__init__(self, sim, network, address, region)
        self.init_rpc()
        # Coordinators may retransmit writes (retries / hinted handoff);
        # answer duplicates from the reply cache instead of re-executing.
        self.enable_rpc_idempotency()
        self.tables: Dict[str, Table] = {}
        self.serve("store.get", self._rpc_get)
        self.serve("store.put", self._rpc_put)
        self.serve("store.delete", self._rpc_delete)
        self.serve("store.scan", self._rpc_scan)

    def table(self, name: str) -> Table:
        if name not in self.tables:
            self.tables[name] = Table(name)
        return self.tables[name]

    def wipe(self) -> None:
        """Discard all local state (models a crash that loses the disk).

        The replica relies on read repair and hinted handoff from
        coordinators to be repopulated after :meth:`restart`.
        """
        self.tables.clear()
        if self._rpc_reply_cache is not None:
            self._rpc_reply_cache.clear()

    # ------------------------------------------------------------------ RPCs
    def _rpc_get(self, params, respond, message):
        table = self.tables.get(params["table"])
        row: Optional[Row] = table.get(params["key"]) if table is not None else None
        return {"row": row.to_wire() if row is not None else None}

    def _rpc_put(self, params, respond, message):
        applied = self.table(params["table"]).put(
            params["key"], params["value"], params["ts"]
        )
        return {"ok": True, "applied": applied}

    def _rpc_delete(self, params, respond, message):
        applied = self.table(params["table"]).delete(params["key"], params["ts"])
        return {"ok": True, "applied": applied}

    def _rpc_scan(self, params, respond, message):
        table = self.tables.get(params["table"])
        if table is None:
            return {"rows": []}
        limit = params.get("limit")
        rows = table.scan(limit=limit)
        return {"rows": [row.to_wire() for row in rows]}
