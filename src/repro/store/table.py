"""Table and row model.

The Registrar creates one table per *static* attribute (§VIII-A1). Each row
holds the node id, the attribute value, a catch-all dict of the node's other
attributes (so multi-attribute queries touch a single table), and a write
timestamp used for last-write-wins reconciliation:

    | node ID    | arch | attributes | timestamp  |
    | IP address | x86  | {cores:8}  | time value |
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple


class Row:
    """A versioned row. Greater ``timestamp`` wins on merge."""

    __slots__ = ("key", "value", "timestamp")

    def __init__(self, key: str, value: Dict[str, object], timestamp: float) -> None:
        self.key = key
        self.value = value
        self.timestamp = timestamp

    def to_wire(self) -> Dict[str, object]:
        return {"k": self.key, "v": self.value, "ts": self.timestamp}

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "Row":
        return cls(str(data["k"]), dict(data["v"]), float(data["ts"]))  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Row {self.key} ts={self.timestamp:.3f}>"


class Table:
    """An in-memory keyed table with last-write-wins semantics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._rows: Dict[str, Row] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def get(self, key: str) -> Optional[Row]:
        return self._rows.get(key)

    def put(self, key: str, value: Dict[str, object], timestamp: float) -> bool:
        """Write if ``timestamp`` is newer; returns True if applied."""
        current = self._rows.get(key)
        if current is not None and current.timestamp > timestamp:
            return False
        self._rows[key] = Row(key, value, timestamp)
        return True

    def delete(self, key: str, timestamp: float) -> bool:
        """Delete if the stored row is not newer than ``timestamp``."""
        current = self._rows.get(key)
        if current is None:
            return False
        if current.timestamp > timestamp:
            return False
        del self._rows[key]
        return True

    def scan(
        self,
        predicate: Optional[Callable[[Row], bool]] = None,
        limit: Optional[int] = None,
    ) -> List[Row]:
        """All rows matching ``predicate``, up to ``limit``."""
        rows = []
        for row in self._rows.values():
            if predicate is None or predicate(row):
                rows.append(row)
                if limit is not None and len(rows) >= limit:
                    break
        return rows

    def keys(self) -> List[str]:
        return list(self._rows.keys())

    def items(self) -> List[Tuple[str, Row]]:
        return list(self._rows.items())
