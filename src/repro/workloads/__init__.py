"""Workloads: node populations, attribute dynamics, query generators, traces.

* :mod:`repro.workloads.population` — node attribute specs shared by FOCUS
  and every baseline, with the paper's randomised initial values (§X-A).
* :mod:`repro.workloads.dynamics`   — random-walk drivers that keep dynamic
  attributes changing (and FOCUS nodes moving between groups).
* :mod:`repro.workloads.churn`      — batched join/leave bursts, the chaos
  engine's churn handler.
* :mod:`repro.workloads.querygen`   — Table I / Table II style queries.
* :mod:`repro.workloads.chameleon`  — synthetic equivalent of the Chameleon
  cloud trace (75K VM placement events over 10 months) used in Fig. 7c.
"""

from repro.workloads.chameleon import ChameleonTraceGenerator, TraceEvent
from repro.workloads.churn import ChurnController
from repro.workloads.dynamics import AttributeDynamics, WorkloadDriver
from repro.workloads.population import node_spec_factory
from repro.workloads.querygen import QueryWorkload, placement_query

__all__ = [
    "AttributeDynamics",
    "ChameleonTraceGenerator",
    "ChurnController",
    "QueryWorkload",
    "TraceEvent",
    "WorkloadDriver",
    "node_spec_factory",
    "placement_query",
]
