"""Synthetic equivalent of the Chameleon cloud trace (§X-C).

The paper replays a trace of 75K OpenStack KVM VM-placement events collected
over 10 months on the Chameleon testbed, accelerated 15,000×. That trace is
not redistributable, so this module generates a synthetic trace with the
statistics that matter for the experiment:

* **volume & duration** — 75K events over ~10 months (≈26.3M seconds), so at
  15,000× acceleration the mean arrival rate is ≈43 queries/second — matching
  the 40 q/s the paper uses in Fig. 7b;
* **arrival process** — Poisson arrivals modulated by a diurnal cycle and
  occasional bursts (research testbeds see batched lease starts);
* **demands** — per-event resource requirements drawn from an OpenStack
  flavor distribution (the trace provides "resource requirements, which we
  parsed into our queryable attribute object").

The substitution preserves Fig. 7c's behaviour because that experiment
depends on the arrival intensity and on demand diversity (which drives
group fan-out), not on Chameleon-specific identities.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.query import Query, QueryTerm
from repro.workloads.querygen import FLAVORS

#: Trace extent in the paper.
PAPER_EVENT_COUNT = 75_000
PAPER_DURATION_SECONDS = 10 * 30 * 24 * 3600.0  # ~10 months
PAPER_ACCELERATION = 15_000.0


@dataclass(frozen=True)
class TraceEvent:
    """One VM placement event."""

    time: float  # seconds since trace start (unaccelerated)
    ram_mb: int
    disk_gb: int
    vcpus: int

    def to_query(self, *, limit: int = 10, freshness_ms: float = 0.0) -> Query:
        return Query(
            [
                QueryTerm.at_least("ram_mb", self.ram_mb),
                QueryTerm.at_least("disk_gb", self.disk_gb),
                QueryTerm.at_least("vcpus", self.vcpus),
            ],
            limit=limit,
            freshness_ms=freshness_ms,
        )


class ChameleonTraceGenerator:
    """Generates the synthetic trace; deterministic per seed."""

    def __init__(
        self,
        seed: int = 0,
        *,
        event_count: int = PAPER_EVENT_COUNT,
        duration: float = PAPER_DURATION_SECONDS,
        burst_probability: float = 0.05,
        burst_size_mean: float = 8.0,
    ) -> None:
        self.seed = seed
        self.event_count = event_count
        self.duration = duration
        self.burst_probability = burst_probability
        self.burst_size_mean = burst_size_mean

    def _diurnal_intensity(self, time: float) -> float:
        """Relative arrival intensity at ``time`` (peaks mid-day)."""
        day_fraction = (time % 86_400.0) / 86_400.0
        return 1.0 + 0.6 * math.sin(2 * math.pi * (day_fraction - 0.25))

    def generate(self, count: Optional[int] = None) -> List[TraceEvent]:
        """The first ``count`` events (default: the full trace).

        Thinned non-homogeneous Poisson arrivals; bursts inject several
        near-simultaneous placements (a batched lease start).
        """
        count = count if count is not None else self.event_count
        rng = random.Random(f"chameleon/{self.seed}")
        base_rate = self.event_count / self.duration
        max_intensity = 1.6
        events: List[TraceEvent] = []
        time = 0.0
        while len(events) < count:
            time += rng.expovariate(base_rate * max_intensity)
            if rng.random() > self._diurnal_intensity(time) / max_intensity:
                continue  # thinning
            burst = 1
            if rng.random() < self.burst_probability:
                burst = 1 + int(rng.expovariate(1.0 / self.burst_size_mean))
            for i in range(burst):
                if len(events) >= count:
                    break
                ram, disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
                events.append(
                    TraceEvent(time + i * 0.5, ram_mb=ram, disk_gb=disk, vcpus=vcpus)
                )
        return events

    def accelerated_queries(
        self,
        count: int,
        *,
        acceleration: float = PAPER_ACCELERATION,
        limit: int = 10,
        freshness_ms: float = 0.0,
    ) -> List:
        """``(arrival_time_seconds, Query)`` pairs at the given acceleration."""
        events = self.generate(count)
        return [
            (e.time / acceleration, e.to_query(limit=limit, freshness_ms=freshness_ms))
            for e in events
        ]

    def mean_rate(self, *, acceleration: float = PAPER_ACCELERATION) -> float:
        """Mean accelerated arrival rate, queries/second."""
        return self.event_count / self.duration * acceleration
