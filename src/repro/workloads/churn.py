"""Churn: batched node arrivals and departures against a live scenario.

The chaos engine (:mod:`repro.faults`) knows how to *schedule* a churn burst
but not how to *build* a node — that knowledge lives here, next to the rest
of the workload layer. A :class:`ChurnController` is handed to the engine as
its churn handler and keeps the scenario's ``agents`` list in sync, so
queries and ground-truth bookkeeping see churned nodes like any others.

All randomness (which nodes leave, what attributes joiners report) comes
from the controller's own derived stream, so adding churn to a run never
perturbs the base protocol event order.
"""

from __future__ import annotations

from typing import List

from repro.core.agent import NodeAgent
from repro.harness.scenarios import (
    FocusScenario,
    default_static_attributes,
    random_dynamic_attributes,
)


class ChurnController:
    """Joins and leaves for one :class:`~repro.harness.scenarios.FocusScenario`."""

    def __init__(self, scenario: FocusScenario, *, name: str = "churn") -> None:
        self.scenario = scenario
        self.rng = scenario.sim.derive_rng(f"churn/{name}")
        #: Next node index; continues the scenario's ``node-{index:05d}`` run.
        self._next_index = len(scenario.agents)
        self.joined: List[str] = []
        self.left: List[str] = []

    def burst(self, *, joins: int = 0, leaves: int = 0, spacing: float = 0.0) -> None:
        """Schedule ``joins`` arrivals and ``leaves`` graceful departures.

        Actions are interleaved (leave, join, leave, ...) and spread
        ``spacing`` seconds apart. Departing nodes are drawn (without
        replacement) from the agents running *now*; one that has already
        stopped by its fire time is skipped.
        """
        candidates = sorted(
            agent.node_id for agent in self.scenario.agents if agent.running
        )
        victims = self.rng.sample(candidates, min(leaves, len(candidates)))
        actions: List = []
        for i in range(max(joins, leaves)):
            if i < leaves:
                actions.append((self._leave_one, victims[i]))
            if i < joins:
                actions.append((self._join_one,))
        for i, action in enumerate(actions):
            self.scenario.sim.schedule(i * spacing, *action)

    # ---------------------------------------------------------------- actions
    def _join_one(self) -> None:
        scenario = self.scenario
        index = self._next_index
        self._next_index += 1
        regions = [r.name for r in scenario.network.topology.regions]
        region = regions[index % len(regions)]
        agent = NodeAgent(
            scenario.sim,
            scenario.network,
            f"node-{index:05d}",
            region,
            scenario.service.address,
            static=default_static_attributes(index, site=f"site-{region}"),
            dynamic=random_dynamic_attributes(scenario.config, self.rng),
            config=scenario.config,
        )
        scenario.agents.append(agent)
        self.joined.append(agent.node_id)
        agent.start()

    def _leave_one(self, node_id: str) -> None:
        agent = next(
            (a for a in self.scenario.agents if a.node_id == node_id), None
        )
        if agent is None or not agent.running:
            return
        self.left.append(node_id)
        agent.shutdown()
