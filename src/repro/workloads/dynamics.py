"""Attribute dynamics: keep node state changing the way real hosts do.

The paper's whole premise is *highly dynamic* state — free RAM, CPU
utilisation and disk change continuously, which in FOCUS drives group moves.
:class:`WorkloadDriver` applies a bounded random walk to every node's dynamic
attributes on a fixed tick.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.attributes import AttributeSchema, openstack_schema
from repro.sim.loop import Simulator


@dataclass
class AttributeDynamics:
    """Random-walk parameters for one attribute.

    ``volatility`` is the standard deviation of one step as a fraction of the
    attribute's value range; values reflect off the range boundaries.
    """

    name: str
    volatility: float = 0.02
    min_value: float = 0.0
    max_value: float = 100.0

    def step(self, value: float, rng: random.Random) -> float:
        span = self.max_value - self.min_value
        value += rng.gauss(0.0, self.volatility * span)
        # Reflect at the boundaries so values don't pile up at the edges.
        if value < self.min_value:
            value = 2 * self.min_value - value
        if value > self.max_value:
            value = 2 * self.max_value - value
        return max(self.min_value, min(self.max_value, value))


def default_dynamics(schema: AttributeSchema = None, volatility: float = 0.02) -> List[AttributeDynamics]:
    """Random-walk models for every dynamic attribute in the schema."""
    schema = schema or openstack_schema()
    dynamics = []
    for name, spec in schema.dynamic().items():
        high = spec.max_value if spec.max_value != float("inf") else 100.0
        dynamics.append(
            AttributeDynamics(name, volatility=volatility, min_value=spec.min_value, max_value=high)
        )
    return dynamics


class WorkloadDriver:
    """Applies attribute random walks to a set of nodes on a fixed tick.

    Works with anything exposing ``dynamic`` (dict) and ``set_attribute``:
    FOCUS :class:`~repro.core.agent.NodeAgent` and every baseline node.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence,
        *,
        dynamics: Sequence[AttributeDynamics] = None,
        tick_interval: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.dynamics = list(dynamics) if dynamics is not None else default_dynamics()
        self.tick_interval = tick_interval
        self._rng = random.Random(f"workload/{seed}")
        self._timer = None
        self.ticks = 0

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("driver already started")
        self._timer = self.sim.call_every(self.tick_interval, self.tick, rng=self._rng)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def tick(self) -> None:
        self.ticks += 1
        for node in self.nodes:
            if not getattr(node, "running", True):
                continue
            for dynamics in self.dynamics:
                current = node.dynamic.get(dynamics.name)
                if current is None:
                    continue
                node.set_attribute(dynamics.name, dynamics.step(current, self._rng))
