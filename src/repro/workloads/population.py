"""Node population specs shared by FOCUS and the baselines.

Fig. 7a compares systems over the *same* node population, so the attribute
assignment must be a pure function of ``(seed, index)`` — each system builds
its own simulator but sees identical nodes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.core.attributes import AttributeSchema, openstack_schema


def node_spec_factory(
    seed: int,
    schema: AttributeSchema = None,
) -> Callable[[int, str], Dict[str, object]]:
    """Deterministic ``(index, region) -> node spec`` factory.

    The spec carries the paper's four dynamic evaluation attributes with
    randomised initial values ("randomness factor", §X-A fn. 3) plus the
    common static attributes.
    """
    schema = schema or openstack_schema()

    def factory(index: int, region: str) -> Dict[str, object]:
        rng = random.Random(f"{seed}/node/{index}")
        dynamic = {}
        for name, spec in schema.dynamic().items():
            high = spec.max_value if spec.max_value != float("inf") else 100.0
            value = rng.uniform(spec.min_value, high)
            if name == "vcpus":
                value = float(int(value))
            dynamic[name] = value
        static = {
            "arch": "x86" if index % 8 else "arm64",
            "cores": 8 if index % 3 else 16,
            "service_type": "compute" if index % 5 else "scheduler",
            "project_id": f"project-{index % 10}",
            "site": f"site-{region}",
        }
        return {
            "node_id": f"node-{index:05d}",
            "static": static,
            "dynamic": dynamic,
        }

    return factory
