"""Query generators modelled on the paper's Table I (OpenStack use cases).

Four categories:

* **placement** — hosts meeting new/migrated VM resource requirements;
* **service status** — hosts by service type (static attribute);
* **tenant report** — hosts belonging to a project id (static attribute);
* **hot spot** — active/idle hosts by CPU utilisation bounds.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.query import Query, QueryTerm

#: OpenStack-flavor-like (ram_mb, disk_gb, vcpus) demands, sized so every
#: flavor is satisfiable by the testbed host profile (16 GB / 100 GB / 8 vCPU).
FLAVORS = (
    (512, 1, 1),      # m1.tiny
    (2048, 20, 1),    # m1.small
    (4096, 40, 2),    # m1.medium
    (8192, 60, 4),    # m1.large
    (12288, 80, 8),   # m1.xlarge
)


def placement_query(
    rng: random.Random,
    *,
    limit: int = 10,
    freshness_ms: float = 0.0,
) -> Query:
    """A VM-placement query drawn from the flavor distribution."""
    ram, disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
    return Query(
        [
            QueryTerm.at_least("ram_mb", ram),
            QueryTerm.at_least("disk_gb", disk),
            QueryTerm.at_least("vcpus", vcpus),
        ],
        limit=limit,
        freshness_ms=freshness_ms,
    )


def grouped_placement_query(
    rng: random.Random,
    *,
    cutoffs: Optional[dict] = None,
    limit: Optional[int] = None,
    freshness_ms: float = 0.0,
) -> Query:
    """A placement query in the paper's directed-pull idiom (§VI).

    "Retrieve nodes with 4 GB of RAM" is expressed as the *range of the
    group containing the demand* — [4096, 6144) with a 2048 cutoff — so
    FOCUS pulls exactly one group family; secondary constraints stay as
    greater-than bounds and are filtered by the nodes themselves.
    """
    cutoffs = cutoffs or {"ram_mb": 2048.0}
    ram, disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
    cutoff = cutoffs["ram_mb"]
    base = (ram // int(cutoff)) * int(cutoff)
    return Query(
        [
            QueryTerm("ram_mb", lower=float(ram), upper=base + cutoff - 1e-6),
            QueryTerm.at_least("disk_gb", disk),
            QueryTerm.at_least("vcpus", vcpus),
        ],
        limit=limit,
        freshness_ms=freshness_ms,
    )


def service_status_query(rng: random.Random, *, limit: Optional[int] = None) -> Query:
    """Table I 'Verify Service Status': hosts by service type."""
    service = rng.choice(("compute", "scheduler"))
    return Query([QueryTerm.exact("service_type", service)], limit=limit)


def tenant_report_query(rng: random.Random, *, limit: Optional[int] = None) -> Query:
    """Table I 'Tenant Usage Reports': hosts belonging to a project id."""
    project = f"project-{rng.randrange(10)}"
    return Query([QueryTerm.exact("project_id", project)], limit=limit)


def hot_spot_query(rng: random.Random, *, limit: Optional[int] = None) -> Query:
    """Table I 'Hot Spot Detection': active (busy) or idle hosts by CPU."""
    if rng.random() < 0.5:
        return Query([QueryTerm.at_least("cpu_percent", 75.0)], limit=limit)  # active
    return Query([QueryTerm.at_most("cpu_percent", 25.0)], limit=limit)  # idle


def multi_attribute_query(
    rng: random.Random,
    *,
    limit: Optional[int] = None,
    freshness_ms: float = 0.0,
) -> Query:
    """Bounded ranges on several dynamic attributes at once.

    Each range spans a handful of group families, so on a sharded serving
    plane the routed attribute's families usually live on more than one
    shard — the workload's scatter-gather stressor (single-attribute
    placement queries mostly collapse onto one shard).
    """
    ram, _disk, vcpus = rng.choices(FLAVORS, weights=(10, 35, 30, 18, 7))[0]
    cpu_low = rng.choice((0.0, 25.0, 50.0))
    return Query(
        [
            QueryTerm("ram_mb", lower=float(ram), upper=min(ram + 4096.0, 16384.0)),
            QueryTerm("cpu_percent", lower=cpu_low, upper=cpu_low + 50.0),
            QueryTerm("vcpus", lower=float(vcpus), upper=8.0),
        ],
        limit=limit,
        freshness_ms=freshness_ms,
    )


class QueryWorkload:
    """Weighted mix of the Table I query categories.

    ``hot_key_fraction`` adds hot-key skew: that fraction of queries replays
    one of ``hot_set_size`` fixed queries drawn once at construction (the
    cache/replica-friendly head of a Zipf-ish popularity curve). The default
    of 0 draws nothing extra, so existing seeded workload streams are
    byte-identical to the pre-skew generator.
    """

    CATEGORIES = {
        "placement": placement_query,
        "service_status": service_status_query,
        "tenant_report": tenant_report_query,
        "hot_spot": hot_spot_query,
        "multi_attribute": multi_attribute_query,
    }

    #: Categories whose generators take the workload's freshness bound.
    _FRESHNESS_CATEGORIES = frozenset({"placement", "multi_attribute"})

    def __init__(
        self,
        seed: int = 0,
        *,
        weights: Optional[dict] = None,
        limit: int = 10,
        freshness_ms: float = 0.0,
        hot_key_fraction: float = 0.0,
        hot_set_size: int = 8,
    ) -> None:
        self._rng = random.Random(f"querygen/{seed}")
        self.weights = weights or {
            "placement": 0.7,
            "service_status": 0.1,
            "tenant_report": 0.1,
            "hot_spot": 0.1,
        }
        unknown = set(self.weights) - set(self.CATEGORIES)
        if unknown:
            raise ValueError(f"unknown query categories: {sorted(unknown)}")
        self.limit = limit
        self.freshness_ms = freshness_ms
        if not 0.0 <= hot_key_fraction <= 1.0:
            raise ValueError(f"hot_key_fraction must be in [0, 1], got {hot_key_fraction}")
        self.hot_key_fraction = hot_key_fraction
        # The hot set and the skew coin live on their own RNG stream,
        # created only when skew is on: a fraction of 0 must not shift the
        # main stream by a single draw.
        self._hot_rng: Optional[random.Random] = None
        self._hot_set: List[Query] = []
        if hot_key_fraction > 0.0:
            self._hot_rng = random.Random(f"querygen/hot/{seed}")
            self._hot_set = [
                grouped_placement_query(
                    self._hot_rng, limit=limit, freshness_ms=freshness_ms
                )
                for _ in range(hot_set_size)
            ]

    def next_query(self) -> Query:
        if self._hot_rng is not None and self._hot_rng.random() < self.hot_key_fraction:
            return self._hot_rng.choice(self._hot_set)
        category = self._rng.choices(
            list(self.weights.keys()), weights=list(self.weights.values())
        )[0]
        generator = self.CATEGORIES[category]
        if category in self._FRESHNESS_CATEGORIES:
            return generator(self._rng, limit=self.limit, freshness_ms=self.freshness_ms)
        return generator(self._rng, limit=self.limit)

    def batch(self, count: int) -> List[Query]:
        return [self.next_query() for _ in range(count)]

    def __iter__(self) -> Iterator[Query]:
        while True:
            yield self.next_query()


# --------------------------------------------------------------------- load
# Open-loop load shapes for the overload benchmarks and failure scenarios.
# Closed-loop clients (the shard sweep) self-throttle when the server slows
# down, which hides the saturation knee; an open-loop arrival process keeps
# offering load no matter how far behind the server falls — exactly the
# regime where Fig. 3's latency blow-up appears.


class LoadPhase:
    """``qps`` offered for ``duration`` seconds."""

    __slots__ = ("duration", "qps")

    def __init__(self, duration: float, qps: float) -> None:
        if duration <= 0:
            raise ValueError(f"phase duration must be positive, got {duration}")
        if qps < 0:
            raise ValueError(f"phase qps must be >= 0, got {qps}")
        self.duration = duration
        self.qps = qps

    def __repr__(self) -> str:
        return f"LoadPhase(duration={self.duration}, qps={self.qps})"


def flash_crowd_phases(
    *,
    baseline_qps: float,
    peak_qps: float,
    baseline_s: float = 10.0,
    ramp_s: float = 10.0,
    hold_s: float = 20.0,
    decay_s: float = 10.0,
    ramp_steps: int = 5,
) -> List[LoadPhase]:
    """A flash-crowd ramp: baseline → stepped ramp-up → peak hold → decay.

    The ramp is a staircase (``ramp_steps`` equal steps) rather than a
    continuous slope so the offered rate in every phase is exact and the
    arrival schedule stays trivially deterministic.
    """
    phases = [LoadPhase(baseline_s, baseline_qps)]
    if ramp_steps > 0 and ramp_s > 0:
        for step in range(1, ramp_steps + 1):
            qps = baseline_qps + (peak_qps - baseline_qps) * step / ramp_steps
            phases.append(LoadPhase(ramp_s / ramp_steps, qps))
    phases.append(LoadPhase(hold_s, peak_qps))
    if decay_s > 0:
        phases.append(LoadPhase(decay_s, baseline_qps))
    return phases


class OpenLoopLoad:
    """Deterministic open-loop arrival schedule over a list of phases.

    Arrivals within a phase are evenly spaced at ``1/qps`` with a small
    seeded uniform jitter (±``jitter`` of the spacing), so two runs with the
    same seed offer byte-identical schedules while avoiding the phase-locked
    artifacts of perfectly periodic arrivals.
    """

    def __init__(
        self,
        phases: List[LoadPhase],
        *,
        seed: int = 0,
        jitter: float = 0.25,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.phases = list(phases)
        self._rng = random.Random(f"openloop/{seed}")
        self.jitter = jitter

    def arrival_times(self) -> List[float]:
        """Absolute arrival times over the whole schedule, sorted."""
        times: List[float] = []
        phase_start = 0.0
        for phase in self.phases:
            if phase.qps > 0:
                spacing = 1.0 / phase.qps
                count = int(round(phase.duration * phase.qps))
                for i in range(count):
                    offset = (i + 0.5) * spacing
                    if self.jitter > 0:
                        offset += (self._rng.random() - 0.5) * spacing * self.jitter
                    times.append(phase_start + min(max(offset, 0.0), phase.duration))
            phase_start += phase.duration
        times.sort()
        return times

    @property
    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    @property
    def offered(self) -> int:
        """Total number of arrivals the schedule offers."""
        return sum(
            int(round(phase.duration * phase.qps))
            for phase in self.phases
            if phase.qps > 0
        )


def thundering_herd_offsets(
    count: int,
    window_s: float,
    *,
    seed: int = 0,
) -> List[float]:
    """Re-registration burst offsets after a partition heal.

    When connectivity returns, every stranded agent re-registers at once —
    spread only by client-side jitter. Returns ``count`` seeded uniform
    offsets in ``[0, window_s)``, sorted, one per agent: the herd that the
    registration bulkhead has to absorb without starving the query path.
    """
    rng = random.Random(f"herd/{seed}")
    return sorted(rng.random() * window_s for _ in range(count))
